//! Warm rounding-engine recycling: the contract the serving engine
//! cache (`netalignd`) is built on.
//!
//! * a `MatcherEngine` whose warm memory has been dropped — `reset()`
//!   or `invalidate()` — produces a *first* solve bit-identical to a
//!   brand-new cold engine (this is the same invariant that makes
//!   checkpoint-restore sound: restore invalidates warm memory
//!   wholesale, so the resumed run replays the cold path exactly);
//! * rounding engines released by one harness run and adopted by the
//!   next run on the same problem leave the result bit-identical to a
//!   fresh cold run, while actually reusing warm matcher state
//!   (`warm_hits > 0`);
//! * engines bound to a *different* graph are rejected at adoption, so
//!   a cache keyed on a colliding fingerprint can never smuggle foreign
//!   warm state into a run.

use netalign_core::prelude::*;
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
use netalign_matching::{graph_fingerprint, MatcherCounters, MatcherEngine, RoundingMatcher};

fn problem(seed: u64) -> NetAlignProblem {
    let g = power_law_graph(60, 2.4, 10, 31 + seed);
    let a = add_random_edges(&g, 0.03, 32 + seed);
    let b = add_random_edges(&g, 0.03, 33 + seed);
    let l = identity_plus_noise_l(60, 60, 5.0 / 60.0, 1.0, 1.0, 34 + seed);
    NetAlignProblem::new(a, b, l)
}

fn config() -> AlignConfig {
    AlignConfig {
        iterations: 8,
        rounding: Some(RoundingMatcher::Ld),
        warm_start: true,
        trace_matcher: true,
        record_history: true,
        ..AlignConfig::default()
    }
}

fn assert_bit_identical(base: &AlignmentResult, r: &AlignmentResult, label: &str) {
    assert_eq!(
        base.objective.to_bits(),
        r.objective.to_bits(),
        "objective differs: {label}"
    );
    assert_eq!(base.matching, r.matching, "matching differs: {label}");
    assert_eq!(
        base.best_iteration, r.best_iteration,
        "best iteration differs: {label}"
    );
    assert_eq!(
        base.upper_bound.map(f64::to_bits),
        r.upper_bound.map(f64::to_bits),
        "upper bound differs: {label}"
    );
    assert_eq!(
        base.history.len(),
        r.history.len(),
        "history length differs: {label}"
    );
    for (a, b) in base.history.iter().zip(&r.history) {
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "history objective differs: {label}, iteration {}",
            a.iteration
        );
    }
    assert_eq!(
        base.trace.algo, r.trace.algo,
        "algo counters differ: {label}"
    );
}

/// Weight sequences that make the warm memory non-trivial: each step
/// perturbs a different edge so `decided_at` prefixes actually vary.
fn weight_sequence(p: &NetAlignProblem, steps: usize) -> Vec<Vec<f64>> {
    let base = p.l.weights().to_vec();
    (0..steps)
        .map(|s| {
            let mut w = base.clone();
            let e = (s * 7 + 3) % w.len();
            w[e] += 0.25 + s as f64 * 0.01;
            w
        })
        .collect()
}

/// Satellite: a restored/reset engine's FIRST solve is bit-identical to
/// cold. This single invariant gates both the checkpoint-restore path
/// (which calls `invalidate()`) and the serving cache's reset path
/// (which calls `reset()` before handing an evicted slot to a new
/// fingerprint).
#[test]
fn reset_or_invalidated_engine_first_solve_is_bit_identical_to_cold() {
    let p = problem(1);
    let seq = weight_sequence(&p, 6);
    for kind in [RoundingMatcher::Ld, RoundingMatcher::Suitor] {
        let mut warmed = MatcherEngine::new(&p.l, kind, true);
        let mut invalidated = MatcherEngine::new(&p.l, kind, true);
        let c = MatcherCounters::disabled();
        for w in &seq {
            let _ = warmed.run(&p.l, w, c);
            let _ = invalidated.run(&p.l, w, c);
        }
        warmed.reset();
        invalidated.invalidate();

        let probe = &seq[2];
        let mut cold = MatcherEngine::new(&p.l, kind, true);
        let cold_counters = MatcherCounters::new(true);
        let want = cold.run(&p.l, probe, &cold_counters).clone();

        let reset_counters = MatcherCounters::new(true);
        let got_reset = warmed.run(&p.l, probe, &reset_counters).clone();
        assert_eq!(got_reset, want, "reset() first solve, {kind:?}");
        assert_eq!(
            reset_counters.snapshot(),
            cold_counters.snapshot(),
            "reset() first solve must replay the cold event stream, {kind:?}"
        );

        let inv_counters = MatcherCounters::new(true);
        let got_inv = invalidated.run(&p.l, probe, &inv_counters).clone();
        assert_eq!(got_inv, want, "invalidate() first solve, {kind:?}");
        assert_eq!(
            inv_counters.snapshot(),
            cold_counters.snapshot(),
            "invalidate() first solve must replay the cold event stream, {kind:?}"
        );
    }
}

/// Released rounding engines are live warm engines: a repeat solve on
/// the weights they last matched is a full warm hit.
fn assert_live_warm_memory(mut engines: Vec<MatcherEngine>, p: &NetAlignProblem) {
    let mut eng = engines.pop().expect("at least one engine");
    let first = MatcherCounters::new(true);
    let _ = eng.run(&p.l, p.l.weights(), &first);
    let repeat = MatcherCounters::new(true);
    let _ = eng.run(&p.l, p.l.weights(), &repeat);
    let n = (p.l.num_left() + p.l.num_right()) as u64;
    assert_eq!(
        repeat.snapshot().warm_hits,
        n,
        "released engine must carry live warm memory"
    );
}

/// Warm engines recycled through the harness leave BP results
/// bit-identical to a cold run, while the released engines demonstrably
/// carry live warm matcher memory (warm ≡ cold keeps the results
/// exact; matcher-level `warm_hits` within a short run may be zero
/// because the iterates never freeze — the serving layer counts cache
/// hits instead).
#[test]
fn bp_adopted_engines_are_bit_identical_and_warm() {
    let p = problem(2);
    let config = config();
    let harness = RunHarness::new();

    let (cold1, engines) = harness.run_bp_warm(&p, &config, Vec::new()).expect("cold");
    assert_eq!(engines.len(), 2, "BP releases its two rounding engines");
    assert!(cold1.result.matching.cardinality() > 0);

    // The released engines are exactly what a fresh engine accepts.
    {
        let mut probe = netalign_core::bp::BpEngine::new(&p, &config);
        let (e0, e1) = (
            engines[0].bound_fingerprint(),
            engines[1].bound_fingerprint(),
        );
        assert_eq!(e0, e1);
        let released = probe.release_rounding();
        assert!(probe.adopt_rounding(released));
    }

    // Reference: an independent cold run of the same problem/config.
    let reference = harness.run_bp(&p, &config).expect("reference");

    let (warm2, engines2) = harness.run_bp_warm(&p, &config, engines).expect("warm");
    assert_bit_identical(&reference.result, &warm2.result, "warm vs cold BP");
    assert_eq!(engines2.len(), 2, "engines flow out again for the next run");
    assert_live_warm_memory(engines2, &p);
}

/// Same contract for MR (single rounding engine unless enriched).
#[test]
fn mr_adopted_engines_are_bit_identical_and_warm() {
    let p = problem(3);
    let config = config();
    let harness = RunHarness::new();

    let (_, engines) = harness.run_mr_warm(&p, &config, Vec::new()).expect("cold");
    assert!(!engines.is_empty(), "MR releases its rounding engine(s)");

    let reference = harness.run_mr(&p, &config).expect("reference");

    let (warm2, engines2) = harness.run_mr_warm(&p, &config, engines).expect("warm");
    assert_bit_identical(&reference.result, &warm2.result, "warm vs cold MR");
    assert_live_warm_memory(engines2, &p);
}

/// Engines bound to a different graph are refused at adoption — the
/// run silently falls back to fresh cold engines and stays correct.
#[test]
fn foreign_engines_are_rejected_at_adoption() {
    let p = problem(4);
    let other = problem(5);
    assert_ne!(
        graph_fingerprint(&p.l),
        graph_fingerprint(&other.l),
        "test needs distinct graphs"
    );

    let config = config();
    let harness = RunHarness::new();
    let (_, foreign) = harness
        .run_bp_warm(&other, &config, Vec::new())
        .expect("foreign run");
    assert!(foreign.iter().all(|e| !e.binds(&p.l)));

    let reference = harness.run_bp(&p, &config).expect("reference");
    let (got, _) = harness.run_bp_warm(&p, &config, foreign).expect("fallback");
    assert_bit_identical(&reference.result, &got.result, "foreign-adoption fallback");
    assert_eq!(
        got.result.trace.matcher.warm_hits, 0,
        "rejected adoption must run cold"
    );
}
