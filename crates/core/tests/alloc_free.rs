//! Counting-allocator proof of the paper's §IV memory discipline ("no
//! dynamic memory allocations" in the iteration): after warm-up, BP's
//! steady-state `step()` (including staging iterates for batched
//! rounding through the pooled buffers) and MR's numeric kernels (row
//! matchings, multiplier update) perform **zero** heap allocations —
//! even with the persistent worker pool running the kernels at pool
//! size 4.
//!
//! The matcher and objective evaluation are exempt **on the legacy
//! path only**: there they build a fresh `Matching` per rounding by
//! design. With the preallocated rounding engine
//! (`AlignConfig::rounding`), the armed windows below include the
//! rounding itself — matching and objective evaluation run entirely in
//! recycled storage, so the whole steady-state loop is proven
//! allocation-free for both aligners.
//!
//! A `#[global_allocator]` is binary-wide state, so this file holds a
//! single `#[test]` and lives in its own integration-test binary.

use netalign_core::bp::BpEngine;
use netalign_core::mr::rowmatch::{solve_row_matchings_into, RowWorkspace};
use netalign_core::mr::{update_multipliers, MrEngine};
use netalign_core::rowspans::RowSpans;
use netalign_core::{AlignConfig, NetAlignProblem};
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
use netalign_matching::{MatcherKind, RoundingMatcher};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Wraps the system allocator; counts allocation events while armed.
struct CountingAllocator;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn arm() {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
}

fn disarm() -> u64 {
    TRACKING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn problem() -> NetAlignProblem {
    let g = power_law_graph(80, 2.3, 14, 5);
    let a = add_random_edges(&g, 0.02, 6);
    let b = add_random_edges(&g, 0.02, 7);
    let l = identity_plus_noise_l(80, 80, 6.0 / 80.0, 1.0, 1.0, 8);
    NetAlignProblem::new(a, b, l)
}

#[test]
fn steady_state_iterations_do_not_allocate() {
    let p = problem();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool");

    pool.install(|| {
        // ---- BP: step() + staging must be allocation-free after the
        // staging pool warmed up (one full batch window flushed).
        let cfg = AlignConfig {
            iterations: 40,
            batch: 4,
            ..Default::default()
        };
        let mut engine = BpEngine::new(&p, &cfg);
        for _ in 0..8 {
            engine.step();
            if engine.rounding_due() {
                engine.round_pending();
            }
            engine.end_iteration();
        }

        // One full batch window in the steady state: four iterations of
        // message updates, staging into recycled buffers, and trace
        // rows appended into reserved storage.
        arm();
        for _ in 0..4 {
            engine.step();
            engine.end_iteration();
        }
        let n = disarm();
        assert_eq!(
            n, 0,
            "BP steady-state step() performed {n} heap allocations"
        );

        // The deferred flush (matcher — exempt) still works afterwards.
        engine.round_pending();
        let result = engine.finish();
        assert!(result.matching.cardinality() > 0);

        // ---- MR: the numeric kernels between the (exempt) matcher
        // calls — row matchings over the span decomposition and the
        // multiplier subgradient update.
        let nnz = p.s.nnz();
        let m = p.l.num_edges();
        let spans = RowSpans::from_rowptr(p.s.rowptr());
        let mut workspaces = vec![RowWorkspace::default(); spans.num_groups()];
        let row_w: Vec<f64> = (0..nnz)
            .map(|i| ((i * 13) % 9) as f64 * 0.25 - 0.5)
            .collect();
        let mut d = vec![0.0; m];
        let mut sl_vals = vec![0.0; nnz];
        let mut u_vals = vec![0.0; nnz];
        let u_old: Vec<f64> = (0..nnz).map(|i| ((i * 7) % 5) as f64 * 0.1).collect();
        let x: Vec<f64> = (0..m).map(|e| (e % 2) as f64).collect();

        // Warm-up: every workspace sees its largest row subproblem.
        for _ in 0..2 {
            solve_row_matchings_into(&p, &row_w, &spans, &mut d, &mut sl_vals, &mut workspaces);
            update_multipliers(&p, &spans, &mut u_vals, &u_old, &sl_vals, &x, 0.4, 1.0);
        }

        arm();
        solve_row_matchings_into(&p, &row_w, &spans, &mut d, &mut sl_vals, &mut workspaces);
        update_multipliers(&p, &spans, &mut u_vals, &u_old, &sl_vals, &x, 0.4, 1.0);
        let n = disarm();
        assert_eq!(
            n, 0,
            "MR steady-state kernels performed {n} heap allocations"
        );

        // ---- BP with the preallocated rounding engine (lock-free
        // Suitor, warm-started): the armed window now INCLUDES the
        // batched rounding flushes — zero allocations through matching
        // and objective evaluation as well.
        let cfg = AlignConfig {
            iterations: 40,
            batch: 4,
            matcher: MatcherKind::ParallelLocalDominant,
            rounding: Some(RoundingMatcher::Suitor),
            warm_start: true,
            ..Default::default()
        };
        let mut engine = BpEngine::new(&p, &cfg);
        for _ in 0..8 {
            engine.step();
            if engine.rounding_due() {
                engine.round_pending();
            }
            engine.end_iteration();
        }
        arm();
        for _ in 0..8 {
            engine.step();
            if engine.rounding_due() {
                engine.round_pending();
            }
            engine.end_iteration();
        }
        let n = disarm();
        assert_eq!(
            n, 0,
            "BP engine-mode steady state (incl. rounding) performed {n} heap allocations"
        );
        let result = engine.finish();
        assert!(result.matching.cardinality() > 0);

        // ---- MR with the engine (warm LD): the full step — row
        // matchings, the driving bipartite matching, bounds, multiplier
        // update — is armed.
        let cfg = AlignConfig {
            iterations: 40,
            matcher: MatcherKind::ParallelLocalDominant,
            rounding: Some(RoundingMatcher::Ld),
            warm_start: true,
            ..Default::default()
        };
        let mut engine = MrEngine::new(&p, &cfg);
        for _ in 0..8 {
            engine.step();
            engine.end_iteration();
        }
        arm();
        for _ in 0..8 {
            engine.step();
            engine.end_iteration();
        }
        let n = disarm();
        assert_eq!(
            n, 0,
            "MR engine-mode steady state (incl. matching) performed {n} heap allocations"
        );
        let result = engine.finish();
        assert!(result.matching.cardinality() > 0);
    });
}
