//! Property tests for incremental re-alignment: a delta replay must be
//! bit-identical to a cold solve of the patched problem at every pool
//! size, for mixed deltas (reweights, candidate inserts/removes and
//! structural A-edge toggles), whether the replay stays sparse or
//! escapes to the engines mid-run.

use netalign_core::config::AlignConfig;
use netalign_core::delta::{DeltaBase, GraphDelta, ProblemDelta};
use netalign_core::prelude::belief_propagation;
use netalign_core::problem::NetAlignProblem;
use netalign_core::result::AlignmentResult;
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
use netalign_matching::RoundingMatcher;
use proptest::prelude::*;

const POOLS: [usize; 4] = [1, 2, 4, 8];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

fn instance(n: usize, seed: u64) -> NetAlignProblem {
    let g = power_law_graph(n, 2.5, 10, seed);
    let a = add_random_edges(&g, 0.03, seed + 1);
    let b = add_random_edges(&g, 0.03, seed + 2);
    let l = identity_plus_noise_l(n, n, 5.0 / n as f64, 1.0, 1.0, seed + 3);
    NetAlignProblem::new(a, b, l)
}

fn cfg(iterations: usize, batch: usize) -> AlignConfig {
    AlignConfig {
        iterations,
        batch,
        rounding: Some(RoundingMatcher::Ld),
        warm_start: true,
        record_history: true,
        ..Default::default()
    }
}

/// A mixed delta derived from proptest selectors: candidate reweights on
/// a coarse grid (exact in f64), at most one candidate insert, at most
/// one candidate expiry, and at most one structural A-edge toggle.
fn build_delta(
    p: &NetAlignProblem,
    reweights: &[(usize, u32)],
    insert_l: bool,
    remove_l: bool,
    toggle_a: bool,
) -> ProblemDelta {
    let m = p.l.num_edges();
    let mut delta = ProblemDelta::default();
    let mut touched = std::collections::BTreeSet::new();

    // Expire one candidate first so reweights can skip it.
    if remove_l && m > 1 {
        let (a, b) = p.l.endpoints(m / 2);
        delta.l.remove.push((a, b));
        touched.insert((a, b));
    }
    for &(pick, grid) in reweights {
        let (a, b) = p.l.endpoints(pick % m);
        if touched.insert((a, b)) {
            delta.l.reweight.push((a, b, (grid % 16 + 1) as f64 / 4.0));
        }
    }
    if insert_l {
        'scan: for a in 0..p.l.num_left() as u32 {
            for b in 0..p.l.num_right() as u32 {
                if p.l.edge_id(a, b).is_none() && !touched.contains(&(a, b)) {
                    delta.l.insert.push((a, b, 0.75));
                    break 'scan;
                }
            }
        }
    }
    if toggle_a {
        if let Some((u, v)) = p.a.edges().next() {
            delta.a = GraphDelta {
                remove: vec![(u, v)],
                ..Default::default()
            };
        }
    }
    delta
}

fn cold_solve(p: &NetAlignProblem, delta: &ProblemDelta, config: &AlignConfig) -> AlignmentResult {
    let a2 = delta.a.apply(&p.a).unwrap();
    let b2 = delta.b.apply(&p.b).unwrap();
    let l2 = delta.l.apply(&p.l).unwrap().graph;
    belief_propagation(&NetAlignProblem::new(a2, b2, l2), config)
}

fn assert_bit_identical(r: &AlignmentResult, c: &AlignmentResult) {
    assert_eq!(&r.matching, &c.matching);
    assert_eq!(r.objective.to_bits(), c.objective.to_bits());
    assert_eq!(r.weight.to_bits(), c.weight.to_bits());
    assert_eq!(r.overlap.to_bits(), c.overlap.to_bits());
    assert_eq!(r.best_iteration, c.best_iteration);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Delta replay ≡ cold solve of the patched problem, bitwise, at
    /// pools {1, 2, 4, 8} — and every pool agrees with every other.
    #[test]
    fn delta_replay_matches_cold_across_pools(
        n in 24usize..40,
        seed in 0u64..1000,
        batch in 1usize..3,
        reweights in proptest::collection::vec((0usize..1usize << 16, 0u32..64), 1..6),
        insert_l in 0u32..2,
        remove_l in 0u32..2,
        toggle_a in 0u32..2,
    ) {
        let p = instance(n, seed);
        let config = cfg(8, batch);
        let delta = build_delta(&p, &reweights, insert_l == 1, remove_l == 1, toggle_a == 1);

        let mut reference: Option<AlignmentResult> = None;
        for threads in POOLS {
            let (replayed, cold) = pool(threads).install(|| {
                let (_, mut base) = DeltaBase::record(p.clone(), config).unwrap();
                let (replayed, stats) = base.apply(&delta).unwrap();
                prop_assert!(stats.delta_reused_iterations >= 1, "{} threads", threads);
                (replayed, cold_solve(&p, &delta, &config))
            });
            assert_bit_identical(&replayed, &cold);
            match &reference {
                None => reference = Some(replayed),
                Some(r) => assert_bit_identical(&replayed, r),
            }
        }
    }
}
