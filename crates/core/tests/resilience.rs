//! Tier-2 fault-tolerance suite: every recovery path of the run
//! harness proved end-to-end under injected faults.
//!
//! * kill-mid-run → resume → **bit-identical** final objective,
//!   matching, bounds and counters vs the uninterrupted run, at worker
//!   pools {1, 2, 4, 8};
//! * injected NaN → rollback to the last finite iterate + damping/step
//!   recovery, never a panic or a non-finite final objective, and the
//!   recovery count lands in the JSON report;
//! * a worker panic mid-region propagates to the caller while the
//!   persistent pool stays usable for the next region;
//! * a checkpoint corrupted in flight is rejected by the loader and the
//!   resume falls back to the previous valid snapshot.
//!
//! Cargo runs this binary's tests on parallel threads within one
//! process, and the fault plan is process-global — so EVERY test here
//! takes `faults::test_lock()` first.

use netalign_core::checkpoint::{self, CheckpointError, EngineKind};
use netalign_core::config::CheckpointPolicy;
use netalign_core::prelude::*;
use netalign_core::trace::faults;
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn problem() -> NetAlignProblem {
    let g = power_law_graph(70, 2.4, 12, 31);
    let a = add_random_edges(&g, 0.03, 32);
    let b = add_random_edges(&g, 0.03, 33);
    let l = identity_plus_noise_l(70, 70, 5.0 / 70.0, 1.0, 1.0, 34);
    NetAlignProblem::new(a, b, l)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "netalign-resilience-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn assert_bit_identical(base: &AlignmentResult, r: &AlignmentResult, label: &str) {
    assert_eq!(
        base.objective.to_bits(),
        r.objective.to_bits(),
        "objective differs: {label}"
    );
    assert_eq!(base.matching, r.matching, "matching differs: {label}");
    assert_eq!(
        base.best_iteration, r.best_iteration,
        "best iteration differs: {label}"
    );
    assert_eq!(
        base.upper_bound.map(f64::to_bits),
        r.upper_bound.map(f64::to_bits),
        "upper bound differs: {label}"
    );
    assert_eq!(
        base.history.len(),
        r.history.len(),
        "history length differs: {label}"
    );
    for (a, b) in base.history.iter().zip(&r.history) {
        assert_eq!(a.iteration, b.iteration, "history iteration: {label}");
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "history objective differs: {label}, iteration {}",
            a.iteration
        );
        assert_eq!(
            a.weight.to_bits(),
            b.weight.to_bits(),
            "history weight differs: {label}, iteration {}",
            a.iteration
        );
        assert_eq!(
            a.overlap.to_bits(),
            b.overlap.to_bits(),
            "history overlap differs: {label}, iteration {}",
            a.iteration
        );
        assert_eq!(
            a.upper_bound.map(f64::to_bits),
            b.upper_bound.map(f64::to_bits),
            "history upper bound differs: {label}, iteration {}",
            a.iteration
        );
    }
    assert_eq!(
        base.trace.algo, r.trace.algo,
        "algo counters differ: {label}"
    );
}

/// Kill a checkpointed run at `kill_iter` via an injected panic, then
/// resume from the checkpoint directory; both legs run inside `pool`.
fn kill_and_resume(
    p: &NetAlignProblem,
    cfg: &AlignConfig,
    engine: EngineKind,
    kill_iter: u64,
    threads: usize,
) -> AlignmentResult {
    let dir = scratch_dir(&format!("kr-{}-{threads}", engine.name()));
    let step = format!("{}.step", engine.name());
    faults::install(faults::FaultPlan {
        panic: Some(faults::StepTrigger::new(step, kill_iter)),
        ..Default::default()
    });
    let harness = RunHarness::new().with_checkpoint_dir(&dir);
    let killed = catch_unwind(AssertUnwindSafe(|| {
        pool(threads).install(|| match engine {
            EngineKind::Bp => harness.run_bp(p, cfg),
            EngineKind::Mr => harness.run_mr(p, cfg),
        })
    }));
    faults::clear();
    assert!(killed.is_err(), "the injected kill must surface as a panic");
    assert!(
        !checkpoint::list_checkpoints(&dir, engine).is_empty(),
        "the killed run must have left checkpoints behind"
    );

    let resume = RunHarness::new().with_resume_from(&dir);
    let result = pool(threads)
        .install(|| match engine {
            EngineKind::Bp => resume.run_bp(p, cfg),
            EngineKind::Mr => resume.run_mr(p, cfg),
        })
        .expect("resume leg")
        .result;
    std::fs::remove_dir_all(&dir).ok();
    result
}

#[test]
fn bp_kill_and_resume_is_bit_identical_across_pools() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 16,
        batch: 3,
        record_history: true,
        ..Default::default()
    };
    let base = pool(1).install(|| belief_propagation(&p, &cfg));
    for threads in [1, 2, 4, 8] {
        let resumed = kill_and_resume(&p, &cfg, EngineKind::Bp, 9, threads);
        assert_bit_identical(&base, &resumed, &format!("BP resume at pool {threads}"));
    }
}

#[test]
fn mr_kill_and_resume_is_bit_identical_across_pools() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 16,
        record_history: true,
        ..Default::default()
    };
    let base = pool(1).install(|| matching_relaxation(&p, &cfg));
    for threads in [1, 2, 4, 8] {
        let resumed = kill_and_resume(&p, &cfg, EngineKind::Mr, 9, threads);
        assert_bit_identical(&base, &resumed, &format!("MR resume at pool {threads}"));
    }
}

#[test]
fn coarse_checkpoint_cadence_still_resumes_exactly() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 16,
        record_history: true,
        checkpoint: CheckpointPolicy {
            every_k_iters: 5,
            every_secs: 0.0,
        },
        ..Default::default()
    };
    let base = pool(1).install(|| matching_relaxation(&p, &cfg));
    // Kill at iteration 12: the newest snapshot is iteration 10, so the
    // resume replays iterations 11..16.
    let resumed = kill_and_resume(&p, &cfg, EngineKind::Mr, 12, 4);
    assert_bit_identical(&base, &resumed, "MR resume from every-5 cadence");
}

#[test]
fn bp_nan_injection_recovers_to_finite_result() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 14,
        record_history: true,
        ..Default::default()
    };
    faults::install(faults::FaultPlan {
        nan: Some(faults::StepTrigger::new("bp.damping", 5)),
        ..Default::default()
    });
    let r = belief_propagation(&p, &cfg);
    faults::clear();
    assert!(
        r.objective.is_finite(),
        "guarded BP must end finite, got {}",
        r.objective
    );
    assert!(r.matching.is_valid(&p.l));
    assert_eq!(
        r.trace.algo.numeric_recoveries, 1,
        "exactly one injected NaN, exactly one recovery"
    );
    let report = r.report_json().render();
    assert!(
        report.contains("\"numeric_recoveries\":1"),
        "recovery count missing from the JSON report: {report}"
    );
}

#[test]
fn mr_nan_injection_recovers_in_both_guard_positions() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 14,
        record_history: true,
        ..Default::default()
    };
    for step in ["mr.daxpy", "mr.update-u"] {
        faults::install(faults::FaultPlan {
            nan: Some(faults::StepTrigger::new(step, 4)),
            ..Default::default()
        });
        let r = matching_relaxation(&p, &cfg);
        faults::clear();
        assert!(
            r.objective.is_finite(),
            "guarded MR must end finite after a NaN in {step}"
        );
        assert!(r.matching.is_valid(&p.l), "invalid matching after {step}");
        assert_eq!(
            r.trace.algo.numeric_recoveries, 1,
            "one injected NaN in {step}, one recovery"
        );
        assert!(r
            .upper_bound
            .expect("MR always reports a bound")
            .is_finite());
    }
}

#[test]
fn nan_recovery_tightens_but_does_not_stop_the_run() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 12,
        record_history: true,
        ..Default::default()
    };
    let clean = belief_propagation(&p, &cfg);
    faults::install(faults::FaultPlan {
        nan: Some(faults::StepTrigger::new("bp.damping", 3)),
        ..Default::default()
    });
    let recovered = belief_propagation(&p, &cfg);
    faults::clear();
    // The rolled-back iteration stages nothing, so the recovered run
    // rounds two fewer vectors but still completes the budget.
    assert_eq!(
        recovered.history.len() + 2,
        clean.history.len(),
        "exactly the killed iteration's two roundings are missing"
    );
    assert!(recovered.objective.is_finite());
}

#[test]
fn worker_panic_propagates_and_pool_survives() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 8,
        record_history: true,
        ..Default::default()
    };
    let clean = pool(4).install(|| belief_propagation(&p, &cfg));

    // Panic on the 5th chunk claim. On this instance every data-chunked
    // region is single-chunk (len < min_len) and runs inline, but each
    // iteration's othermax `join` publishes its second half to the pool
    // — so claims accrue once per iteration and the 5th lands mid-run.
    faults::install(faults::FaultPlan {
        chunk_panic: Some(5),
        ..Default::default()
    });
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool(4).install(|| belief_propagation(&p, &cfg))
    }));
    faults::clear();
    assert!(outcome.is_err(), "the worker panic must reach the caller");

    // The same process-global pool machinery must run the next region
    // normally — and still bit-identically.
    let after = pool(4).install(|| belief_propagation(&p, &cfg));
    assert_bit_identical(&clean, &after, "run after a worker panic");
}

#[test]
fn corrupted_checkpoint_write_falls_back_to_previous_snapshot() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 12,
        record_history: true,
        ..Default::default()
    };
    let base = matching_relaxation(&p, &cfg);

    let dir = scratch_dir("corrupt-write");
    // Corrupt the 6th checkpoint written (iteration 6), then kill at
    // iteration 8: the scan must skip the damaged iteration-6 file (and
    // 7, 8 are fine) — kill happens before 8's write, so the newest
    // valid snapshot is iteration 7.
    faults::install(faults::FaultPlan {
        checkpoint: Some(faults::CheckpointFault {
            damage: faults::CheckpointDamage::Corrupt,
            nth_write: 6,
        }),
        panic: Some(faults::StepTrigger::new("mr.step", 8)),
        ..Default::default()
    });
    let harness = RunHarness::new().with_checkpoint_dir(&dir).with_keep(10);
    let killed = catch_unwind(AssertUnwindSafe(|| harness.run_mr(&p, &cfg)));
    faults::clear();
    assert!(killed.is_err());

    // The damaged file is still on disk and still rejected.
    let bad = dir.join(checkpoint::checkpoint_file_name(EngineKind::Mr, 6));
    match checkpoint::load_checkpoint(&bad, EngineKind::Mr, &p, &cfg) {
        Err(CheckpointError::Corrupt { .. }) | Err(CheckpointError::BadMagic { .. }) => {}
        other => panic!("damaged write must be rejected, got {other:?}"),
    }

    let resumed = RunHarness::new()
        .with_resume_from(&dir)
        .run_mr(&p, &cfg)
        .expect("resume must fall back to a valid snapshot")
        .result;
    assert_bit_identical(&base, &resumed, "resume past a corrupted write");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_checkpoint_write_is_rejected_with_typed_error() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 6,
        ..Default::default()
    };
    let dir = scratch_dir("truncate-write");
    faults::install(faults::FaultPlan {
        checkpoint: Some(faults::CheckpointFault {
            damage: faults::CheckpointDamage::Truncate,
            nth_write: 6,
        }),
        ..Default::default()
    });
    RunHarness::new()
        .with_checkpoint_dir(&dir)
        .with_keep(10)
        .run_bp(&p, &cfg)
        .expect("truncation hits the file, not the writer");
    faults::clear();

    let bad = dir.join(checkpoint::checkpoint_file_name(EngineKind::Bp, 6));
    match checkpoint::load_checkpoint(&bad, EngineKind::Bp, &p, &cfg) {
        Err(CheckpointError::Corrupt { .. }) => {}
        other => panic!("truncated file must be Corrupt, got {other:?}"),
    }
    // An explicit --resume pointing at the truncated file is a hard
    // error; pointing at the directory falls back to iteration 5.
    assert!(RunHarness::new()
        .with_resume_from(&bad)
        .run_bp(&p, &cfg)
        .is_err());
    let base = belief_propagation(&p, &cfg);
    let resumed = RunHarness::new()
        .with_resume_from(&dir)
        .run_bp(&p, &cfg)
        .expect("directory resume skips the truncated file")
        .result;
    assert_eq!(base.objective.to_bits(), resumed.objective.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_deadline_cut_checkpoint_is_bit_identical() {
    let _guard = faults::test_lock();
    let p = problem();
    // Warm-started rounding: the resume leg must invalidate the matcher
    // engine's warm memory exactly like a mid-run restore does.
    let cfg = AlignConfig {
        iterations: 16,
        batch: 3,
        record_history: true,
        matcher: MatcherKind::ParallelLocalDominant,
        rounding: Some(RoundingMatcher::Ld),
        warm_start: true,
        ..Default::default()
    };
    let base = pool(4).install(|| belief_propagation(&p, &cfg));

    // Deterministic deadline at iteration 7: the harness cuts a final
    // checkpoint through the same atomic tmp+rename path as mid-run
    // snapshots and returns the incumbent.
    let dir = scratch_dir("deadline-cut");
    faults::install(faults::FaultPlan {
        deadline: Some(7),
        ..Default::default()
    });
    let outcome = pool(4)
        .install(|| {
            RunHarness::new()
                .with_checkpoint_dir(&dir)
                .with_on_deadline(DeadlinePolicy::Checkpoint)
                .run_bp(&p, &cfg)
        })
        .expect("deadline leg");
    faults::clear();
    assert_eq!(outcome.completion, Completion::DeadlineBestSoFar);
    assert_eq!(outcome.iterations_run, 7);
    let cut = outcome
        .deadline_checkpoint
        .expect("the deadline stop must cut a checkpoint");
    assert!(cut.ends_with(checkpoint::checkpoint_file_name(EngineKind::Bp, 7)));

    // Resuming from the cut (with a larger budget) must replay
    // iterations 8..16 exactly as the uninterrupted run — including the
    // matcher warm memory, which the restore invalidates like any
    // mid-run checkpoint restore.
    let resumed = pool(4)
        .install(|| RunHarness::new().with_resume_from(&cut).run_bp(&p, &cfg))
        .expect("resume from deadline cut")
        .result;
    assert_bit_identical(&base, &resumed, "resume from a deadline-cut checkpoint");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn env_driven_fault_grammar_matches_programmatic_plans() {
    let _guard = faults::test_lock();
    // The env grammar is parsed once per process; tests exercise the
    // parser directly to stay order-independent.
    let plan = faults::plan_from_env_pairs(&[
        ("NETALIGN_FAULT_NAN", "bp.damping@5"),
        ("NETALIGN_FAULT_CKPT", "corrupt@2"),
    ]);
    assert_eq!(plan.nan, Some(faults::StepTrigger::new("bp.damping", 5)));
    assert_eq!(
        plan.checkpoint,
        Some(faults::CheckpointFault {
            damage: faults::CheckpointDamage::Corrupt,
            nth_write: 2,
        })
    );
    assert_eq!(plan.panic, None);
    assert_eq!(plan.chunk_panic, None);
}
