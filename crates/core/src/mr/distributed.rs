//! Distributed-memory matching relaxation, simulated (paper §IX).
//!
//! The same bulk-synchronous decomposition as
//! [`crate::bp::distributed`], applied to Klau's method:
//!
//! * edges of `L` / rows of `S` / blocks of `U` are partitioned by left
//!   vertex, so the **row matchings (step 1) are entirely rank-local**
//!   (each row of `S` lives on one rank);
//! * the row weights `(β/2)S + U − Uᵀ` need `U`'s transpose — the same
//!   **static halo plan** as BP's `S⁽ᵏ⁾ᵀ` gather ships exactly the
//!   remote multiplier values each rank needs;
//! * the rounding matching (step 3) runs the **message-passing
//!   locally-dominant matcher** over the same ranks, and its indicator
//!   is broadcast for the multiplier update (step 5), which is again
//!   local given the `S_L` halo.
//!
//! As with distributed BP, every kernel performs the same
//! floating-point work in the same order as the shared-memory
//! implementation, so results are **bit-identical** to
//! [`crate::mr::matching_relaxation`] configured with the parallel
//! locally-dominant matcher — asserted in the tests.

use crate::config::AlignConfig;
use crate::mr::rowmatch::solve_row_matchings;
use crate::objective::evaluate_matching;
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::trace::RunTrace;
use netalign_matching::distributed::distributed_local_dominant;

/// Run Klau's MR with state distributed over `ranks` simulated workers.
///
/// Matches [`crate::mr::matching_relaxation`] with
/// [`netalign_matching::MatcherKind::ParallelLocalDominant`] exactly.
pub fn distributed_matching_relaxation(
    problem: &NetAlignProblem,
    config: &AlignConfig,
    ranks: usize,
) -> AlignmentResult {
    config.validate();
    assert!(ranks >= 1, "need at least one rank");
    let p = problem;
    let m = p.l.num_edges();
    let nnz = p.s.nnz();
    let (alpha, beta) = (config.alpha, config.beta);
    let mut gamma = config.gamma;
    let rowptr = p.s.rowptr();
    let colidx = p.s.colidx();
    let perm = p.s.transpose_perm().as_slice();
    let nranks = ranks.min(p.l.num_left().max(1));

    // Partition by left vertex with balanced edge counts (same scheme
    // as distributed BP).
    let mut boundaries = vec![0usize];
    {
        let per = m.div_ceil(nranks);
        let mut acc = 0usize;
        for a in 0..p.l.num_left() {
            acc += p.l.left_degree(a as u32);
            if acc >= per * boundaries.len() && boundaries.len() < nranks {
                boundaries.push(a + 1);
            }
        }
        while boundaries.len() <= nranks {
            boundaries.push(p.l.num_left());
        }
    }
    let edge_lo: Vec<usize> = (0..=nranks)
        .map(|r| {
            if boundaries[r] >= p.l.num_left() {
                m
            } else {
                p.l.left_range(boundaries[r] as u32).start
            }
        })
        .collect();
    let value_lo: Vec<usize> = edge_lo.iter().map(|&e| rowptr[e]).collect();
    let owner_of_value = |idx: usize| value_lo.partition_point(|&v| v <= idx) - 1;

    // Static halo plan: rank r needs u_vals[perm[idx]] for its local
    // value range; plan[r][s] = global indices r needs from s.
    let mut need: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); nranks]; nranks];
    for r in 0..nranks {
        for idx in value_lo[r]..value_lo[r + 1] {
            let src = perm[idx];
            need[r][owner_of_value(src)].push(src as u32);
        }
    }

    // Distributed state: per-rank U blocks (upper-triangular values).
    let mut u_blocks: Vec<Vec<f64>> = (0..nranks)
        .map(|r| vec![0.0f64; value_lo[r + 1] - value_lo[r]])
        .collect();

    let mut best: Option<(f64, Vec<f64>, usize)> = None;
    let mut best_upper = f64::INFINITY;
    let mut stall = 0usize;
    let mut history: Vec<IterationRecord> = Vec::new();
    let mut trace = RunTrace::new();

    // Scratch shared across iterations (the "allgathered" views; in a
    // real MPI code these stay distributed — the row matchings and the
    // U update below only ever read rank-local slices of them).
    let mut row_w = vec![0.0f64; nnz];
    let mut ut = vec![0.0f64; nnz];

    for k in 1..=config.iterations {
        // Superstep 1: halo exchange of U values for the transpose.
        // The static plan (`need[r][s]`) is the exact message content a
        // real MPI code would ship; here the "receive" reads the
        // owner's block directly in plan order.
        for r in 0..nranks {
            let mut cursors = vec![0usize; nranks];
            for idx in value_lo[r]..value_lo[r + 1] {
                let src = perm[idx];
                let owner = owner_of_value(src);
                debug_assert_eq!(need[r][owner][cursors[owner]] as usize, src);
                cursors[owner] += 1;
                ut[idx] = u_blocks[owner][src - value_lo[owner]];
            }
        }

        // Superstep 2: local row weights + row matchings.
        for r in 0..nranks {
            for idx in value_lo[r]..value_lo[r + 1] {
                row_w[idx] = beta / 2.0 + u_blocks[r][idx - value_lo[r]] - ut[idx];
            }
        }
        let (d, sl_vals) = solve_row_matchings(p, &row_w);

        // Superstep 3: w̄ and the distributed matching.
        let wbar: Vec<f64> =
            p.l.weights()
                .iter()
                .zip(&d)
                .map(|(&wi, &di)| alpha * wi + di)
                .collect();
        let matching = distributed_local_dominant(&p.l, &wbar, nranks);

        // Superstep 4: bounds (allreduce).
        let value = evaluate_matching(p, &matching, alpha, beta);
        let x = matching.indicator(&p.l);
        let upper: f64 = x.iter().zip(&wbar).map(|(&xi, &wi)| xi * wi).sum();

        if config.record_history {
            history.push(IterationRecord {
                iteration: k,
                objective: value.total,
                weight: value.weight,
                overlap: value.overlap,
                upper_bound: Some(upper),
            });
        }
        trace.algo.rounding_invocations += 1;
        trace.algo.rounding_batch_sizes.push(1);
        if best.as_ref().is_none_or(|(b, _, _)| value.total > *b) {
            best = Some((value.total, wbar.clone(), k));
            trace.algo.best_improvements += 1;
        }
        if upper < best_upper - 1e-12 {
            best_upper = upper;
            stall = 0;
        } else {
            stall += 1;
            if stall >= config.mstep {
                gamma /= 2.0;
                stall = 0;
            }
        }

        // Superstep 5: local multiplier update (needs the S_L halo via
        // the same plan, and the broadcast x).
        let mut slt = vec![0.0f64; nnz];
        for idx in 0..nnz {
            slt[idx] = sl_vals[perm[idx]];
        }
        let bound = beta / 2.0;
        for r in 0..nranks {
            // Row-wise walk (values of a row are contiguous).
            let e_start = edge_lo[r];
            let e_end = edge_lo[r + 1];
            for e in e_start..e_end {
                for idx in rowptr[e]..rowptr[e + 1] {
                    let f = colidx[idx] as usize;
                    let local = idx - value_lo[r];
                    if f <= e {
                        u_blocks[r][local] = 0.0;
                        continue;
                    }
                    let upd =
                        u_blocks[r][local] - gamma * x[e] * sl_vals[idx] + gamma * slt[idx] * x[f];
                    u_blocks[r][local] = upd.clamp(-bound, bound);
                }
            }
        }
    }

    // Invariant: iterations >= 1 is enforced by AlignConfig::validate,
    // and every iteration offers an incumbent, so `best` is populated.
    let (_, best_g, best_iter) = best.expect("at least one iteration ran");
    let matching = distributed_local_dominant(&p.l, &best_g, nranks);
    let value = evaluate_matching(p, &matching, alpha, beta);
    AlignmentResult {
        matching,
        objective: value.total,
        weight: value.weight,
        overlap: value.overlap,
        best_iteration: best_iter,
        upper_bound: Some(best_upper.max(value.total)),
        history,
        trace,
    }
}
