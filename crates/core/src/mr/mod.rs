//! Klau's matching relaxation (MR) for network alignment
//! (paper Listing 1 / §III.A, parallelization per §IV.B).
//!
//! Per iteration `k`:
//!
//! 1. **row match** — for every row of `S`, an exact tiny matching of
//!    the row of `(β/2)·S + U⁽ᵏ⁾ − U⁽ᵏ⁾ᵀ` gives `d` and the selection
//!    indicator `S_L`;
//! 2. **daxpy** — `w̄⁽ᵏ⁾ = α·w + d`;
//! 3. **match** — `x⁽ᵏ⁾ = bipartite_match(w̄⁽ᵏ⁾)` (this is where the
//!    exact/approximate substitution happens);
//! 4. **objective** — lower bound `α·x ᵀw + (β/2)xᵀSx` and upper bound
//!    `w̄⁽ᵏ⁾ᵀx⁽ᵏ⁾`;
//! 5. **update U** — subgradient step
//!    `F = U⁽ᵏ⁻¹⁾ − γ·X·triu(S_L) + γ·tril(S_L)ᵀ·X`, clamped to
//!    `[−β/2, β/2]` (the bound used by the authors' released
//!    `netalignmr` code; the paper writes `bound F` without the
//!    interval). When the upper bound hasn't improved for `mstep`
//!    iterations, `γ` halves.
//!
//! Unlike BP, the matching *drives* the multiplier update, which is why
//! MR is sensitive to approximate rounding (paper §VII).

pub mod distributed;
pub mod rowmatch;

use crate::bp::{finalize, CHUNK};
use crate::config::AlignConfig;
use crate::objective::evaluate_matching;
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::trace::{MatcherCounters, RunTrace, Step};
use netalign_matching::max_weight_matching_traced;
use rayon::prelude::*;
use rowmatch::solve_row_matchings;

/// Run Klau's matching relaxation on `problem` with `config`.
pub fn matching_relaxation(problem: &NetAlignProblem, config: &AlignConfig) -> AlignmentResult {
    config.validate();
    let p = problem;
    let m = p.l.num_edges();
    let nnz = p.s.nnz();
    let (alpha, beta) = (config.alpha, config.beta);
    let mut gamma = config.gamma;
    let mut trace = RunTrace::new();
    let matcher_counters = MatcherCounters::new(config.trace_matcher);
    let perm = p.s.transpose_perm().as_slice();

    // Lagrange multipliers U over the pattern of S (upper triangle
    // only; the lower triangle enters through −Uᵀ).
    let mut u_vals = vec![0.0f64; nnz];
    let mut row_w = vec![0.0f64; nnz];
    let mut wbar = vec![0.0f64; m];
    let colidx = p.s.colidx();

    let mut best: Option<(f64, Vec<f64>, usize)> = None;
    let mut best_upper = f64::INFINITY;
    let mut stall = 0usize;
    let mut history: Vec<IterationRecord> = Vec::new();

    for k in 1..=config.iterations {
        // Step 1: row matchings on (β/2)S + U − Uᵀ.
        let t0 = std::time::Instant::now();
        row_w
            .par_iter_mut()
            .enumerate()
            .with_min_len(CHUNK)
            .for_each(|(idx, rw)| {
                *rw = beta / 2.0 + u_vals[idx] - u_vals[perm[idx]];
            });
        let (d, sl_vals) = solve_row_matchings(p, &row_w);
        trace.add(Step::RowMatch, t0.elapsed());

        // Step 2: w̄ = αw + d.
        let t0 = std::time::Instant::now();
        wbar.par_iter_mut()
            .with_min_len(CHUNK)
            .zip(p.l.weights().par_iter().with_min_len(CHUNK))
            .zip(d.par_iter().with_min_len(CHUNK))
            .for_each(|((wb, &wi), &di)| *wb = alpha * wi + di);
        trace.add(Step::Daxpy, t0.elapsed());

        // Step 3: the full matching — exact or approximate.
        let t0 = std::time::Instant::now();
        let matching = max_weight_matching_traced(&p.l, &wbar, config.matcher, &matcher_counters);
        trace.add(Step::Match, t0.elapsed());
        trace.algo.rounding_invocations += 1;
        trace.algo.rounding_batch_sizes.push(1);

        // Step 4: bounds.
        let t0 = std::time::Instant::now();
        let mut value = evaluate_matching(p, &matching, alpha, beta);
        let x = matching.indicator(&p.l);
        // Serial dot product: a rayon float reduction's tree shape (and
        // hence its roundoff) depends on work stealing; this sum must be
        // deterministic so that runs are reproducible across pool sizes
        // and bit-identical to the distributed implementation.
        let upper: f64 = x.iter().zip(wbar.iter()).map(|(&xi, &wi)| xi * wi).sum();
        trace.add(Step::ObjectiveEval, t0.elapsed());

        // Optional enriched rounding (netalignmr's rtype=2): re-match
        // the overlap-aware weights αw + β·S·x and keep the better
        // primal. Counts toward the Match step.
        let mut enriched_wbar: Option<Vec<f64>> = None;
        if config.enriched_rounding {
            let t0 = std::time::Instant::now();
            let rowptr = p.s.rowptr();
            let colidx = p.s.colidx();
            let mut g2 = vec![0.0f64; m];
            g2.par_iter_mut()
                .enumerate()
                .with_min_len(CHUNK)
                .for_each(|(e, ge)| {
                    let mut acc = 0.0;
                    for idx in rowptr[e]..rowptr[e + 1] {
                        acc += x[colidx[idx] as usize];
                    }
                    *ge = alpha * p.l.weights()[e] + beta * acc;
                });
            let m2 = max_weight_matching_traced(&p.l, &g2, config.matcher, &matcher_counters);
            let v2 = evaluate_matching(p, &m2, alpha, beta);
            if v2.total > value.total {
                value = v2;
                enriched_wbar = Some(g2);
            }
            trace.add(Step::Match, t0.elapsed());
            trace.algo.rounding_invocations += 1;
            trace.algo.rounding_batch_sizes.push(1);
        }

        if config.record_history {
            history.push(IterationRecord {
                iteration: k,
                objective: value.total,
                weight: value.weight,
                overlap: value.overlap,
                upper_bound: Some(upper),
            });
        }
        if best.as_ref().is_none_or(|(b, _, _)| value.total > *b) {
            let g = enriched_wbar.unwrap_or_else(|| wbar.clone());
            best = Some((value.total, g, k));
            trace.algo.best_improvements += 1;
        }

        // Step size control: halve γ when the upper bound stalls.
        if upper < best_upper - 1e-12 {
            best_upper = upper;
            stall = 0;
        } else {
            stall += 1;
            if stall >= config.mstep {
                gamma /= 2.0;
                stall = 0;
            }
        }

        // Step 5: F = U − γ·X·triu(S_L) + γ·tril(S_L)ᵀ·X, clamped.
        let t0 = std::time::Instant::now();
        let bound = beta / 2.0;
        // Row-parallel over the pattern: entry idx sits at (e, f) with
        // e the row and f = colidx[idx].
        let rowptr = p.s.rowptr();
        let u_old = u_vals.clone();
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(m);
        let mut rest: &mut [f64] = &mut u_vals;
        for e in 0..m {
            let (head, tail) = rest.split_at_mut(rowptr[e + 1] - rowptr[e]);
            slices.push(head);
            rest = tail;
        }
        slices
            .par_iter_mut()
            .enumerate()
            .with_min_len(64)
            .for_each(|(e, row)| {
                let base = rowptr[e];
                for (i, uv) in row.iter_mut().enumerate() {
                    let idx = base + i;
                    let f = colidx[idx] as usize;
                    if f <= e {
                        *uv = 0.0; // strictly upper triangular multipliers
                        continue;
                    }
                    // triu(S_L)[e,f] is S_L's own entry; tril(S_L)ᵀ[e,f]
                    // = S_L[f,e], read through the transpose permutation.
                    let upd = u_old[idx] - gamma * x[e] * sl_vals[idx]
                        + gamma * sl_vals[perm[idx]] * x[f];
                    *uv = upd.clamp(-bound, bound);
                }
            });
        trace.add(Step::UpdateU, t0.elapsed());

        // The multiplier block and the two weight vectors rewritten
        // this iteration are MR's "messages".
        trace.algo.messages_updated += (2 * nnz + m) as u64;
        trace.end_iteration();
    }

    let mut result = finalize(p, config, best, history, trace, &matcher_counters);
    result.upper_bound = Some(best_upper.max(result.objective));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
    use netalign_graph::{BipartiteGraph, Graph};
    use netalign_matching::MatcherKind;

    fn cycle_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn recovers_identity_on_cycle() {
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 25,
            record_history: true,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        assert_eq!(r.matching.cardinality(), 4);
        assert_eq!(r.overlap, 4.0);
        assert_eq!(r.history.len(), 25);
    }

    #[test]
    fn upper_bound_dominates_objective() {
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 30,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        let ub = r.upper_bound.unwrap();
        assert!(
            ub + 1e-9 >= r.objective,
            "upper bound {ub} below objective {}",
            r.objective
        );
        let ratio = r.approximation_ratio().unwrap();
        assert!(ratio > 0.0 && ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn optimality_gap_closes_on_easy_instance() {
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 60,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        // identity objective: weight 4 + 2*overlap 4 = 12
        assert_eq!(r.objective, 12.0);
        assert!(r.approximation_ratio().unwrap() > 0.9);
    }

    #[test]
    fn power_law_instance_beats_naive() {
        let g = power_law_graph(50, 2.5, 10, 15);
        let a = add_random_edges(&g, 0.02, 16);
        let b = add_random_edges(&g, 0.02, 17);
        let l = identity_plus_noise_l(50, 50, 3.0 / 50.0, 1.0, 1.0, 18);
        let p = NetAlignProblem::new(a, b, l);
        let cfg = AlignConfig {
            iterations: 40,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        let naive =
            crate::rounding::round_heuristic(&p, p.l.weights(), 1.0, 2.0, MatcherKind::Exact);
        assert!(r.objective >= naive.value.total);
    }

    #[test]
    fn approximate_matching_degrades_gracefully() {
        // The paper's key negative finding: MR + approximate matching
        // still runs and produces a valid (if possibly worse) solution.
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 25,
            ..Default::default()
        };
        let exact = matching_relaxation(&p, &cfg);
        let approx = matching_relaxation(
            &p,
            &AlignConfig {
                matcher: MatcherKind::ParallelLocalDominant,
                ..cfg
            },
        );
        assert!(approx.matching.is_valid(&p.l));
        assert!(approx.objective <= exact.objective + 1e-9);
    }

    #[test]
    fn enriched_rounding_never_hurts() {
        let g = power_law_graph(60, 2.2, 12, 55);
        let a = add_random_edges(&g, 0.02, 56);
        let b = add_random_edges(&g, 0.02, 57);
        let l = identity_plus_noise_l(60, 60, 8.0 / 60.0, 1.0, 1.0, 58);
        let p = NetAlignProblem::new(a, b, l);
        let base = AlignConfig {
            iterations: 30,
            ..Default::default()
        };
        let plain = matching_relaxation(&p, &base);
        let enriched = matching_relaxation(
            &p,
            &AlignConfig {
                enriched_rounding: true,
                ..base
            },
        );
        assert!(enriched.objective >= plain.objective - 1e-9);
        assert!(enriched.matching.is_valid(&p.l));
    }

    #[test]
    fn multipliers_stay_strictly_upper() {
        // Internal invariant is not directly observable; exercise a run
        // with history and check bounds behave sanely instead.
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 12,
            mstep: 3,
            record_history: true,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        for rec in &r.history {
            assert!(rec.upper_bound.unwrap().is_finite());
            assert!(rec.objective <= rec.upper_bound.unwrap() + 1e-9 + p.l.num_edges() as f64);
        }
    }
}
