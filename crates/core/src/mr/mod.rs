//! Klau's matching relaxation (MR) for network alignment
//! (paper Listing 1 / §III.A, parallelization per §IV.B).
//!
//! Per iteration `k`:
//!
//! 1. **row match** — for every row of `S`, an exact tiny matching of
//!    the row of `(β/2)·S + U⁽ᵏ⁾ − U⁽ᵏ⁾ᵀ` gives `d` and the selection
//!    indicator `S_L`;
//! 2. **daxpy** — `w̄⁽ᵏ⁾ = α·w + d`;
//! 3. **match** — `x⁽ᵏ⁾ = bipartite_match(w̄⁽ᵏ⁾)` (this is where the
//!    exact/approximate substitution happens);
//! 4. **objective** — lower bound `α·x ᵀw + (β/2)xᵀSx` and upper bound
//!    `w̄⁽ᵏ⁾ᵀx⁽ᵏ⁾`;
//! 5. **update U** — subgradient step
//!    `F = U⁽ᵏ⁻¹⁾ − γ·X·triu(S_L) + γ·tril(S_L)ᵀ·X`, clamped to
//!    `[−β/2, β/2]` (the bound used by the authors' released
//!    `netalignmr` code; the paper writes `bound F` without the
//!    interval). When the upper bound hasn't improved for `mstep`
//!    iterations, `γ` halves.
//!
//! Unlike BP, the matching *drives* the multiplier update, which is why
//! MR is sensitive to approximate rounding (paper §VII).
//!
//! All state lives in an [`MrEngine`], allocated once in
//! [`MrEngine::new`]. The numeric kernels of each iteration (row
//! matchings, daxpy, multiplier update) are allocation-free in the
//! steady state; only the full bipartite matching and the objective
//! evaluation of step 3/4 — the pluggable matcher — allocate.

pub mod distributed;
pub mod rowmatch;

use crate::bp::{all_finite, finalize, install_fault_hook, CHUNK};
use crate::checkpoint::MrState;
use crate::config::AlignConfig;
use crate::objective::{evaluate_matching, evaluate_matching_with_scratch};
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::rowspans::RowSpans;
use crate::trace::{faults, MatcherCounters, RunTrace, Step};
use netalign_matching::{max_weight_matching_traced, MatcherEngine, Matching, RoundingMatcher};
use rayon::par_uneven_chunks_mut;
use rayon::prelude::*;
use rowmatch::{solve_row_matchings_into, RowWorkspace};
use std::time::Instant;

/// Run Klau's matching relaxation on `problem` with `config`.
pub fn matching_relaxation(problem: &NetAlignProblem, config: &AlignConfig) -> AlignmentResult {
    let mut engine = MrEngine::new(problem, config);
    for _ in 0..config.iterations {
        engine.step();
        engine.end_iteration();
    }
    engine.finish()
}

/// The resident state of one MR run: multipliers, iteration scratch
/// and the loop-invariant row decomposition, allocated once up front.
pub struct MrEngine<'a> {
    p: &'a NetAlignProblem,
    config: &'a AlignConfig,
    /// Iterations completed so far (`step` increments first).
    k: usize,
    gamma: f64,
    // Lagrange multipliers U over the pattern of S (upper triangle
    // only; the lower triangle enters through −Uᵀ), plus the previous
    // iterate the subgradient step reads.
    u_vals: Vec<f64>,
    u_old: Vec<f64>,
    // Last verified-finite multipliers (the rollback target of the
    // numeric guard); empty when guards are off. Zeros initially — the
    // zero multipliers are MR's own starting point.
    safe_u: Vec<f64>,
    // Per-iteration scratch.
    row_w: Vec<f64>,
    sl_vals: Vec<f64>,
    d: Vec<f64>,
    wbar: Vec<f64>,
    x: Vec<f64>,
    g2: Vec<f64>,
    // Loop-invariant structure.
    spans: RowSpans,
    workspaces: Vec<RowWorkspace>,
    // Engine-mode rounding (config.rounding set): one preallocated
    // matcher engine per weight stream — w̄ every iteration, plus the
    // enriched-rounding weights when that option is on — so each warm
    // start diffs against its own previous vector. `None` in legacy
    // mode. `eval_marks` is the all-false scratch for the
    // allocation-free objective evaluation.
    rounding_w: Option<MatcherEngine>,
    rounding_g2: Option<MatcherEngine>,
    eval_marks: Vec<bool>,
    // Incumbent and step-size control.
    best: Option<(f64, usize)>,
    best_g: Vec<f64>,
    best_upper: f64,
    stall: usize,
    // Observability.
    trace: RunTrace,
    counters: MatcherCounters,
    history: Vec<IterationRecord>,
}

impl<'a> MrEngine<'a> {
    /// Allocate all run state for `problem` under `config`.
    pub fn new(p: &'a NetAlignProblem, config: &'a AlignConfig) -> Self {
        config.validate();
        install_fault_hook();
        let m = p.l.num_edges();
        let nnz = p.s.nnz();
        let mut trace = RunTrace::new();
        trace.reserve_iterations(config.iterations);
        let spans = RowSpans::from_rowptr(p.s.rowptr());
        let workspaces = vec![RowWorkspace::default(); spans.num_groups()];
        MrEngine {
            p,
            config,
            k: 0,
            gamma: config.gamma,
            u_vals: vec![0.0; nnz],
            u_old: vec![0.0; nnz],
            safe_u: vec![0.0; if config.numeric_guards { nnz } else { 0 }],
            row_w: vec![0.0; nnz],
            sl_vals: vec![0.0; nnz],
            d: vec![0.0; m],
            wbar: vec![0.0; m],
            x: vec![0.0; m],
            g2: vec![0.0; if config.enriched_rounding { m } else { 0 }],
            spans,
            workspaces,
            rounding_w: config
                .rounding
                .map(|kind| MatcherEngine::new(&p.l, kind, config.warm_start)),
            rounding_g2: config
                .rounding
                .filter(|_| config.enriched_rounding)
                .map(|kind| MatcherEngine::new(&p.l, kind, config.warm_start)),
            eval_marks: vec![false; if config.rounding.is_some() { m } else { 0 }],
            best: None,
            best_g: vec![0.0; m],
            best_upper: f64::INFINITY,
            stall: 0,
            trace,
            counters: MatcherCounters::new(config.trace_matcher),
            history: Vec::with_capacity(if config.record_history {
                config.iterations
            } else {
                0
            }),
        }
    }

    /// Iterations completed so far.
    pub fn iteration(&self) -> usize {
        self.k
    }

    /// Run one MR iteration (Listing 1 steps 1–5).
    pub fn step(&mut self) {
        self.k += 1;
        let k = self.k;
        if faults::active() {
            faults::panic_point("mr.step", k as u64);
        }
        let p = self.p;
        let (alpha, beta) = (self.config.alpha, self.config.beta);
        let gamma = self.gamma;
        let m = p.l.num_edges();
        let nnz = p.s.nnz();
        let perm = p.s.transpose_perm_slice();

        // Step 1: row matchings on (β/2)S + U − Uᵀ.
        let t0 = Instant::now();
        {
            let u_vals = &self.u_vals;
            self.row_w
                .par_iter_mut()
                .enumerate()
                .with_min_len(CHUNK)
                .for_each(|(idx, rw)| {
                    *rw = beta / 2.0 + u_vals[idx] - u_vals[perm[idx]];
                });
        }
        solve_row_matchings_into(
            p,
            &self.row_w,
            &self.spans,
            &mut self.d,
            &mut self.sl_vals,
            &mut self.workspaces,
        );
        self.trace.add(Step::RowMatch, t0.elapsed());

        // Step 2: w̄ = αw + d.
        let t0 = Instant::now();
        self.wbar
            .par_iter_mut()
            .with_min_len(CHUNK)
            .zip(p.l.weights().par_iter().with_min_len(CHUNK))
            .zip(self.d.par_iter().with_min_len(CHUNK))
            .for_each(|((wb, &wi), &di)| *wb = alpha * wi + di);
        self.trace.add(Step::Daxpy, t0.elapsed());

        if faults::active() && faults::nan_due("mr.daxpy", k as u64) {
            self.wbar[0] = f64::NAN;
        }

        // Guard rail: a non-finite w̄ means the multipliers (or the row
        // matchings they drive) went non-finite — nothing downstream of
        // here is usable. Roll the multipliers back to the last finite
        // iterate and halve the step, the same recovery the paper's
        // `mstep` machinery applies on a stalled bound.
        if self.config.numeric_guards {
            let t0 = Instant::now();
            let finite = all_finite(&self.wbar);
            self.trace.add(Step::Guard, t0.elapsed());
            if !finite {
                self.recover_from_nonfinite();
                return;
            }
        }

        // Step 3: the full matching — exact, approximate, or the
        // preallocated (optionally warm-started) rounding engine.
        let t0 = Instant::now();
        let owned;
        let matching: &Matching = if let Some(eng) = self.rounding_w.as_mut() {
            eng.run(&p.l, &self.wbar, &self.counters)
        } else {
            owned =
                max_weight_matching_traced(&p.l, &self.wbar, self.config.matcher, &self.counters);
            &owned
        };
        self.trace.add(Step::Match, t0.elapsed());
        self.trace.algo.rounding_invocations += 1;
        self.trace.algo.rounding_batch_sizes.push(1);

        // Step 4: bounds. The scratch evaluation is bit-identical to
        // the allocating one; engine mode uses it to keep the loop
        // allocation-free.
        let t0 = Instant::now();
        let mut value = if self.eval_marks.is_empty() {
            evaluate_matching(p, matching, alpha, beta)
        } else {
            evaluate_matching_with_scratch(p, matching, alpha, beta, &mut self.eval_marks)
        };
        matching.indicator_into(&p.l, &mut self.x);
        // Serial dot product: a rayon float reduction's tree shape (and
        // hence its roundoff) depends on work stealing; this sum must be
        // deterministic so that runs are reproducible across pool sizes
        // and bit-identical to the distributed implementation.
        let upper: f64 = self
            .x
            .iter()
            .zip(self.wbar.iter())
            .map(|(&xi, &wi)| xi * wi)
            .sum();
        self.trace.add(Step::ObjectiveEval, t0.elapsed());

        // Optional enriched rounding (netalignmr's rtype=2): re-match
        // the overlap-aware weights αw + β·S·x and keep the better
        // primal. Counts toward the Match step.
        let mut use_enriched = false;
        if self.config.enriched_rounding {
            let t0 = Instant::now();
            let rowptr = p.s.rowptr();
            let colidx = p.s.colidx();
            let x = &self.x;
            self.g2
                .par_iter_mut()
                .enumerate()
                .with_min_len(CHUNK)
                .for_each(|(e, ge)| {
                    let mut acc = 0.0;
                    for idx in rowptr[e]..rowptr[e + 1] {
                        acc += x[colidx[idx] as usize];
                    }
                    *ge = alpha * p.l.weights()[e] + beta * acc;
                });
            let m2_owned;
            let m2: &Matching = if let Some(eng) = self.rounding_g2.as_mut() {
                eng.run(&p.l, &self.g2, &self.counters)
            } else {
                m2_owned =
                    max_weight_matching_traced(&p.l, &self.g2, self.config.matcher, &self.counters);
                &m2_owned
            };
            let v2 = if self.eval_marks.is_empty() {
                evaluate_matching(p, m2, alpha, beta)
            } else {
                evaluate_matching_with_scratch(p, m2, alpha, beta, &mut self.eval_marks)
            };
            if v2.total > value.total {
                value = v2;
                use_enriched = true;
            }
            self.trace.add(Step::Match, t0.elapsed());
            self.trace.algo.rounding_invocations += 1;
            self.trace.algo.rounding_batch_sizes.push(1);
        }

        if self.config.record_history {
            self.history.push(IterationRecord {
                iteration: k,
                objective: value.total,
                weight: value.weight,
                overlap: value.overlap,
                upper_bound: Some(upper),
            });
        }
        if self.best.is_none_or(|(b, _)| value.total > b) {
            self.best = Some((value.total, k));
            self.best_g
                .copy_from_slice(if use_enriched { &self.g2 } else { &self.wbar });
            self.trace.algo.best_improvements += 1;
        }

        // Step size control: halve γ when the upper bound stalls.
        if upper < self.best_upper - 1e-12 {
            self.best_upper = upper;
            self.stall = 0;
        } else {
            self.stall += 1;
            if self.stall >= self.config.mstep {
                self.gamma /= 2.0;
                self.stall = 0;
            }
        }

        // Step 5: F = U − γ·X·triu(S_L) + γ·tril(S_L)ᵀ·X, clamped.
        let t0 = Instant::now();
        self.u_old.copy_from_slice(&self.u_vals);
        update_multipliers(
            p,
            &self.spans,
            &mut self.u_vals,
            &self.u_old,
            &self.sl_vals,
            &self.x,
            gamma,
            beta / 2.0,
        );
        self.trace.add(Step::UpdateU, t0.elapsed());

        if faults::active() && faults::nan_due("mr.update-u", k as u64) {
            self.u_vals[0] = f64::NAN;
        }

        // Guard rail: verify the new multipliers before they seed the
        // next iteration; on success they become the rollback target.
        if self.config.numeric_guards {
            let t0 = Instant::now();
            let finite = all_finite(&self.u_vals);
            if finite {
                self.safe_u.copy_from_slice(&self.u_vals);
                self.trace.add(Step::Guard, t0.elapsed());
            } else {
                self.trace.add(Step::Guard, t0.elapsed());
                self.recover_from_nonfinite();
                return;
            }
        }

        // The multiplier block and the two weight vectors rewritten
        // this iteration are MR's "messages".
        self.trace.algo.messages_updated += (2 * nnz + m) as u64;
    }

    /// Roll the multipliers back to the last finite iterate, halve the
    /// subgradient step (the paper's `mstep` recovery), and count it.
    fn recover_from_nonfinite(&mut self) {
        self.u_vals.copy_from_slice(&self.safe_u);
        self.gamma /= 2.0;
        self.stall = 0;
        self.trace.algo.numeric_recoveries += 1;
    }

    /// Close the current iteration's trace row.
    pub fn end_iteration(&mut self) {
        self.trace.end_iteration();
    }

    /// Degradation-ladder rung 2: route every further matching through
    /// warm-started lock-free Suitor engines — the cheapest matcher in
    /// the workspace. A no-op when the engine already matches that way;
    /// otherwise the replacement engines allocate once (accepted: the
    /// ladder fires rarely, and shedding matcher cost dominates the
    /// one-time allocation).
    pub fn force_cheap_rounding(&mut self) {
        fn is_cheap(e: &Option<MatcherEngine>) -> bool {
            e.as_ref()
                .is_some_and(|e| e.kind() == RoundingMatcher::Suitor && e.warm())
        }
        let l = &self.p.l;
        if !is_cheap(&self.rounding_w) {
            self.rounding_w = Some(MatcherEngine::new(l, RoundingMatcher::Suitor, true));
        }
        if self.config.enriched_rounding && !is_cheap(&self.rounding_g2) {
            self.rounding_g2 = Some(MatcherEngine::new(l, RoundingMatcher::Suitor, true));
        }
        let m = l.num_edges();
        if self.eval_marks.len() != m {
            self.eval_marks = vec![false; m];
        }
    }

    /// Snapshot the engine for [`crate::checkpoint`]. Only the
    /// multipliers are independent state — every per-iteration buffer
    /// (`d`, `w̄`, `x`, …) is fully rewritten by the next `step`.
    pub fn checkpoint_state(&self) -> MrState {
        MrState {
            k: self.k,
            gamma: self.gamma,
            u_vals: self.u_vals.clone(),
            best: self.best,
            best_g: self.best_g.clone(),
            best_upper: self.best_upper,
            stall: self.stall,
            history: self.history.clone(),
            algo: self.trace.algo.clone(),
            matcher: self.counters.snapshot(),
        }
    }

    /// Restore a freshly constructed engine from a checkpoint taken on
    /// the same problem and config (the loader already validated both).
    /// Wall-clock step timings restart from zero; everything that feeds
    /// the bit-identity contract continues where the snapshot left off.
    pub fn restore_state(&mut self, state: MrState) {
        self.k = state.k;
        self.gamma = state.gamma;
        self.u_vals.copy_from_slice(&state.u_vals);
        if self.config.numeric_guards {
            self.safe_u.copy_from_slice(&state.u_vals);
        }
        self.best = state.best;
        self.best_g.copy_from_slice(&state.best_g);
        self.best_upper = state.best_upper;
        self.stall = state.stall;
        self.history = state.history;
        self.trace.algo = state.algo;
        self.counters.preload(&state.matcher);
        // The engines' warm memory refers to whatever they matched
        // before the restore; force their next run cold (warm ≡ cold,
        // so the resumed run stays bit-identical).
        if let Some(e) = self.rounding_w.as_mut() {
            e.invalidate();
        }
        if let Some(e) = self.rounding_g2.as_mut() {
            e.invalidate();
        }
    }

    /// Hand the engine previously [released](Self::release_rounding)
    /// rounding engines so their warm memory carries across runs; the
    /// serving engine cache uses this to warm-start repeat requests on
    /// the same candidate graph. Order is `[w-rounding, g2-rounding]`
    /// (the second present only under `enriched_rounding`). Returns
    /// `false` (keeping the freshly allocated engines) unless the count
    /// matches the config and every engine still binds this `L`.
    pub fn adopt_rounding(&mut self, mut engines: Vec<MatcherEngine>) -> bool {
        let want = match (
            self.config.rounding.is_some(),
            self.config.enriched_rounding,
        ) {
            (false, _) => 0,
            (true, false) => 1,
            (true, true) => 2,
        };
        if want == 0 || engines.len() != want || engines.iter().any(|e| !e.binds(&self.p.l)) {
            return false;
        }
        self.rounding_g2 = if want == 2 { engines.pop() } else { None };
        self.rounding_w = engines.pop();
        true
    }

    /// Take the rounding engines — warm memory included — out of the
    /// engine for reuse by a later run on the same graph, in the order
    /// [`adopt_rounding`](Self::adopt_rounding) expects. Only valid
    /// after [`finish_in_place`](Self::finish_in_place); the engine
    /// must not be stepped afterwards.
    pub fn release_rounding(&mut self) -> Vec<MatcherEngine> {
        self.rounding_w
            .take()
            .into_iter()
            .chain(self.rounding_g2.take())
            .collect()
    }

    /// Assemble the result from the incumbent, leaving the engine
    /// hollow but alive so owned components (the rounding engines) can
    /// still be recovered afterwards.
    pub fn finish_in_place(&mut self) -> AlignmentResult {
        let history = std::mem::take(&mut self.history);
        let trace = std::mem::take(&mut self.trace);
        let mut best_g = std::mem::take(&mut self.best_g);
        let best = match self.best.take() {
            Some((obj, iter)) => Some((obj, best_g, iter)),
            None => {
                // Pathological runs where every iteration was rolled
                // back never reach the matching step. Fall back to the
                // raw similarity weights so the caller still gets a
                // valid matching instead of a panic.
                best_g.clear();
                best_g.extend_from_slice(self.p.l.weights());
                Some((f64::NEG_INFINITY, best_g, self.k))
            }
        };
        let mut result = finalize(self.p, self.config, best, history, trace, &self.counters);
        result.upper_bound = Some(self.best_upper.max(result.objective));
        result
    }

    /// Assemble the result from the incumbent.
    pub fn finish(mut self) -> AlignmentResult {
        self.finish_in_place()
    }
}

/// Listing 1 step 5: `U ← bound(U_old − γ·X·triu(S_L) + γ·tril(S_L)ᵀ·X)`
/// row-parallel over the precomputed span decomposition of `S`'s
/// pattern. Entry `idx` sits at `(e, f)` with `e` the row and
/// `f = colidx[idx]`; `triu(S_L)[e,f]` is `S_L`'s own entry and
/// `tril(S_L)ᵀ[e,f] = S_L[f,e]` is read through the transpose
/// permutation. Allocation-free; public so the allocation-counting
/// tests can drive the kernel directly.
#[allow(clippy::too_many_arguments)]
pub fn update_multipliers(
    p: &NetAlignProblem,
    spans: &RowSpans,
    u_vals: &mut [f64],
    u_old: &[f64],
    sl_vals: &[f64],
    x: &[f64],
    gamma: f64,
    bound: f64,
) {
    let rowptr = p.s.rowptr();
    let colidx = p.s.colidx();
    let perm = p.s.transpose_perm_slice();
    let row_bounds = spans.row_bounds();
    let entry_bounds = spans.entry_bounds();
    par_uneven_chunks_mut(u_vals, entry_bounds)
        .enumerate()
        .for_each(|(g, u_chunk)| {
            let base = entry_bounds[g];
            for e in row_bounds[g]..row_bounds[g + 1] {
                for idx in rowptr[e]..rowptr[e + 1] {
                    let uv = &mut u_chunk[idx - base];
                    let f = colidx[idx] as usize;
                    if f <= e {
                        *uv = 0.0; // strictly upper triangular multipliers
                        continue;
                    }
                    let upd = u_old[idx] - gamma * x[e] * sl_vals[idx]
                        + gamma * sl_vals[perm[idx]] * x[f];
                    *uv = upd.clamp(-bound, bound);
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
    use netalign_graph::{BipartiteGraph, Graph};
    use netalign_matching::MatcherKind;

    fn cycle_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn recovers_identity_on_cycle() {
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 25,
            record_history: true,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        assert_eq!(r.matching.cardinality(), 4);
        assert_eq!(r.overlap, 4.0);
        assert_eq!(r.history.len(), 25);
    }

    #[test]
    fn upper_bound_dominates_objective() {
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 30,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        let ub = r.upper_bound.unwrap();
        assert!(
            ub + 1e-9 >= r.objective,
            "upper bound {ub} below objective {}",
            r.objective
        );
        let ratio = r.approximation_ratio().unwrap();
        assert!(ratio > 0.0 && ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn optimality_gap_closes_on_easy_instance() {
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 60,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        // identity objective: weight 4 + 2*overlap 4 = 12
        assert_eq!(r.objective, 12.0);
        assert!(r.approximation_ratio().unwrap() > 0.9);
    }

    #[test]
    fn power_law_instance_beats_naive() {
        let g = power_law_graph(50, 2.5, 10, 15);
        let a = add_random_edges(&g, 0.02, 16);
        let b = add_random_edges(&g, 0.02, 17);
        let l = identity_plus_noise_l(50, 50, 3.0 / 50.0, 1.0, 1.0, 18);
        let p = NetAlignProblem::new(a, b, l);
        let cfg = AlignConfig {
            iterations: 40,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        let naive =
            crate::rounding::round_heuristic(&p, p.l.weights(), 1.0, 2.0, MatcherKind::Exact);
        assert!(r.objective >= naive.value.total);
    }

    #[test]
    fn approximate_matching_degrades_gracefully() {
        // The paper's key negative finding: MR + approximate matching
        // still runs and produces a valid (if possibly worse) solution.
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 25,
            ..Default::default()
        };
        let exact = matching_relaxation(&p, &cfg);
        let approx = matching_relaxation(
            &p,
            &AlignConfig {
                matcher: MatcherKind::ParallelLocalDominant,
                ..cfg
            },
        );
        assert!(approx.matching.is_valid(&p.l));
        assert!(approx.objective <= exact.objective + 1e-9);
    }

    #[test]
    fn enriched_rounding_never_hurts() {
        let g = power_law_graph(60, 2.2, 12, 55);
        let a = add_random_edges(&g, 0.02, 56);
        let b = add_random_edges(&g, 0.02, 57);
        let l = identity_plus_noise_l(60, 60, 8.0 / 60.0, 1.0, 1.0, 58);
        let p = NetAlignProblem::new(a, b, l);
        let base = AlignConfig {
            iterations: 30,
            ..Default::default()
        };
        let plain = matching_relaxation(&p, &base);
        let enriched = matching_relaxation(
            &p,
            &AlignConfig {
                enriched_rounding: true,
                ..base
            },
        );
        assert!(enriched.objective >= plain.objective - 1e-9);
        assert!(enriched.matching.is_valid(&p.l));
    }

    #[test]
    fn multipliers_stay_strictly_upper() {
        // Internal invariant is not directly observable; exercise a run
        // with history and check bounds behave sanely instead.
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 12,
            mstep: 3,
            record_history: true,
            ..Default::default()
        };
        let r = matching_relaxation(&p, &cfg);
        for rec in &r.history {
            assert!(rec.upper_bound.unwrap().is_finite());
            assert!(rec.objective <= rec.upper_bound.unwrap() + 1e-9 + p.l.num_edges() as f64);
        }
    }

    #[test]
    fn engine_loop_matches_wrapper() {
        let p = cycle_problem();
        let cfg = AlignConfig {
            iterations: 18,
            ..Default::default()
        };
        let via_wrapper = matching_relaxation(&p, &cfg);
        let mut e = MrEngine::new(&p, &cfg);
        for _ in 0..cfg.iterations {
            e.step();
            e.end_iteration();
        }
        let manual = e.finish();
        assert_eq!(via_wrapper.objective, manual.objective);
        assert_eq!(via_wrapper.matching, manual.matching);
        assert_eq!(via_wrapper.upper_bound, manual.upper_bound);
    }

    /// The preallocated rounding engine — cold or warm, LD or Suitor,
    /// with and without enriched rounding — reproduces the legacy
    /// `ParallelLocalDominant` run bit-for-bit. MR is the stronger test
    /// of the engines: the matching drives the multiplier update, so
    /// any divergence compounds across iterations.
    #[test]
    fn engine_rounding_matches_legacy_parallel_ld() {
        use netalign_matching::RoundingMatcher;
        let g = power_law_graph(40, 2.5, 10, 35);
        let a = add_random_edges(&g, 0.02, 36);
        let b = add_random_edges(&g, 0.02, 37);
        let l = identity_plus_noise_l(40, 40, 4.0 / 40.0, 1.0, 1.0, 38);
        let p = NetAlignProblem::new(a, b, l);
        for enriched in [false, true] {
            let legacy_cfg = AlignConfig {
                iterations: 15,
                matcher: MatcherKind::ParallelLocalDominant,
                enriched_rounding: enriched,
                record_history: true,
                ..Default::default()
            };
            let legacy = matching_relaxation(&p, &legacy_cfg);
            for kind in [RoundingMatcher::Ld, RoundingMatcher::Suitor] {
                for warm in [false, true] {
                    let cfg = AlignConfig {
                        rounding: Some(kind),
                        warm_start: warm,
                        ..legacy_cfg
                    };
                    let r = matching_relaxation(&p, &cfg);
                    assert_eq!(
                        r.objective.to_bits(),
                        legacy.objective.to_bits(),
                        "enriched {enriched}, {kind:?}, warm {warm}"
                    );
                    assert_eq!(r.matching, legacy.matching);
                    assert_eq!(r.upper_bound, legacy.upper_bound);
                    assert_eq!(r.history.len(), legacy.history.len());
                    for (h, lh) in r.history.iter().zip(&legacy.history) {
                        assert_eq!(h.objective.to_bits(), lh.objective.to_bits());
                        assert_eq!(
                            h.upper_bound.unwrap().to_bits(),
                            lh.upper_bound.unwrap().to_bits()
                        );
                    }
                }
            }
        }
    }
}
