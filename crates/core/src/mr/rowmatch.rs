//! Step 1 of Klau's method: one small exact matching per row of `S`.
//!
//! Row `e = (i, i')` of `S` lists the candidate partner edges
//! `f = (j, j')`. Treating the row values of
//! `(β/2)·S + U − Uᵀ` as weights, we pick the best subset of partners
//! that itself forms a matching in `L` (distinct `j`s and distinct
//! `j'`s). The matching value becomes `d[e]`; the selected entries form
//! row `e` of the indicator matrix `S_L`.
//!
//! The paper always solves these *exactly* — each row problem is tiny —
//! parallelizes over rows, and preallocates the per-thread matching
//! workspaces outside the iteration (§IV.B). We mirror that: rows run
//! in parallel over the precomputed [`RowSpans`] groups, each group
//! reusing a caller-owned [`RowWorkspace`], and each row solve is a
//! dense Hungarian assignment on compacted local indices with zero
//! allocations in the steady state.

use crate::problem::NetAlignProblem;
use crate::rowspans::RowSpans;
use netalign_graph::VertexId;
use netalign_matching::exact::hungarian::{solve_dense_assignment, HungarianBuffers};
use rayon::prelude::*;

/// Per-thread scratch space for row matchings.
#[derive(Clone, Debug, Default)]
pub struct RowWorkspace {
    js: Vec<VertexId>,
    jps: Vec<VertexId>,
    ujs: Vec<VertexId>,
    ujps: Vec<VertexId>,
    ljs: Vec<usize>,
    ljps: Vec<usize>,
    cost: Vec<f64>,
    hung: HungarianBuffers,
}

/// Solve every row matching. `row_weights` holds the values of
/// `(β/2)·S + U − Uᵀ` over the pattern of `S`.
///
/// Returns `d` (per-row matching values, length `|E_L|`) and the
/// indicator values of `S_L` over the pattern of `S`.
pub fn solve_row_matchings(p: &NetAlignProblem, row_weights: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let spans = RowSpans::from_rowptr(p.s.rowptr());
    let mut d = vec![0.0f64; p.l.num_edges()];
    let mut sl_vals = vec![0.0f64; p.s.nnz()];
    let mut workspaces = vec![RowWorkspace::default(); spans.num_groups()];
    solve_row_matchings_into(
        p,
        row_weights,
        &spans,
        &mut d,
        &mut sl_vals,
        &mut workspaces,
    );
    (d, sl_vals)
}

/// Allocation-free form of [`solve_row_matchings`]: `d`, `sl_vals` and
/// one [`RowWorkspace`] per span group are caller-owned and reused
/// across iterations. Each group's workspace warms up to the largest
/// row subproblem it sees, after which the whole sweep runs without
/// heap traffic.
pub fn solve_row_matchings_into(
    p: &NetAlignProblem,
    row_weights: &[f64],
    spans: &RowSpans,
    d: &mut [f64],
    sl_vals: &mut [f64],
    workspaces: &mut [RowWorkspace],
) {
    assert_eq!(row_weights.len(), p.s.nnz());
    assert_eq!(d.len(), p.l.num_edges());
    assert_eq!(sl_vals.len(), p.s.nnz());
    assert_eq!(workspaces.len(), spans.num_groups());
    let rowptr = p.s.rowptr();
    let colidx = p.s.colidx();
    let row_bounds = spans.row_bounds();
    let entry_bounds = spans.entry_bounds();

    rayon::par_uneven_chunks_mut(d, row_bounds)
        .zip(rayon::par_uneven_chunks_mut(sl_vals, entry_bounds))
        .zip(workspaces.par_iter_mut())
        .enumerate()
        .for_each(|(g, ((d_chunk, sl_chunk), ws))| {
            let base = entry_bounds[g];
            let rows = row_bounds[g]..row_bounds[g + 1];
            for (de, e) in d_chunk.iter_mut().zip(rows) {
                let range = rowptr[e]..rowptr[e + 1];
                if range.is_empty() {
                    *de = 0.0;
                    continue;
                }
                let sl_row = &mut sl_chunk[range.start - base..range.end - base];
                *de = solve_one_row(p, ws, &colidx[range.clone()], &row_weights[range], sl_row);
            }
        });
}

/// Solve one row's matching with the thread-local workspace; writes the
/// 0/1 selection into `sl_row` and returns the matching value.
fn solve_one_row(
    p: &NetAlignProblem,
    ws: &mut RowWorkspace,
    cols: &[VertexId],
    weights: &[f64],
    sl_row: &mut [f64],
) -> f64 {
    sl_row.fill(0.0);
    if !weights.iter().any(|&w| w > 0.0) {
        return 0.0;
    }
    // Compact the endpoints of the partner edges into local ids.
    ws.js.clear();
    ws.jps.clear();
    for &f in cols {
        let (j, jp) = p.l.endpoints(f as usize);
        ws.js.push(j);
        ws.jps.push(jp);
    }
    ws.ujs.clone_from(&ws.js);
    ws.ujs.sort_unstable();
    ws.ujs.dedup();
    ws.ujps.clone_from(&ws.jps);
    ws.ujps.sort_unstable();
    ws.ujps.dedup();
    let nj = ws.ujs.len();
    let njp = ws.ujps.len();
    ws.ljs.clear();
    ws.ljps.clear();
    for k in 0..cols.len() {
        // Invariant: ujs/ujps are the sorted-deduped copies of js/jps
        // built just above, so every lookup key is present by
        // construction and binary_search cannot fail.
        ws.ljs.push(ws.ujs.binary_search(&ws.js[k]).unwrap());
        ws.ljps.push(ws.ujps.binary_search(&ws.jps[k]).unwrap());
    }

    // Dense local cost matrix: nj rows, njp real columns plus nj
    // private "stay free" slack columns of cost 0.
    const BIG: f64 = 1e18;
    let ncols = njp + nj;
    ws.cost.clear();
    ws.cost.resize(nj * ncols, BIG);
    for k in 0..cols.len() {
        let w = weights[k];
        if w > 0.0 {
            let slot = &mut ws.cost[ws.ljs[k] * ncols + ws.ljps[k]];
            // Distinct (j, j') pairs: each slot written at most once.
            debug_assert_eq!(*slot, BIG, "duplicate local pair in a row of S");
            *slot = -w;
        }
    }
    for lj in 0..nj {
        ws.cost[lj * ncols + njp + lj] = 0.0;
    }

    let assignment = solve_dense_assignment(&ws.cost, nj, ncols, &mut ws.hung);

    // Read off the chosen (lj, ljp) pairs and mark the row entries.
    let mut value = 0.0;
    for k in 0..cols.len() {
        if weights[k] <= 0.0 {
            continue;
        }
        let j_col = ws.ljps[k] + 1; // 1-indexed columns
        if assignment[j_col] == ws.ljs[k] + 1
            && ws.cost[ws.ljs[k] * ncols + ws.ljps[k]] == -weights[k]
        {
            sl_row[k] = 1.0;
            value += weights[k];
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::{BipartiteGraph, Graph};

    /// 4-cycles with full identity L plus crossings so rows of S have
    /// several entries.
    fn problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for ip in 0..4u32 {
                entries.push((i, ip, 1.0));
            }
        }
        let l = BipartiteGraph::from_entries(4, 4, entries);
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn uniform_weights_pick_row_nnz_capped_matching() {
        let p = problem();
        let w = vec![1.0f64; p.s.nnz()];
        let (d, sl) = solve_row_matchings(&p, &w);
        // Every row e = (i,i'): partners j ∈ adj(i) (2 of them), j' ∈
        // adj(i') (2): 4 candidate edges forming a 2x2 biclique with
        // unit weights → best matching = 2.
        for e in 0..p.l.num_edges() {
            assert_eq!(d[e], 2.0, "row {e}");
        }
        // selections are 0/1 and sum to 2 per row
        for e in 0..p.l.num_edges() {
            let r = p.s.row_range(e);
            let sum: f64 = sl[r].iter().sum();
            assert_eq!(sum, 2.0);
        }
    }

    #[test]
    fn negative_weights_are_skipped() {
        let p = problem();
        let w = vec![-1.0f64; p.s.nnz()];
        let (d, sl) = solve_row_matchings(&p, &w);
        assert!(d.iter().all(|&v| v == 0.0));
        assert!(sl.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn respects_matching_constraint_within_row() {
        let p = problem();
        let (_, sl) = solve_row_matchings(&p, &vec![1.0; p.s.nnz()]);
        for e in 0..p.l.num_edges() {
            let r = p.s.row_range(e);
            let cols = p.s.row_cols(e);
            let mut seen_j = std::collections::HashSet::new();
            let mut seen_jp = std::collections::HashSet::new();
            for (k, &f) in cols.iter().enumerate() {
                if sl[r.start + k] == 1.0 {
                    let (j, jp) = p.l.endpoints(f as usize);
                    assert!(seen_j.insert(j), "duplicate j in row {e}");
                    assert!(seen_jp.insert(jp), "duplicate j' in row {e}");
                }
            }
        }
    }

    #[test]
    fn d_matches_selected_weight_sum() {
        let p = problem();
        let w: Vec<f64> = (0..p.s.nnz()).map(|i| ((i * 7) % 5) as f64 * 0.5).collect();
        let (d, sl) = solve_row_matchings(&p, &w);
        for e in 0..p.l.num_edges() {
            let r = p.s.row_range(e);
            let sum: f64 = (r.clone()).map(|idx| sl[idx] * w[idx]).sum();
            assert!((sum - d[e]).abs() < 1e-12, "row {e}: {sum} vs {}", d[e]);
        }
    }

    #[test]
    fn row_values_are_optimal_vs_exhaustive() {
        // Cross-check each row against the brute-force matcher on the
        // row's local subproblem.
        use netalign_matching::exact::brute_force_matching;
        let p = problem();
        let w: Vec<f64> = (0..p.s.nnz())
            .map(|i| 0.25 + ((i * 13) % 7) as f64)
            .collect();
        let (d, _) = solve_row_matchings(&p, &w);
        for e in 0..p.l.num_edges() {
            let range = p.s.row_range(e);
            let cols = p.s.row_cols(e);
            if cols.is_empty() {
                continue;
            }
            // Build the row's subproblem explicitly.
            let mut js: Vec<u32> = cols.iter().map(|&f| p.l.endpoints(f as usize).0).collect();
            let mut jps: Vec<u32> = cols.iter().map(|&f| p.l.endpoints(f as usize).1).collect();
            let mut ujs = js.clone();
            ujs.sort_unstable();
            ujs.dedup();
            let mut ujps = jps.clone();
            ujps.sort_unstable();
            ujps.dedup();
            js.iter_mut()
                .for_each(|j| *j = ujs.binary_search(j).unwrap() as u32);
            jps.iter_mut()
                .for_each(|j| *j = ujps.binary_search(j).unwrap() as u32);
            let entries: Vec<(u32, u32, f64)> = (0..cols.len())
                .map(|k| (js[k], jps[k], w[range.start + k]))
                .collect();
            let local = BipartiteGraph::from_entries(ujs.len(), ujps.len(), entries);
            let (opt, _) = brute_force_matching(&local, local.weights());
            assert!(
                (d[e] - opt).abs() < 1e-9,
                "row {e}: {} vs brute {opt}",
                d[e]
            );
        }
    }
}
