//! Belief propagation for network alignment (paper Listing 2 / §III.B,
//! parallelization per §IV.C).
//!
//! Per iteration `k`:
//!
//! 1. `F = bound₀^β (β·S + S⁽ᵏ⁻¹⁾ᵀ)` — elementwise over the fixed
//!    pattern of `S`, the transpose read through the value permutation;
//! 2. `d = α·w + F·e` — row sums;
//! 3. `y⁽ᵏ⁾ = d − othermaxcol(z⁽ᵏ⁻¹⁾)`,
//!    `z⁽ᵏ⁾ = d − othermaxrow(y⁽ᵏ⁻¹⁾)`;
//! 4. `S⁽ᵏ⁾ = diag(y⁽ᵏ⁾ + z⁽ᵏ⁾ − d)·S − F` — a row rescale of the
//!    pattern minus `F`;
//! 5. damping: iterates interpolate toward the previous ones with
//!    weight `γᵏ` (which decays to zero, freezing the messages);
//! 6. rounding: `round_heuristic(y⁽ᵏ⁾)` and `round_heuristic(z⁽ᵏ⁾)` —
//!    immediately for `batch = 1`, or deferred into batches of `r`
//!    vectors rounded concurrently for `BP(batch = r)`.
//!
//! The rounding step is the only place the matching algorithm appears;
//! the iterates themselves are independent of it (paper §VII), which is
//! why approximate matching barely changes BP's solution quality.

pub mod distributed;
pub mod othermax;

use crate::config::AlignConfig;
use crate::objective::evaluate_matching;
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::rounding::{round_batch_traced, round_heuristic};
use crate::trace::{MatcherCounters, RunTrace, Step};
use netalign_matching::MatcherKind;
use othermax::{column_positions, othermaxcol_into, othermaxrow_into};
use rayon::prelude::*;

/// Work-chunk size for the dynamic-scheduling analog of the paper's
/// OpenMP `schedule(dynamic, 1000)` (§IV.A).
pub(crate) const CHUNK: usize = 1000;

/// Run belief propagation on `problem` with `config`.
///
/// Returns the best rounded solution over all iterations (after an
/// optional final exact re-rounding of the best heuristic vector).
pub fn belief_propagation(problem: &NetAlignProblem, config: &AlignConfig) -> AlignmentResult {
    config.validate();
    let p = problem;
    let m = p.l.num_edges();
    let nnz = p.s.nnz();
    let (alpha, beta, gamma) = (config.alpha, config.beta, config.gamma);
    let mut trace = RunTrace::new();
    let matcher_counters = MatcherCounters::new(config.trace_matcher);

    // All state is preallocated; iteration only rewrites values
    // (paper §IV: "no dynamic memory allocations").
    let mut y = vec![0.0f64; m];
    let mut z = vec![0.0f64; m];
    let mut y_prev = vec![0.0f64; m];
    let mut z_prev = vec![0.0f64; m];
    let mut d = vec![0.0f64; m];
    let mut sk = vec![0.0f64; nnz];
    let mut sk_prev = vec![0.0f64; nnz];
    let mut skt = vec![0.0f64; nnz];
    let mut fv = vec![0.0f64; nnz];
    let mut omr = vec![0.0f64; m];
    let mut omc = vec![0.0f64; m];
    let col_pos = column_positions(&p.l);
    let w = p.l.weights();
    let rowptr = p.s.rowptr();

    // Rounding bookkeeping.
    let mut best: Option<(f64, Vec<f64>, usize)> = None; // (objective, heuristic g, iteration)
    let mut history: Vec<IterationRecord> = Vec::new();
    let mut pending: Vec<(usize, Vec<f64>)> = Vec::new();

    for k in 1..=config.iterations {
        let gk = config.damping.fresh_weight(gamma, k);

        // Step 1: F = bound_0^beta(beta*S + S^(k-1)^T).
        let t0 = std::time::Instant::now();
        p.s.transpose_vals_into(&sk_prev, &mut skt);
        fv.par_iter_mut()
            .with_min_len(CHUNK)
            .zip(skt.par_iter().with_min_len(CHUNK))
            .for_each(|(f, &st)| *f = (beta + st).clamp(0.0, beta));
        trace.add(Step::ComputeF, t0.elapsed());

        // Step 2: d = alpha*w + F e (row sums of F).
        let t0 = std::time::Instant::now();
        d.par_iter_mut()
            .enumerate()
            .with_min_len(CHUNK)
            .for_each(|(e, de)| {
                let mut acc = 0.0;
                for idx in rowptr[e]..rowptr[e + 1] {
                    acc += fv[idx];
                }
                *de = alpha * w[e] + acc;
            });
        trace.add(Step::ComputeD, t0.elapsed());

        // Step 3: othermax sweeps (use previous iterates). The two
        // sweeps are independent, so they run as parallel tasks — the
        // reorganization the paper's §IX suggests as future work.
        let t0 = std::time::Instant::now();
        rayon::join(
            || othermaxcol_into(&p.l, &z_prev, &col_pos, &mut omc, CHUNK),
            || othermaxrow_into(&p.l, &y_prev, &mut omr, CHUNK),
        );
        y.par_iter_mut()
            .with_min_len(CHUNK)
            .zip(d.par_iter().with_min_len(CHUNK))
            .zip(omc.par_iter().with_min_len(CHUNK))
            .for_each(|((yi, &di), &oi)| *yi = di - oi);
        z.par_iter_mut()
            .with_min_len(CHUNK)
            .zip(d.par_iter().with_min_len(CHUNK))
            .zip(omr.par_iter().with_min_len(CHUNK))
            .for_each(|((zi, &di), &oi)| *zi = di - oi);
        trace.add(Step::OtherMax, t0.elapsed());

        // Step 4: S^(k) = diag(y + z - d) S - F, row-parallel over the
        // fixed pattern (entries of each row are contiguous).
        let t0 = std::time::Instant::now();
        sk_rowwise_update(rowptr, &mut sk, &y, &z, &d, &fv);
        trace.add(Step::UpdateS, t0.elapsed());

        // Step 5: damping toward the previous iterate.
        let t0 = std::time::Instant::now();
        damp(&mut y, &mut y_prev, gk);
        damp(&mut z, &mut z_prev, gk);
        damp(&mut sk, &mut sk_prev, gk);
        trace.add(Step::Damping, t0.elapsed());

        // Step 6: rounding (immediate or batched). After damping,
        // y/z hold the k-th damped iterates (and were also copied into
        // y_prev/z_prev for the next iteration).
        // The y/z/sk entries rewritten this iteration are BP's
        // "messages"; d and F are derived scratch.
        trace.algo.messages_updated += (2 * m + nnz) as u64;

        pending.push((k, y.clone()));
        pending.push((k, z.clone()));
        if pending.len() >= config.batch.max(1) * 2 || k == config.iterations {
            let t0 = std::time::Instant::now();
            let batch: Vec<Vec<f64>> = pending.iter().map(|(_, g)| g.clone()).collect();
            let rounded =
                round_batch_traced(p, &batch, alpha, beta, config.matcher, &matcher_counters);
            trace.algo.rounding_invocations += 1;
            trace.algo.rounding_batch_sizes.push(batch.len() as u64);
            for ((iter_k, g), r) in pending.drain(..).zip(rounded) {
                if config.record_history {
                    history.push(IterationRecord {
                        iteration: iter_k,
                        objective: r.value.total,
                        weight: r.value.weight,
                        overlap: r.value.overlap,
                        upper_bound: None,
                    });
                }
                if best.as_ref().is_none_or(|(b, _, _)| r.value.total > *b) {
                    best = Some((r.value.total, g, iter_k));
                    trace.algo.best_improvements += 1;
                }
            }
            trace.add(Step::Match, t0.elapsed());
        }
        trace.end_iteration();
    }

    finalize(p, config, best, history, trace, &matcher_counters)
}

/// `S^(k)[e, :] = (y[e] + z[e] - d[e]) - F[e, :]` over the fixed pattern.
fn sk_rowwise_update(
    rowptr: &[usize],
    sk: &mut [f64],
    y: &[f64],
    z: &[f64],
    d: &[f64],
    fv: &[f64],
) {
    // Parallelize over rows by splitting the value array at row bounds.
    // rayon's par_chunks cannot follow irregular rows, so iterate rows
    // in parallel with unsafe-free indexing via split decomposition:
    // each row's slice is disjoint, expressed through par_iter over
    // row indices writing through a raw pointer wrapper would be
    // unsafe; instead use the entry->row map-free two-level loop:
    let nrows = rowptr.len() - 1;
    // Build disjoint mutable row slices.
    let mut slices: Vec<&mut [f64]> = Vec::with_capacity(nrows);
    let mut rest = sk;
    let mut offset = 0usize;
    for e in 0..nrows {
        let len = rowptr[e + 1] - rowptr[e];
        let (head, tail) = rest.split_at_mut(len);
        slices.push(head);
        rest = tail;
        offset += len;
    }
    debug_assert_eq!(offset, rowptr[nrows]);
    slices
        .par_iter_mut()
        .enumerate()
        .with_min_len(CHUNK.min(1024))
        .for_each(|(e, row)| {
            let scale = y[e] + z[e] - d[e];
            let base = rowptr[e];
            for (i, v) in row.iter_mut().enumerate() {
                *v = scale - fv[base + i];
            }
        });
}

/// `cur ← gk·cur + (1−gk)·prev`, then `prev ← cur`.
fn damp(cur: &mut [f64], prev: &mut [f64], gk: f64) {
    cur.par_iter_mut()
        .with_min_len(CHUNK)
        .zip(prev.par_iter_mut().with_min_len(CHUNK))
        .for_each(|(c, p)| {
            *c = gk * *c + (1.0 - gk) * *p;
            *p = *c;
        });
}

/// Shared tail of both aligners: optional final exact rounding of the
/// best heuristic, then assemble the result.
pub(crate) fn finalize(
    p: &NetAlignProblem,
    config: &AlignConfig,
    best: Option<(f64, Vec<f64>, usize)>,
    history: Vec<IterationRecord>,
    mut trace: RunTrace,
    matcher_counters: &MatcherCounters,
) -> AlignmentResult {
    let (best_obj, best_g, best_iter) = best.expect("at least one rounding must have happened");
    let t0 = std::time::Instant::now();
    let mut matching = netalign_matching::max_weight_matching_traced(
        &p.l,
        &best_g,
        config.matcher,
        matcher_counters,
    );
    if config.final_exact_round && config.matcher != MatcherKind::Exact {
        // The paper always converts the best heuristic with one exact
        // matching at the very end (§VII).
        let exact = round_heuristic(p, &best_g, config.alpha, config.beta, MatcherKind::Exact);
        if exact.value.total >= best_obj {
            matching = exact.matching;
        }
    }
    trace.add(Step::Match, t0.elapsed());
    trace.matcher = matcher_counters.snapshot();
    let value = evaluate_matching(p, &matching, config.alpha, config.beta);
    AlignmentResult {
        matching,
        objective: value.total,
        weight: value.weight,
        overlap: value.overlap,
        best_iteration: best_iter,
        upper_bound: None,
        history,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
    use netalign_graph::{BipartiteGraph, Graph};

    fn tiny_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn recovers_identity_on_cycle() {
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 20,
            record_history: true,
            ..Default::default()
        };
        let r = belief_propagation(&p, &cfg);
        assert_eq!(r.matching.cardinality(), 4);
        assert_eq!(r.overlap, 4.0);
        for i in 0..4 {
            assert_eq!(r.matching.mate_of_left(i), Some(i));
        }
        assert_eq!(r.history.len(), 40); // 2 roundings per iteration
    }

    #[test]
    fn approximate_matching_matches_exact_on_tiny() {
        let p = tiny_problem();
        let exact = belief_propagation(
            &p,
            &AlignConfig {
                iterations: 15,
                ..Default::default()
            },
        );
        let approx = belief_propagation(
            &p,
            &AlignConfig {
                iterations: 15,
                matcher: MatcherKind::ParallelLocalDominant,
                ..Default::default()
            },
        );
        assert_eq!(exact.objective, approx.objective);
    }

    #[test]
    fn batching_does_not_change_the_result() {
        let p = tiny_problem();
        let base = AlignConfig {
            iterations: 12,
            ..Default::default()
        };
        let r1 = belief_propagation(&p, &base);
        let r10 = belief_propagation(&p, &AlignConfig { batch: 10, ..base });
        assert_eq!(r1.objective, r10.objective);
        assert_eq!(r1.matching, r10.matching);
    }

    #[test]
    fn power_law_instance_beats_naive_weight_matching() {
        let g = power_law_graph(60, 2.5, 12, 5);
        let a = add_random_edges(&g, 0.02, 6);
        let b = add_random_edges(&g, 0.02, 7);
        let l = identity_plus_noise_l(60, 60, 4.0 / 60.0, 1.0, 1.0, 8);
        let p = NetAlignProblem::new(a, b, l);
        let cfg = AlignConfig {
            iterations: 50,
            ..Default::default()
        };
        let r = belief_propagation(&p, &cfg);
        // Naive rounding of w alone:
        let naive = round_heuristic(&p, p.l.weights(), 1.0, 2.0, MatcherKind::Exact);
        assert!(
            r.objective >= naive.value.total,
            "BP ({}) should beat naive rounding ({})",
            r.objective,
            naive.value.total
        );
        assert!(r.overlap > 0.0);
    }

    #[test]
    fn history_is_recorded_per_rounding() {
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 6,
            batch: 4,
            record_history: true,
            ..Default::default()
        };
        let r = belief_propagation(&p, &cfg);
        assert_eq!(r.history.len(), 12);
        // iterations appear in non-decreasing order
        for w in r.history.windows(2) {
            assert!(w[0].iteration <= w[1].iteration);
        }
    }

    #[test]
    fn final_exact_round_never_hurts() {
        let p = tiny_problem();
        let base = AlignConfig {
            iterations: 10,
            matcher: MatcherKind::Greedy,
            ..Default::default()
        };
        let without = belief_propagation(&p, &base);
        let with = belief_propagation(
            &p,
            &AlignConfig {
                final_exact_round: true,
                ..base
            },
        );
        assert!(with.objective >= without.objective);
    }
}
