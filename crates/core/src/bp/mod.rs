//! Belief propagation for network alignment (paper Listing 2 / §III.B,
//! parallelization per §IV.C).
//!
//! Per iteration `k`:
//!
//! 1. `F = bound₀^β (β·S + S⁽ᵏ⁻¹⁾ᵀ)` — elementwise over the fixed
//!    pattern of `S`, the transpose read through the value permutation;
//! 2. `d = α·w + F·e` — row sums;
//! 3. `y⁽ᵏ⁾ = d − othermaxcol(z⁽ᵏ⁻¹⁾)`,
//!    `z⁽ᵏ⁾ = d − othermaxrow(y⁽ᵏ⁻¹⁾)`;
//! 4. `S⁽ᵏ⁾ = diag(y⁽ᵏ⁾ + z⁽ᵏ⁾ − d)·S − F` — a row rescale of the
//!    pattern minus `F`;
//! 5. damping: iterates interpolate toward the previous ones with
//!    weight `γᵏ` (which decays to zero, freezing the messages);
//! 6. rounding: `round_heuristic(y⁽ᵏ⁾)` and `round_heuristic(z⁽ᵏ⁾)` —
//!    immediately for `batch = 1`, or deferred into batches of `r`
//!    vectors rounded concurrently for `BP(batch = r)`.
//!
//! Steps 1 and 2 are **fused** into one row-parallel sweep over the
//! pattern of `S`: each row of `F` is written and summed in the same
//! pass, with the transpose read through the value permutation — no
//! materialized `S⁽ᵏ⁻¹⁾ᵀ` buffer, one fewer traversal of `nnz` data.
//!
//! The rounding step is the only place the matching algorithm appears;
//! the iterates themselves are independent of it (paper §VII), which is
//! why approximate matching barely changes BP's solution quality.
//!
//! All state lives in a [`BpEngine`]: buffers are allocated once in
//! [`BpEngine::new`] and the steady-state loop
//! ([`BpEngine::step`] / [`BpEngine::round_pending`]) is
//! allocation-free (paper §IV: "no dynamic memory allocations") —
//! pending rounding vectors are staged in pooled buffers that are
//! recycled after every flush.

pub mod distributed;
pub mod othermax;

use crate::checkpoint::BpState;
use crate::config::AlignConfig;
use crate::objective::{evaluate_matching, evaluate_matching_with_scratch};
use crate::oocore::{OocError, OocOptions, OocState, Superblock};
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::rounding::{round_batch_traced, round_heuristic};
use crate::rowspans::RowSpans;
use crate::squares::SquaresMatrix;
use crate::trace::{faults, MatcherCounters, RunTrace, Step};
use netalign_graph::mmap::Advice;
use netalign_graph::nacs::Section;
use netalign_graph::VertexId;
use netalign_matching::{MatcherEngine, MatcherKind, RoundingMatcher};
use othermax::{column_positions, othermaxcol_into, othermaxrow_into};
use rayon::par_uneven_chunks_mut;
use rayon::prelude::*;
use std::time::Instant;

/// Work-chunk size for the dynamic-scheduling analog of the paper's
/// OpenMP `schedule(dynamic, 1000)` (§IV.A).
pub(crate) const CHUNK: usize = 1000;

/// Register the fault-injection and cancellation chunk hooks with the
/// runtime exactly once per process. Both hooks are no-ops unless
/// armed (a fault plan installed / a cancel token current), so
/// unconditional installation costs one function-pointer load each per
/// chunk claim.
pub(crate) fn install_fault_hook() {
    static ONCE: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| {
        rayon::set_chunk_fault_hook(Some(faults::chunk_claim_tick));
        rayon::set_chunk_cancel_hook(Some(crate::trace::cancel::chunk_probe));
    });
}

/// True iff every element of `v` is finite — the guard-rail read pass,
/// parallel over the same chunk decomposition as the kernels.
pub(crate) fn all_finite(v: &[f64]) -> bool {
    v.par_iter()
        .with_min_len(CHUNK)
        .map(|&x| if x.is_finite() { 0u64 } else { 1 })
        .sum::<u64>()
        == 0
}

/// Run belief propagation on `problem` with `config`.
///
/// Returns the best rounded solution over all iterations (after an
/// optional final exact re-rounding of the best heuristic vector).
pub fn belief_propagation(problem: &NetAlignProblem, config: &AlignConfig) -> AlignmentResult {
    let mut engine = BpEngine::new(problem, config);
    for _ in 0..config.iterations {
        engine.step();
        if engine.rounding_due() {
            engine.round_pending();
        }
        engine.end_iteration();
    }
    engine.finish()
}

/// The resident state of one BP run: every buffer the iteration
/// touches, allocated once up front. Driving the engine manually
/// (instead of through [`belief_propagation`]) exposes the
/// steady-state loop to tests — e.g. the allocation-counting test
/// that asserts [`BpEngine::step`] performs no heap traffic.
pub struct BpEngine<'a> {
    p: &'a NetAlignProblem,
    config: &'a AlignConfig,
    /// Iterations completed so far (`step` increments first).
    k: usize,
    /// Engine-local damping base: starts at `config.gamma`, halved by
    /// each numeric recovery (so a rolled-back run re-approaches the
    /// fixed point more conservatively).
    gamma: f64,
    // Iterate state: y/z messages over E_L, S^(k) values over the
    // pattern, plus the derived d, F and othermax scratch.
    y: Vec<f64>,
    z: Vec<f64>,
    y_prev: Vec<f64>,
    z_prev: Vec<f64>,
    d: Vec<f64>,
    sk: Vec<f64>,
    sk_prev: Vec<f64>,
    // Last verified-finite damped iterate (the rollback target of the
    // numeric guard); empty when guards are off. Zeros initially — the
    // zero iterate is BP's own starting point, so a first-iteration
    // rollback is well defined.
    safe_y: Vec<f64>,
    safe_z: Vec<f64>,
    safe_sk: Vec<f64>,
    fv: Vec<f64>,
    omr: Vec<f64>,
    omc: Vec<f64>,
    // Loop-invariant structure, computed once per run.
    col_pos: Vec<u32>,
    spans: RowSpans,
    row_stats: Vec<(f64, f64, usize)>,
    col_stats: Vec<(f64, f64, usize)>,
    // Rounding bookkeeping: staged vectors (and their iterations)
    // awaiting a batched rounding, plus the pool their buffers return
    // to afterward.
    pending_iter: Vec<usize>,
    pending_bufs: Vec<Vec<f64>>,
    buf_pool: Vec<Vec<f64>>,
    // Engine-mode rounding (config.rounding set): two preallocated
    // matcher engines, because `step` stages y then z — index parity
    // routes each stream to its own engine, so warm starts always diff
    // y(k) against y(k-1) and z(k) against z(k-1), never y against z.
    // Empty in legacy mode. `eval_marks` is the all-false scratch for
    // the allocation-free objective evaluation of each rounded iterate.
    rounding: Vec<MatcherEngine>,
    eval_marks: Vec<bool>,
    // Degradation-ladder override of `config.batch` (rung 1): the
    // harness escalates the rounding batch under deadline pressure,
    // trading rounding frequency for time exactly like the paper's
    // `BP(batch = r)` variant. `None` = the configured batch.
    batch_override: Option<usize>,
    best: Option<(f64, usize)>,
    best_g: Vec<f64>,
    // Trajectory recorder for incremental re-alignment: when attached,
    // every post-damping iterate and every rounded stage is captured so
    // a later structural delta can be replayed sparsely (crate::delta).
    recorder: Option<crate::delta::TrajectoryRecorder>,
    // Out-of-core mode (crate::oocore): the nnz-sized iterate streams
    // live in spilled scratch files and `sk`/`sk_prev`/`fv`/`safe_sk`
    // above stay empty. `None` = the ordinary in-core engine.
    ooc: Option<OocState>,
    // Observability.
    trace: RunTrace,
    counters: MatcherCounters,
    history: Vec<IterationRecord>,
}

impl<'a> BpEngine<'a> {
    /// Allocate all run state for `problem` under `config`.
    pub fn new(p: &'a NetAlignProblem, config: &'a AlignConfig) -> Self {
        Self::new_inner(p, config, true)
    }

    /// Allocate an out-of-core engine: the `nnz`-sized iterate state
    /// lives in spilled scratch files under `opts.scratch_dir` and
    /// every sweep over the pattern of `S` is a sequential superblock
    /// pass sized from `opts.max_resident_bytes`. Requires a
    /// memory-mapped squares matrix. Bit-identical to the in-core
    /// engine at every thread count (see [`crate::oocore`]).
    pub fn new_ooc(
        p: &'a NetAlignProblem,
        config: &'a AlignConfig,
        opts: &OocOptions,
    ) -> Result<Self, OocError> {
        if !p.s.is_mapped() {
            return Err(OocError::Unsupported(
                "out-of-core BP requires a memory-mapped squares matrix \
                 (SquaresMatrix::build_streaming or from_mapped)",
            ));
        }
        let mut engine = Self::new_inner(p, config, false);
        engine.ooc = Some(OocState::new(p, &engine.spans, opts)?);
        Ok(engine)
    }

    /// Shared constructor: `nnz_state` controls whether the in-core
    /// `nnz`-sized arrays are allocated (false in out-of-core mode,
    /// where spilled streams replace them).
    fn new_inner(p: &'a NetAlignProblem, config: &'a AlignConfig, nnz_state: bool) -> Self {
        config.validate();
        install_fault_hook();
        let m = p.l.num_edges();
        let nnz = if nnz_state { p.s.nnz() } else { 0 };
        let guards = config.numeric_guards;
        let mut trace = RunTrace::new();
        trace.reserve_iterations(config.iterations);
        let batch_cap = config.batch.max(1) * 2 + 2;
        BpEngine {
            p,
            config,
            k: 0,
            gamma: config.gamma,
            y: vec![0.0; m],
            z: vec![0.0; m],
            y_prev: vec![0.0; m],
            z_prev: vec![0.0; m],
            d: vec![0.0; m],
            sk: vec![0.0; nnz],
            sk_prev: vec![0.0; nnz],
            safe_y: vec![0.0; if guards { m } else { 0 }],
            safe_z: vec![0.0; if guards { m } else { 0 }],
            safe_sk: vec![0.0; if guards { nnz } else { 0 }],
            fv: vec![0.0; nnz],
            omr: vec![0.0; m],
            omc: vec![0.0; m],
            col_pos: column_positions(&p.l),
            spans: RowSpans::from_rowptr(p.s.rowptr()),
            row_stats: vec![(0.0, 0.0, 0); p.l.num_left()],
            col_stats: vec![(0.0, 0.0, 0); p.l.num_right()],
            pending_iter: Vec::with_capacity(batch_cap),
            pending_bufs: Vec::with_capacity(batch_cap),
            buf_pool: Vec::with_capacity(batch_cap),
            rounding: match config.rounding {
                Some(kind) => (0..2)
                    .map(|_| MatcherEngine::new(&p.l, kind, config.warm_start))
                    .collect(),
                None => Vec::new(),
            },
            eval_marks: vec![false; if config.rounding.is_some() { m } else { 0 }],
            batch_override: None,
            best: None,
            best_g: vec![0.0; m],
            recorder: None,
            ooc: None,
            trace,
            counters: MatcherCounters::new(config.trace_matcher),
            history: Vec::with_capacity(if config.record_history {
                2 * config.iterations
            } else {
                0
            }),
        }
    }

    /// Iterations completed so far.
    pub fn iteration(&self) -> usize {
        self.k
    }

    /// Run one BP iteration (Listing 2 steps 1–5) and stage the new
    /// `y`/`z` iterates for rounding. Allocation-free after the first
    /// `2·batch` iterations warmed up the staging pool.
    pub fn step(&mut self) {
        if self.ooc.is_some() {
            // Take the state out so the sweep can borrow it alongside
            // the engine's own buffers; reinstalled unconditionally.
            let mut ooc = self.ooc.take().expect("checked is_some");
            self.step_ooc(&mut ooc);
            self.ooc = Some(ooc);
            return;
        }
        self.k += 1;
        let k = self.k;
        if faults::active() {
            faults::panic_point("bp.step", k as u64);
        }
        let p = self.p;
        let (alpha, beta) = (self.config.alpha, self.config.beta);
        let gk = self.config.damping.fresh_weight(self.gamma, k);
        let w = p.l.weights();
        let rowptr = p.s.rowptr();
        let m = p.l.num_edges();
        let nnz = p.s.nnz();

        // Steps 1+2 fused: F = bound_0^beta(beta*S + S^(k-1)^T) and
        // d = alpha*w + F e in one row-parallel sweep.
        let t0 = Instant::now();
        fused_f_d(
            &p.s,
            &self.spans,
            &self.sk_prev,
            w,
            alpha,
            beta,
            &mut self.fv,
            &mut self.d,
        );
        self.trace.add(Step::ComputeF, t0.elapsed());

        // Step 3: othermax sweeps (use previous iterates). The two
        // sweeps are independent, so they run as parallel tasks — the
        // reorganization the paper's §IX suggests as future work.
        let t0 = Instant::now();
        rayon::join(
            || {
                othermaxcol_into(
                    &p.l,
                    &self.z_prev,
                    &self.col_pos,
                    &mut self.omc,
                    &mut self.col_stats,
                    CHUNK,
                )
            },
            || {
                othermaxrow_into(
                    &p.l,
                    &self.y_prev,
                    &mut self.omr,
                    &mut self.row_stats,
                    CHUNK,
                )
            },
        );
        self.y
            .par_iter_mut()
            .with_min_len(CHUNK)
            .zip(self.d.par_iter().with_min_len(CHUNK))
            .zip(self.omc.par_iter().with_min_len(CHUNK))
            .for_each(|((yi, &di), &oi)| *yi = di - oi);
        self.z
            .par_iter_mut()
            .with_min_len(CHUNK)
            .zip(self.d.par_iter().with_min_len(CHUNK))
            .zip(self.omr.par_iter().with_min_len(CHUNK))
            .for_each(|((zi, &di), &oi)| *zi = di - oi);
        self.trace.add(Step::OtherMax, t0.elapsed());

        // Step 4: S^(k) = diag(y + z - d) S - F, row-parallel over the
        // precomputed span decomposition of the fixed pattern.
        let t0 = Instant::now();
        sk_rowwise_update(
            rowptr,
            &self.spans,
            &mut self.sk,
            &self.y,
            &self.z,
            &self.d,
            &self.fv,
        );
        self.trace.add(Step::UpdateS, t0.elapsed());

        // Step 5: damping toward the previous iterate.
        let t0 = Instant::now();
        damp(&mut self.y, &mut self.y_prev, gk);
        damp(&mut self.z, &mut self.z_prev, gk);
        damp(&mut self.sk, &mut self.sk_prev, gk);
        self.trace.add(Step::Damping, t0.elapsed());

        if faults::active() && faults::nan_due("bp.damping", k as u64) {
            self.y[0] = f64::NAN;
        }

        // Guard rail: verify the damped iterate is finite before it can
        // poison the `γᵏ` interpolation of every later iteration. On
        // failure, roll back to the last finite iterate and halve the
        // damping base.
        if self.config.numeric_guards {
            let t0 = Instant::now();
            let finite = all_finite(&self.y) && all_finite(&self.z) && all_finite(&self.sk);
            if finite {
                self.safe_y.copy_from_slice(&self.y);
                self.safe_z.copy_from_slice(&self.z);
                self.safe_sk.copy_from_slice(&self.sk);
                self.trace.add(Step::Guard, t0.elapsed());
            } else {
                self.y.copy_from_slice(&self.safe_y);
                self.y_prev.copy_from_slice(&self.safe_y);
                self.z.copy_from_slice(&self.safe_z);
                self.z_prev.copy_from_slice(&self.safe_z);
                self.sk.copy_from_slice(&self.safe_sk);
                self.sk_prev.copy_from_slice(&self.safe_sk);
                self.gamma *= 0.5;
                self.trace.algo.numeric_recoveries += 1;
                self.trace.add(Step::Guard, t0.elapsed());
                // Nothing of this iteration survives: no messages were
                // produced and no iterate is staged for rounding. The
                // trajectory still needs this iteration's (rolled-back)
                // state so slot `k` stays the post-iteration-`k` state.
                if let Some(rec) = &mut self.recorder {
                    rec.note_recovery();
                    rec.record_iteration(k, &self.y, &self.z, &self.sk);
                }
                return;
            }
        }

        // The y/z/sk entries rewritten this iteration are BP's
        // "messages"; d and F are derived scratch.
        self.trace.algo.messages_updated += (2 * m + nnz) as u64;

        // Step 6 staging: copy the damped iterates into pooled buffers
        // for the next batched rounding.
        let mut buf = self.buf_pool.pop().unwrap_or_else(|| vec![0.0; m]);
        buf.copy_from_slice(&self.y);
        self.pending_bufs.push(buf);
        self.pending_iter.push(k);
        let mut buf = self.buf_pool.pop().unwrap_or_else(|| vec![0.0; m]);
        buf.copy_from_slice(&self.z);
        self.pending_bufs.push(buf);
        self.pending_iter.push(k);

        if let Some(rec) = &mut self.recorder {
            rec.record_iteration(k, &self.y, &self.z, &self.sk);
        }
    }

    /// Out-of-core iteration: same Listing 2 steps, but every pass
    /// over the pattern of `S` is a *sequential* superblock sweep over
    /// spilled streams (see [`crate::oocore`] for the reformulation
    /// and the bit-identity argument), releasing pages behind it.
    fn step_ooc(&mut self, ooc: &mut OocState) {
        self.k += 1;
        let k = self.k;
        if faults::active() {
            faults::panic_point("bp.step", k as u64);
        }
        let p = self.p;
        let (alpha, beta) = (self.config.alpha, self.config.beta);
        let gk = self.config.damping.fresh_weight(self.gamma, k);
        let w = p.l.weights();
        let rowptr = p.s.rowptr();
        let colidx = p.s.colidx();
        let m = p.l.num_edges();
        let nnz = p.s.nnz();

        // Steps 1+2 fused: d from the transpose companion, read in
        // storage order. F is recomputed in the update sweep instead
        // of stored — same bits, one fewer nnz stream resident.
        let t0 = Instant::now();
        for sb in &ooc.superblocks {
            ooc.skt_prev.advise_sequential(sb.entries.clone());
            ooc_fused_d(
                rowptr,
                sb,
                ooc.skt_prev.as_slice(),
                w,
                alpha,
                beta,
                &mut self.d[sb.rows.clone()],
            );
            ooc.skt_prev.release(sb.entries.clone());
        }
        self.trace.add(Step::ComputeF, t0.elapsed());

        // Step 3: identical to the in-core engine — only m-sized state.
        let t0 = Instant::now();
        rayon::join(
            || {
                othermaxcol_into(
                    &p.l,
                    &self.z_prev,
                    &self.col_pos,
                    &mut self.omc,
                    &mut self.col_stats,
                    CHUNK,
                )
            },
            || {
                othermaxrow_into(
                    &p.l,
                    &self.y_prev,
                    &mut self.omr,
                    &mut self.row_stats,
                    CHUNK,
                )
            },
        );
        self.y
            .par_iter_mut()
            .with_min_len(CHUNK)
            .zip(self.d.par_iter().with_min_len(CHUNK))
            .zip(self.omc.par_iter().with_min_len(CHUNK))
            .for_each(|((yi, &di), &oi)| *yi = di - oi);
        self.z
            .par_iter_mut()
            .with_min_len(CHUNK)
            .zip(self.d.par_iter().with_min_len(CHUNK))
            .zip(self.omr.par_iter().with_min_len(CHUNK))
            .for_each(|((zi, &di), &oi)| *zi = di - oi);
        self.trace.add(Step::OtherMax, t0.elapsed());

        // Steps 4+5 (S part), fused with damping: precompute the row
        // scale from the *undamped* y/z (as in-core step 4 does), then
        // advance sk and its transpose companion in one sequential
        // sweep, counting non-finite values inline for the guard.
        let t0 = Instant::now();
        ooc.scale
            .par_iter_mut()
            .with_min_len(CHUNK)
            .zip(self.y.par_iter().with_min_len(CHUNK))
            .zip(self.z.par_iter().with_min_len(CHUNK))
            .zip(self.d.par_iter().with_min_len(CHUNK))
            .for_each(|(((s, &yi), &zi), &di)| *s = yi + zi - di);
        let mut nonfinite = 0u64;
        for sb in &ooc.superblocks {
            ooc.sk_prev.advise_sequential(sb.entries.clone());
            ooc.skt_prev.advise_sequential(sb.entries.clone());
            nonfinite += ooc_sk_update(
                rowptr,
                colidx,
                sb,
                ooc.sk_prev.as_slice(),
                ooc.skt_prev.as_slice(),
                &ooc.scale,
                beta,
                gk,
                &mut ooc.sk.as_mut_slice()[sb.entries.clone()],
                &mut ooc.skt.as_mut_slice()[sb.entries.clone()],
            );
            ooc.sk.release(sb.entries.clone());
            ooc.skt.release(sb.entries.clone());
            ooc.sk_prev.release(sb.entries.clone());
            ooc.skt_prev.release(sb.entries.clone());
        }
        self.trace.add(Step::UpdateS, t0.elapsed());

        // Step 5 (y/z): the sk damping already happened in the sweep.
        let t0 = Instant::now();
        damp(&mut self.y, &mut self.y_prev, gk);
        damp(&mut self.z, &mut self.z_prev, gk);
        self.trace.add(Step::Damping, t0.elapsed());

        if faults::active() && faults::nan_due("bp.damping", k as u64) {
            self.y[0] = f64::NAN;
        }

        // Guard rail: same decision as in-core (the inline count sees
        // bit-identical sk values). The ping/pong swap replaces the
        // `safe_sk` copy: the prev streams are only ever overwritten
        // *after* an iterate verified finite, so on rollback they
        // already hold the in-core rollback target.
        if self.config.numeric_guards {
            let t0 = Instant::now();
            let finite = all_finite(&self.y) && all_finite(&self.z) && nonfinite == 0;
            if finite {
                self.safe_y.copy_from_slice(&self.y);
                self.safe_z.copy_from_slice(&self.z);
                ooc.advance();
                self.trace.add(Step::Guard, t0.elapsed());
            } else {
                self.y.copy_from_slice(&self.safe_y);
                self.y_prev.copy_from_slice(&self.safe_y);
                self.z.copy_from_slice(&self.safe_z);
                self.z_prev.copy_from_slice(&self.safe_z);
                self.gamma *= 0.5;
                self.trace.algo.numeric_recoveries += 1;
                self.trace.add(Step::Guard, t0.elapsed());
                return;
            }
        } else {
            ooc.advance();
        }

        self.trace.algo.messages_updated += (2 * m + nnz) as u64;

        let mut buf = self.buf_pool.pop().unwrap_or_else(|| vec![0.0; m]);
        buf.copy_from_slice(&self.y);
        self.pending_bufs.push(buf);
        self.pending_iter.push(k);
        let mut buf = self.buf_pool.pop().unwrap_or_else(|| vec![0.0; m]);
        buf.copy_from_slice(&self.z);
        self.pending_bufs.push(buf);
        self.pending_iter.push(k);
    }

    /// Whether the staged iterates should be rounded now: the batch is
    /// full, or the configured iteration budget is exhausted.
    pub fn rounding_due(&self) -> bool {
        !self.pending_iter.is_empty()
            && (self.pending_iter.len() >= self.effective_batch() * 2
                || self.k >= self.config.iterations)
    }

    /// The rounding batch size currently in force: the configured value
    /// unless the degradation ladder escalated it.
    pub fn effective_batch(&self) -> usize {
        self.batch_override.unwrap_or(self.config.batch).max(1)
    }

    /// Degradation-ladder rung 1: double the rounding batch size (the
    /// paper's `BP(batch = r)` trade — fewer, larger batched roundings
    /// per wall-clock second). Capped so a long slide under pressure
    /// cannot defer rounding indefinitely. Changing the batch changes
    /// *when* iterates are rounded, never how, so a run escalated at a
    /// fixed iteration stays deterministic at every pool size.
    pub fn escalate_batch(&mut self) {
        self.batch_override = Some((self.effective_batch() * 2).min(64));
    }

    /// Degradation-ladder rung 2: route every further rounding through
    /// warm-started lock-free Suitor engines — the cheapest matcher in
    /// the workspace. A no-op when the engine already rounds that way;
    /// otherwise the replacement engines allocate once (accepted: the
    /// ladder fires rarely, and shedding matcher cost dominates the
    /// one-time allocation).
    pub fn force_cheap_rounding(&mut self) {
        let already = self.rounding.len() == 2
            && self
                .rounding
                .iter()
                .all(|e| e.kind() == RoundingMatcher::Suitor && e.warm());
        if already {
            return;
        }
        self.rounding = (0..2)
            .map(|_| MatcherEngine::new(&self.p.l, RoundingMatcher::Suitor, true))
            .collect();
        let m = self.p.l.num_edges();
        if self.eval_marks.len() != m {
            self.eval_marks = vec![false; m];
        }
    }

    /// Drop every staged-but-unrounded iterate, recycling the buffers.
    /// Used by the harness at a deadline stop: the incumbent must be
    /// assembled *now*, and rounding the backlog would spend time the
    /// budget no longer has.
    pub fn discard_pending(&mut self) {
        self.pending_iter.clear();
        self.buf_pool.append(&mut self.pending_bufs);
    }

    /// Round every staged iterate concurrently (`BP(batch = r)`),
    /// update the incumbent, and recycle the staging buffers.
    pub fn round_pending(&mut self) {
        if self.pending_iter.is_empty() {
            return;
        }
        let t0 = Instant::now();
        if !self.rounding.is_empty() {
            self.round_pending_with_engines(t0);
            self.post_round_release();
            return;
        }
        let rounded = round_batch_traced(
            self.p,
            &self.pending_bufs,
            self.config.alpha,
            self.config.beta,
            self.config.matcher,
            &self.counters,
        );
        self.trace.algo.rounding_invocations += 1;
        self.trace
            .algo
            .rounding_batch_sizes
            .push(self.pending_bufs.len() as u64);
        for ((&iter_k, g), r) in self
            .pending_iter
            .iter()
            .zip(&self.pending_bufs)
            .zip(&rounded)
        {
            if self.config.record_history {
                self.history.push(IterationRecord {
                    iteration: iter_k,
                    objective: r.value.total,
                    weight: r.value.weight,
                    overlap: r.value.overlap,
                    upper_bound: None,
                });
            }
            if self.best.is_none_or(|(b, _)| r.value.total > b) {
                self.best = Some((r.value.total, iter_k));
                self.best_g.copy_from_slice(g);
                self.trace.algo.best_improvements += 1;
            }
        }
        self.pending_iter.clear();
        self.buf_pool.append(&mut self.pending_bufs);
        self.trace.add(Step::Match, t0.elapsed());
        self.post_round_release();
    }

    /// Out-of-core only: the objective evaluations behind a rounding
    /// walk rows of `S` through the mapped column indices in matched-
    /// edge order. Drop those pages afterwards so the evaluation's
    /// random working set does not accumulate on top of the sweeps'
    /// sequential window.
    fn post_round_release(&self) {
        if self.ooc.is_some() {
            if let Some(view) = self.p.s.mapped_view() {
                view.advise_section(Section::Indices, Advice::DontNeed);
            }
        }
    }

    /// Engine-mode tail of [`BpEngine::round_pending`]: route each
    /// staged vector through its stream's preallocated matcher engine
    /// (in order, so warm starts see consecutive iterates) and evaluate
    /// through the mark scratch. Same bookkeeping as the legacy path,
    /// zero steady-state allocation.
    fn round_pending_with_engines(&mut self, t0: Instant) {
        let (alpha, beta) = (self.config.alpha, self.config.beta);
        let record_history = self.config.record_history;
        let Self {
            p,
            pending_iter,
            pending_bufs,
            buf_pool,
            rounding,
            eval_marks,
            counters,
            history,
            best,
            best_g,
            recorder,
            trace,
            ..
        } = self;
        trace.algo.rounding_invocations += 1;
        trace
            .algo
            .rounding_batch_sizes
            .push(pending_bufs.len() as u64);
        for (idx, (&iter_k, g)) in pending_iter.iter().zip(pending_bufs.iter()).enumerate() {
            let engine = &mut rounding[idx % 2];
            let matching = engine.run(&p.l, g, counters);
            let value = evaluate_matching_with_scratch(p, matching, alpha, beta, eval_marks);
            if let Some(rec) = recorder.as_mut() {
                rec.record_stage(iter_k, idx % 2, matching, value);
            }
            if record_history {
                history.push(IterationRecord {
                    iteration: iter_k,
                    objective: value.total,
                    weight: value.weight,
                    overlap: value.overlap,
                    upper_bound: None,
                });
            }
            if best.is_none_or(|(b, _)| value.total > b) {
                *best = Some((value.total, iter_k));
                best_g.copy_from_slice(g);
                trace.algo.best_improvements += 1;
            }
        }
        pending_iter.clear();
        buf_pool.append(pending_bufs);
        trace.add(Step::Match, t0.elapsed());
    }

    /// Close the current iteration's trace row.
    pub fn end_iteration(&mut self) {
        self.trace.end_iteration();
    }

    /// Attach a trajectory recorder (incremental re-alignment support).
    /// Requires engine-mode rounding: the legacy `round_batch_traced`
    /// path does not drive the stage hook.
    pub fn set_recorder(&mut self, recorder: crate::delta::TrajectoryRecorder) {
        assert!(
            !self.rounding.is_empty(),
            "trajectory recording requires engine-mode rounding (config.rounding)"
        );
        assert!(
            self.ooc.is_none(),
            "trajectory recording is not supported in out-of-core mode"
        );
        self.recorder = Some(recorder);
    }

    /// Detach and return the recorder, if one was attached.
    pub fn take_recorder(&mut self) -> Option<crate::delta::TrajectoryRecorder> {
        self.recorder.take()
    }

    /// Snapshot the engine for [`crate::checkpoint`]. Taken at an
    /// iteration boundary, the damped previous iterates equal the
    /// current ones, so only the current iterate is captured.
    pub fn checkpoint_state(&self) -> BpState {
        assert!(
            self.ooc.is_none(),
            "checkpointing is not supported in out-of-core mode"
        );
        BpState {
            k: self.k,
            gamma: self.gamma,
            y: self.y.clone(),
            z: self.z.clone(),
            sk: self.sk.clone(),
            pending_iter: self.pending_iter.clone(),
            pending_bufs: self.pending_bufs.clone(),
            best: self.best,
            best_g: self.best_g.clone(),
            history: self.history.clone(),
            algo: self.trace.algo.clone(),
            matcher: self.counters.snapshot(),
        }
    }

    /// Restore a freshly constructed engine from a checkpoint taken on
    /// the same problem and config (the loader already validated both).
    /// Wall-clock step timings restart from zero; everything that feeds
    /// the bit-identity contract — iterates, incumbent, history,
    /// counters — continues exactly where the snapshot left off.
    pub fn restore_state(&mut self, state: BpState) {
        self.k = state.k;
        self.gamma = state.gamma;
        self.y.copy_from_slice(&state.y);
        self.y_prev.copy_from_slice(&state.y);
        self.z.copy_from_slice(&state.z);
        self.z_prev.copy_from_slice(&state.z);
        self.sk.copy_from_slice(&state.sk);
        self.sk_prev.copy_from_slice(&state.sk);
        if self.config.numeric_guards {
            self.safe_y.copy_from_slice(&state.y);
            self.safe_z.copy_from_slice(&state.z);
            self.safe_sk.copy_from_slice(&state.sk);
        }
        self.pending_iter = state.pending_iter;
        self.pending_bufs = state.pending_bufs;
        self.best = state.best;
        self.best_g.copy_from_slice(&state.best_g);
        self.history = state.history;
        self.trace.algo = state.algo;
        self.counters.preload(&state.matcher);
        // The engines' warm memory refers to whatever they matched
        // before the restore, not to the restored iterates — force the
        // next run of each back to a cold pass (warm ≡ cold, so the
        // resumed run stays bit-identical).
        for e in &mut self.rounding {
            e.invalidate();
        }
    }

    /// Hand the engine previously [released](Self::release_rounding)
    /// rounding engines so their warm memory carries across runs; the
    /// serving engine cache uses this to warm-start repeat requests on
    /// the same candidate graph. Returns `false` (keeping the freshly
    /// allocated engines) unless exactly two engines are offered and
    /// every one still binds this problem's `L`.
    pub fn adopt_rounding(&mut self, engines: Vec<MatcherEngine>) -> bool {
        if self.config.rounding.is_none()
            || engines.len() != 2
            || engines.iter().any(|e| !e.binds(&self.p.l))
        {
            return false;
        }
        self.rounding = engines;
        true
    }

    /// Take the rounding engines — warm memory included — out of the
    /// engine for reuse by a later run on the same graph. Only valid
    /// after [`finish_in_place`](Self::finish_in_place); the engine
    /// must not be stepped afterwards.
    pub fn release_rounding(&mut self) -> Vec<MatcherEngine> {
        std::mem::take(&mut self.rounding)
    }

    /// Flush any remaining staged iterates and assemble the result,
    /// leaving the engine hollow but alive so owned components (the
    /// rounding engines) can still be recovered afterwards.
    pub fn finish_in_place(&mut self) -> AlignmentResult {
        self.round_pending();
        let history = std::mem::take(&mut self.history);
        let trace = std::mem::take(&mut self.trace);
        let mut best_g = std::mem::take(&mut self.best_g);
        let best = match self.best.take() {
            Some((obj, iter)) => Some((obj, best_g, iter)),
            None => {
                // Pathological runs where every iteration was rolled
                // back never round anything. Fall back to the current
                // (guard-finite) iterate so the caller still gets a
                // valid matching instead of a panic.
                best_g.clear();
                best_g.extend_from_slice(&self.y);
                Some((f64::NEG_INFINITY, best_g, self.k))
            }
        };
        finalize(self.p, self.config, best, history, trace, &self.counters)
    }

    /// Flush any remaining staged iterates and assemble the result.
    pub fn finish(mut self) -> AlignmentResult {
        self.finish_in_place()
    }
}

/// Fused Listing 2 steps 1+2: one row-parallel sweep over the fixed
/// pattern of `S` computes `F[e, :] = bound₀^β(β + S⁽ᵏ⁻¹⁾ᵀ[e, :])`
/// (the transpose read in place through the value permutation — no
/// materialized `S⁽ᵏ⁻¹⁾ᵀ`) and its row sum `d[e] = α·w[e] + Σ F[e, :]`
/// in the same pass.
#[allow(clippy::too_many_arguments)]
fn fused_f_d(
    s: &SquaresMatrix,
    spans: &RowSpans,
    sk_prev: &[f64],
    w: &[f64],
    alpha: f64,
    beta: f64,
    fv: &mut [f64],
    d: &mut [f64],
) {
    let rowptr = s.rowptr();
    let perm = s.transpose_perm_slice();
    let row_bounds = spans.row_bounds();
    let entry_bounds = spans.entry_bounds();
    par_uneven_chunks_mut(fv, entry_bounds)
        .zip(par_uneven_chunks_mut(d, row_bounds))
        .enumerate()
        .for_each(|(g, (fv_chunk, d_chunk))| {
            let rows = row_bounds[g]..row_bounds[g + 1];
            let base = entry_bounds[g];
            for (de, e) in d_chunk.iter_mut().zip(rows) {
                let mut acc = 0.0;
                for idx in rowptr[e]..rowptr[e + 1] {
                    let f = (beta + sk_prev[perm[idx]]).clamp(0.0, beta);
                    fv_chunk[idx - base] = f;
                    acc += f;
                }
                *de = alpha * w[e] + acc;
            }
        });
}

/// `S^(k)[e, :] = (y[e] + z[e] - d[e]) - F[e, :]` over the fixed
/// pattern, row-parallel through the precomputed span decomposition
/// (no per-call slice vector).
fn sk_rowwise_update(
    rowptr: &[usize],
    spans: &RowSpans,
    sk: &mut [f64],
    y: &[f64],
    z: &[f64],
    d: &[f64],
    fv: &[f64],
) {
    let row_bounds = spans.row_bounds();
    let entry_bounds = spans.entry_bounds();
    par_uneven_chunks_mut(sk, entry_bounds)
        .enumerate()
        .for_each(|(g, sk_chunk)| {
            let base = entry_bounds[g];
            for e in row_bounds[g]..row_bounds[g + 1] {
                let scale = y[e] + z[e] - d[e];
                for idx in rowptr[e]..rowptr[e + 1] {
                    sk_chunk[idx - base] = scale - fv[idx];
                }
            }
        });
}

/// Out-of-core steps 1+2 over one superblock: `d[r] = α·w[r] +
/// Σ bound₀^β(β + skt_prev[idx])`, the transpose read through the
/// companion stream in storage order — no permutation gather, no
/// stored `F`. Accumulation order matches [`fused_f_d`] exactly.
fn ooc_fused_d(
    rowptr: &[usize],
    sb: &Superblock,
    skt_prev: &[f64],
    w: &[f64],
    alpha: f64,
    beta: f64,
    d: &mut [f64],
) {
    let rb = &sb.rel_row_bounds;
    let row0 = sb.rows.start;
    par_uneven_chunks_mut(d, rb)
        .enumerate()
        .for_each(|(g, d_chunk)| {
            let rows = (row0 + rb[g])..(row0 + rb[g + 1]);
            for (de, e) in d_chunk.iter_mut().zip(rows) {
                let mut acc = 0.0;
                for idx in rowptr[e]..rowptr[e + 1] {
                    let f = (beta + skt_prev[idx]).clamp(0.0, beta);
                    acc += f;
                }
                *de = alpha * w[e] + acc;
            }
        });
}

/// Out-of-core steps 4+5 (S part) over one superblock, fused with
/// damping: both the new `sk` and its transpose companion `skt` are
/// produced in storage order —
/// `sk[idx] = γ·(scale[row] − f) + (1−γ)·sk_prev[idx]` and
/// `skt[idx] = γ·(scale[colidx[idx]] − fᵗ) + (1−γ)·skt_prev[idx]`
/// with `f`/`fᵗ` the bound of the respective *other* stream (the
/// involution `perm ∘ perm = id` makes both expressions exact
/// transposes of each other). Only `scale` (m-sized, resident) is
/// accessed randomly. Returns the count of non-finite new `sk`
/// values for the numeric guard.
#[allow(clippy::too_many_arguments)]
fn ooc_sk_update(
    rowptr: &[usize],
    colidx: &[VertexId],
    sb: &Superblock,
    sk_prev: &[f64],
    skt_prev: &[f64],
    scale: &[f64],
    beta: f64,
    gk: f64,
    sk: &mut [f64],
    skt: &mut [f64],
) -> u64 {
    let rb = &sb.rel_row_bounds;
    let eb = &sb.rel_entry_bounds;
    let row0 = sb.rows.start;
    let ent0 = sb.entries.start;
    par_uneven_chunks_mut(sk, eb)
        .zip(par_uneven_chunks_mut(skt, eb))
        .enumerate()
        .map(|(g, (sk_chunk, skt_chunk))| {
            let base = ent0 + eb[g];
            let mut bad = 0u64;
            for e in (row0 + rb[g])..(row0 + rb[g + 1]) {
                let sc = scale[e];
                for idx in rowptr[e]..rowptr[e + 1] {
                    let f = (beta + skt_prev[idx]).clamp(0.0, beta);
                    let v = gk * (sc - f) + (1.0 - gk) * sk_prev[idx];
                    sk_chunk[idx - base] = v;
                    bad += u64::from(!v.is_finite());
                    let ft = (beta + sk_prev[idx]).clamp(0.0, beta);
                    skt_chunk[idx - base] =
                        gk * (scale[colidx[idx] as usize] - ft) + (1.0 - gk) * skt_prev[idx];
                }
            }
            bad
        })
        .sum()
}

/// `cur ← gk·cur + (1−gk)·prev`, then `prev ← cur`.
fn damp(cur: &mut [f64], prev: &mut [f64], gk: f64) {
    cur.par_iter_mut()
        .with_min_len(CHUNK)
        .zip(prev.par_iter_mut().with_min_len(CHUNK))
        .for_each(|(c, p)| {
            *c = gk * *c + (1.0 - gk) * *p;
            *p = *c;
        });
}

/// Shared tail of both aligners: optional final exact rounding of the
/// best heuristic, then assemble the result.
pub(crate) fn finalize(
    p: &NetAlignProblem,
    config: &AlignConfig,
    best: Option<(f64, Vec<f64>, usize)>,
    history: Vec<IterationRecord>,
    mut trace: RunTrace,
    matcher_counters: &MatcherCounters,
) -> AlignmentResult {
    // Invariant, not a user-reachable panic: both engines' `finish`
    // methods substitute a fallback incumbent when no rounding ever
    // succeeded, so `best` is always `Some` by the time it gets here.
    let (best_obj, best_g, best_iter) = best.expect("finish() always supplies an incumbent");
    let t0 = Instant::now();
    let mut matching = netalign_matching::max_weight_matching_traced(
        &p.l,
        &best_g,
        config.matcher,
        matcher_counters,
    );
    if config.final_exact_round && config.matcher != MatcherKind::Exact {
        // The paper always converts the best heuristic with one exact
        // matching at the very end (§VII).
        let exact = round_heuristic(p, &best_g, config.alpha, config.beta, MatcherKind::Exact);
        if exact.value.total >= best_obj {
            matching = exact.matching;
        }
    }
    trace.add(Step::Match, t0.elapsed());
    trace.matcher = matcher_counters.snapshot();
    trace.stamp_peak_rss();
    let value = evaluate_matching(p, &matching, config.alpha, config.beta);
    AlignmentResult {
        matching,
        objective: value.total,
        weight: value.weight,
        overlap: value.overlap,
        best_iteration: best_iter,
        upper_bound: None,
        history,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
    use netalign_graph::{BipartiteGraph, Graph};

    fn tiny_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn recovers_identity_on_cycle() {
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 20,
            record_history: true,
            ..Default::default()
        };
        let r = belief_propagation(&p, &cfg);
        assert_eq!(r.matching.cardinality(), 4);
        assert_eq!(r.overlap, 4.0);
        for i in 0..4 {
            assert_eq!(r.matching.mate_of_left(i), Some(i));
        }
        assert_eq!(r.history.len(), 40); // 2 roundings per iteration
    }

    #[test]
    fn approximate_matching_matches_exact_on_tiny() {
        let p = tiny_problem();
        let exact = belief_propagation(
            &p,
            &AlignConfig {
                iterations: 15,
                ..Default::default()
            },
        );
        let approx = belief_propagation(
            &p,
            &AlignConfig {
                iterations: 15,
                matcher: MatcherKind::ParallelLocalDominant,
                ..Default::default()
            },
        );
        assert_eq!(exact.objective, approx.objective);
    }

    #[test]
    fn batching_does_not_change_the_result() {
        let p = tiny_problem();
        let base = AlignConfig {
            iterations: 12,
            ..Default::default()
        };
        let r1 = belief_propagation(&p, &base);
        let r10 = belief_propagation(&p, &AlignConfig { batch: 10, ..base });
        assert_eq!(r1.objective, r10.objective);
        assert_eq!(r1.matching, r10.matching);
    }

    #[test]
    fn power_law_instance_beats_naive_weight_matching() {
        let g = power_law_graph(60, 2.5, 12, 5);
        let a = add_random_edges(&g, 0.02, 6);
        let b = add_random_edges(&g, 0.02, 7);
        let l = identity_plus_noise_l(60, 60, 4.0 / 60.0, 1.0, 1.0, 8);
        let p = NetAlignProblem::new(a, b, l);
        let cfg = AlignConfig {
            iterations: 50,
            ..Default::default()
        };
        let r = belief_propagation(&p, &cfg);
        // Naive rounding of w alone:
        let naive = round_heuristic(&p, p.l.weights(), 1.0, 2.0, MatcherKind::Exact);
        assert!(
            r.objective >= naive.value.total,
            "BP ({}) should beat naive rounding ({})",
            r.objective,
            naive.value.total
        );
        assert!(r.overlap > 0.0);
    }

    #[test]
    fn history_is_recorded_per_rounding() {
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 6,
            batch: 4,
            record_history: true,
            ..Default::default()
        };
        let r = belief_propagation(&p, &cfg);
        assert_eq!(r.history.len(), 12);
        // iterations appear in non-decreasing order
        for w in r.history.windows(2) {
            assert!(w[0].iteration <= w[1].iteration);
        }
    }

    #[test]
    fn final_exact_round_never_hurts() {
        let p = tiny_problem();
        let base = AlignConfig {
            iterations: 10,
            matcher: MatcherKind::Greedy,
            ..Default::default()
        };
        let without = belief_propagation(&p, &base);
        let with = belief_propagation(
            &p,
            &AlignConfig {
                final_exact_round: true,
                ..base
            },
        );
        assert!(with.objective >= without.objective);
    }

    #[test]
    fn engine_loop_matches_wrapper() {
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 14,
            batch: 3,
            ..Default::default()
        };
        let via_wrapper = belief_propagation(&p, &cfg);
        let mut e = BpEngine::new(&p, &cfg);
        for _ in 0..cfg.iterations {
            e.step();
            if e.rounding_due() {
                e.round_pending();
            }
            e.end_iteration();
        }
        let manual = e.finish();
        assert_eq!(via_wrapper.objective, manual.objective);
        assert_eq!(via_wrapper.matching, manual.matching);
        assert_eq!(via_wrapper.best_iteration, manual.best_iteration);
    }

    /// The preallocated rounding engine — cold or warm, LD or Suitor —
    /// reproduces the legacy `ParallelLocalDominant` run bit-for-bit:
    /// same incumbent, same matching, same per-rounding history.
    #[test]
    fn engine_rounding_matches_legacy_parallel_ld() {
        use netalign_matching::RoundingMatcher;
        let g = power_law_graph(40, 2.5, 10, 25);
        let a = add_random_edges(&g, 0.02, 26);
        let b = add_random_edges(&g, 0.02, 27);
        let l = identity_plus_noise_l(40, 40, 4.0 / 40.0, 1.0, 1.0, 28);
        let p = NetAlignProblem::new(a, b, l);
        for batch in [1, 4] {
            let legacy_cfg = AlignConfig {
                iterations: 15,
                batch,
                matcher: MatcherKind::ParallelLocalDominant,
                record_history: true,
                ..Default::default()
            };
            let legacy = belief_propagation(&p, &legacy_cfg);
            for kind in [RoundingMatcher::Ld, RoundingMatcher::Suitor] {
                for warm in [false, true] {
                    let cfg = AlignConfig {
                        rounding: Some(kind),
                        warm_start: warm,
                        ..legacy_cfg
                    };
                    let r = belief_propagation(&p, &cfg);
                    assert_eq!(
                        r.objective.to_bits(),
                        legacy.objective.to_bits(),
                        "batch {batch}, {kind:?}, warm {warm}"
                    );
                    assert_eq!(r.matching, legacy.matching);
                    assert_eq!(r.best_iteration, legacy.best_iteration);
                    assert_eq!(r.history.len(), legacy.history.len());
                    for (h, lh) in r.history.iter().zip(&legacy.history) {
                        assert_eq!(h.iteration, lh.iteration);
                        assert_eq!(h.objective.to_bits(), lh.objective.to_bits());
                    }
                }
            }
        }
    }

    /// Warm-started engine rounding actually reuses state: once the
    /// `γᵏ` damping decays below one ulp (γ = 0.5, k > 53) the iterates
    /// freeze bit-exactly and every later rounding is a full warm hit.
    #[test]
    fn warm_engine_reports_reuse_over_a_run() {
        use netalign_matching::RoundingMatcher;
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 60,
            gamma: 0.5,
            matcher: MatcherKind::ParallelLocalDominant,
            rounding: Some(RoundingMatcher::Ld),
            warm_start: true,
            trace_matcher: true,
            ..Default::default()
        };
        let r = belief_propagation(&p, &cfg);
        assert!(
            r.trace.matcher.warm_hits > 0,
            "expected warm hits, got {:?}",
            r.trace.matcher
        );
    }
}
