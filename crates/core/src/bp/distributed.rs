//! Distributed-memory belief propagation, simulated (paper §IX).
//!
//! The paper's second future-work item: "the algorithms could also be
//! implemented in a distributed setting using primitives from the
//! Combinatorial BLAS library for the matrix computations and a
//! distributed half-approximation matching algorithm". This module
//! realizes that structure as a bulk-synchronous program over simulated
//! ranks:
//!
//! * the edges of `L` (and with them the rows of `S`, the message
//!   vectors `y`/`z`/`d`, and the value blocks of `S⁽ᵏ⁾`/`F`) are
//!   **block-partitioned by left vertex**, so `othermaxrow`, the `F`/`d`
//!   kernels, the `S⁽ᵏ⁾` update and the damping are rank-local;
//! * reading `S⁽ᵏ⁻¹⁾ᵀ` through the transpose permutation becomes a
//!   **static halo exchange**: each rank's needed remote value indices
//!   are computed once, and every iteration ships exactly those values
//!   (the CombBLAS-style sparse communication plan);
//! * `othermaxcol` is a two-superstep **partial-stats merge**: ranks
//!   compute `(max, second-max, argmax-edge)` partials for each right
//!   vertex they touch, the vertex's owner rank merges deterministically
//!   (ties keep the lowest edge id, matching the shared-memory kernel),
//!   and merged stats flow back to the contributors;
//! * rounding uses the **simulated distributed locally-dominant
//!   matcher** ([`netalign_matching::distributed`]) over the same rank
//!   count.
//!
//! Supersteps are executed by scoped threads with all message routing
//! between supersteps done by the driver — message-passing semantics
//! without long-lived rank daemons. Because every kernel performs the
//! same floating-point operations in the same order as the
//! shared-memory implementation, the distributed run produces
//! **bit-identical iterates and results** to [`super::belief_propagation`]
//! with the parallel matcher — asserted by the tests.

use crate::config::AlignConfig;
use crate::objective::evaluate_matching;
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::trace::RunTrace;

use netalign_matching::distributed::distributed_local_dominant;

/// Per-rank state: an aligned block of edges and S rows.
struct RankState {
    /// Global edge range `[e_lo, e_hi)`.
    e_lo: usize,
    e_hi: usize,
    /// Global S-value base (= rowptr[e_lo]).
    v_lo: usize,
    y: Vec<f64>,
    z: Vec<f64>,
    y_prev: Vec<f64>,
    z_prev: Vec<f64>,
    d: Vec<f64>,
    sk: Vec<f64>,
    sk_prev: Vec<f64>,
    skt: Vec<f64>,
    fv: Vec<f64>,
    omr: Vec<f64>,
    omc: Vec<f64>,
    /// Halo plan (from [`RankPart`]): per peer rank, the local `skt`
    /// positions arriving values scatter into, and the local `sk_prev`
    /// positions of values to send.
    scatter_plan: Vec<Vec<u32>>,
    send_plan: Vec<Vec<u32>>,
}

/// Column statistics for the othermaxcol merge. Shared with the real
/// multi-process layer ([`crate::dist`]), whose workers ship partials
/// to the coordinator over the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct ColStat {
    pub(crate) max1: f64,
    pub(crate) max2: f64,
    pub(crate) arg_eid: u32,
}

impl ColStat {
    pub(crate) const EMPTY: ColStat = ColStat {
        max1: f64::NEG_INFINITY,
        max2: f64::NEG_INFINITY,
        arg_eid: u32::MAX,
    };

    /// Fold one value in edge order (strict `>` keeps the earliest
    /// edge on ties — the shared-memory kernel's behaviour).
    pub(crate) fn push(&mut self, v: f64, eid: u32) {
        if v > self.max1 {
            self.max2 = self.max1;
            self.max1 = v;
            self.arg_eid = eid;
        } else if v > self.max2 {
            self.max2 = v;
        }
    }

    /// Merge another partial computed over *later* edges.
    pub(crate) fn merge(&mut self, other: &ColStat) {
        if other.max1 > self.max1 {
            self.max2 = self.max1.max(other.max2);
            self.max1 = other.max1;
            self.arg_eid = other.arg_eid;
        } else {
            self.max2 = self.max2.max(other.max1);
        }
    }
}

/// One rank's static share of a left-vertex-aligned partition, plus
/// the halo-exchange plans for the transpose gather. Computed once by
/// [`Partition::new`] and shared between the simulated driver below
/// and the real multi-process coordinator ([`crate::dist`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct RankPart {
    /// Left-vertex range `[a_lo, a_hi)` whose edge ranges this rank
    /// owns.
    pub(crate) a_lo: usize,
    pub(crate) a_hi: usize,
    /// Global edge range `[e_lo, e_hi)`.
    pub(crate) e_lo: usize,
    pub(crate) e_hi: usize,
    /// Global S-value range `[v_lo, v_hi)` (= rowptr[e_lo]..rowptr[e_hi]).
    pub(crate) v_lo: usize,
    pub(crate) v_hi: usize,
    /// Halo plan: for each peer rank, the *global* S-value indices of
    /// `sk_prev` values this rank must receive (in agreed order), and
    /// the local positions of `skt` they scatter into.
    pub(crate) recv_plan: Vec<Vec<u32>>,
    pub(crate) scatter_plan: Vec<Vec<u32>>,
    /// For each peer rank, the local positions of values to send.
    pub(crate) send_plan: Vec<Vec<u32>>,
}

/// A static left-vertex-aligned partition of the problem's edges (and
/// with them the rows of `S` and the message vectors) into blocks of
/// roughly balanced edge count, with precomputed halo plans.
#[derive(Clone, Debug)]
pub(crate) struct Partition {
    pub(crate) parts: Vec<RankPart>,
}

impl Partition {
    /// Split `problem` across `ranks` workers (capped at the number of
    /// left vertices, floored at one).
    pub(crate) fn new(problem: &NetAlignProblem, ranks: usize) -> Partition {
        let p = problem;
        let m = p.l.num_edges();
        let rowptr = p.s.rowptr();
        let perm = p.s.transpose_perm_slice();
        let nranks = ranks.min(p.l.num_left().max(1)).max(1);

        let mut boundaries = vec![0usize]; // left-vertex boundaries
        {
            let per = m.div_ceil(nranks);
            let mut acc = 0usize;
            for a in 0..p.l.num_left() {
                acc += p.l.left_degree(a as u32);
                if acc >= per * boundaries.len() && boundaries.len() < nranks {
                    boundaries.push(a + 1);
                }
            }
            while boundaries.len() < nranks {
                boundaries.push(p.l.num_left());
            }
            boundaries.push(p.l.num_left());
        }
        let edge_lo = |r: usize| {
            if boundaries[r] >= p.l.num_left() {
                m
            } else {
                p.l.left_range(boundaries[r] as u32).start
            }
        };
        let mut parts: Vec<RankPart> = (0..nranks)
            .map(|r| {
                let e_lo = edge_lo(r);
                let e_hi = if r + 1 == nranks { m } else { edge_lo(r + 1) };
                RankPart {
                    a_lo: boundaries[r],
                    a_hi: boundaries[r + 1],
                    e_lo,
                    e_hi,
                    v_lo: rowptr[e_lo],
                    v_hi: rowptr[e_hi],
                    recv_plan: vec![Vec::new(); nranks],
                    scatter_plan: vec![Vec::new(); nranks],
                    send_plan: vec![Vec::new(); nranks],
                }
            })
            .collect();

        // Static halo plan for the transpose gather.
        let owner_of_value = |idx: usize, parts: &[RankPart]| -> usize {
            parts.partition_point(|pt| pt.v_hi <= idx)
        };
        for r in 0..nranks {
            let (v_lo, v_hi) = (parts[r].v_lo, parts[r].v_hi);
            let mut recv: Vec<Vec<u32>> = vec![Vec::new(); nranks];
            let mut scatter: Vec<Vec<u32>> = vec![Vec::new(); nranks];
            for idx in v_lo..v_hi {
                let src = perm[idx];
                let owner = owner_of_value(src, &parts);
                recv[owner].push(src as u32);
                scatter[owner].push((idx - v_lo) as u32);
            }
            parts[r].recv_plan = recv;
            parts[r].scatter_plan = scatter;
        }
        // Mirror into send plans (local positions at the source rank).
        for r in 0..nranks {
            for s in 0..nranks {
                let plan: Vec<u32> = parts[s].recv_plan[r]
                    .iter()
                    .map(|&g| (g as usize - parts[r].v_lo) as u32)
                    .collect();
                parts[r].send_plan[s] = plan;
            }
        }
        Partition { parts }
    }

    pub(crate) fn num_ranks(&self) -> usize {
        self.parts.len()
    }
}

/// Merge per-rank `othermaxcol` partials into one global stat list,
/// exactly as the simulated superstep C does: group by the right
/// vertex's owner, merge in rank order (= edge order, so ties keep the
/// lowest edge id), then flatten in owner order. Shared with the real
/// coordinator so both paths produce bit-identical merged stats.
pub(crate) fn merge_col_partials(
    all_partials: &[Vec<(u32, ColStat)>],
    nb: usize,
    nranks: usize,
) -> Vec<(u32, ColStat)> {
    let bblock = nb.div_ceil(nranks).max(1);
    let owner_of_b = |b: u32| ((b as usize) / bblock).min(nranks - 1);
    let mut per_owner: Vec<Vec<(u32, ColStat)>> = vec![Vec::new(); nranks];
    for partials in all_partials {
        for &(b, stat) in partials {
            per_owner[owner_of_b(b)].push((b, stat));
        }
    }
    let mut merged: Vec<Vec<(u32, ColStat)>> = vec![Vec::new(); nranks];
    for (owner, items) in per_owner.into_iter().enumerate() {
        let mut map: Vec<(u32, ColStat)> = Vec::new();
        for (b, stat) in items {
            if let Some(i) = map.iter().position(|&(mb, _)| mb == b) {
                map[i].1.merge(&stat);
            } else {
                map.push((b, stat));
            }
        }
        merged[owner] = map;
    }
    merged.into_iter().flatten().collect()
}

/// Run belief propagation with the state distributed over `ranks`
/// simulated workers. Produces the same result as
/// [`super::belief_propagation`] with
/// [`MatcherKind::ParallelLocalDominant`] rounding.
pub fn distributed_belief_propagation(
    problem: &NetAlignProblem,
    config: &AlignConfig,
    ranks: usize,
) -> AlignmentResult {
    config.validate();
    assert!(ranks >= 1, "need at least one rank");
    let p = problem;
    let m = p.l.num_edges();
    let (alpha, beta, gamma) = (config.alpha, config.beta, config.gamma);
    let rowptr = p.s.rowptr();
    let w = p.l.weights();

    // --- Static partition: split left vertices into blocks with
    // roughly balanced edge counts (shared with the real coordinator).
    let partition = Partition::new(p, ranks);
    let nranks = partition.num_ranks();
    let nb = p.l.num_right();

    let mut states: Vec<RankState> = partition
        .parts
        .iter()
        .map(|pt| {
            let ne = pt.e_hi - pt.e_lo;
            let nv = pt.v_hi - pt.v_lo;
            RankState {
                e_lo: pt.e_lo,
                e_hi: pt.e_hi,
                v_lo: pt.v_lo,
                y: vec![0.0; ne],
                z: vec![0.0; ne],
                y_prev: vec![0.0; ne],
                z_prev: vec![0.0; ne],
                d: vec![0.0; ne],
                sk: vec![0.0; nv],
                sk_prev: vec![0.0; nv],
                skt: vec![0.0; nv],
                fv: vec![0.0; nv],
                omr: vec![0.0; ne],
                omc: vec![0.0; ne],
                scatter_plan: pt.scatter_plan.clone(),
                send_plan: pt.send_plan.clone(),
            }
        })
        .collect();

    let mut trace = RunTrace::new();
    let mut best: Option<(f64, Vec<f64>, usize)> = None;
    let mut history: Vec<IterationRecord> = Vec::new();
    let mut pending: Vec<(usize, Vec<f64>)> = Vec::new();

    for k in 1..=config.iterations {
        let gk = config.damping.fresh_weight(gamma, k);

        // Superstep A (local prep + halo payload production).
        let payloads: Vec<Vec<Vec<f64>>> = states
            .iter()
            .map(|st| {
                (0..nranks)
                    .map(|peer| {
                        st.send_plan[peer]
                            .iter()
                            .map(|&pos| st.sk_prev[pos as usize])
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Route: skt[scatter] = payload values.
        for r in 0..nranks {
            for src in 0..nranks {
                let vals = &payloads[src][r];
                let positions = states[r].scatter_plan[src].clone();
                debug_assert_eq!(vals.len(), positions.len());
                let st = &mut states[r];
                for (pos, &v) in positions.iter().zip(vals.iter()) {
                    st.skt[*pos as usize] = v;
                }
            }
        }

        // Superstep B: local F, d, othermaxrow, col partials.
        let mut all_partials: Vec<Vec<(u32, ColStat)>> = Vec::with_capacity(nranks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .map(|st| {
                    scope.spawn(move || {
                        // F and d.
                        for i in 0..st.fv.len() {
                            st.fv[i] = (beta + st.skt[i]).clamp(0.0, beta);
                        }
                        for e in st.e_lo..st.e_hi {
                            let le = e - st.e_lo;
                            let mut acc = 0.0;
                            for idx in rowptr[e]..rowptr[e + 1] {
                                acc += st.fv[idx - st.v_lo];
                            }
                            st.d[le] = alpha * w[e] + acc;
                        }
                        // othermaxrow on y_prev: rows are local.
                        for a in boundaries_range(p, st.e_lo, st.e_hi) {
                            let r = p.l.left_range(a);
                            let mut stat = ColStat::EMPTY;
                            for e in r.clone() {
                                stat.push(st.y_prev[e - st.e_lo], e as u32);
                            }
                            for e in r {
                                let v = if e as u32 == stat.arg_eid {
                                    stat.max2
                                } else {
                                    stat.max1
                                };
                                st.omr[e - st.e_lo] = v.max(0.0);
                            }
                        }
                        // col partials over z_prev.
                        let mut partials: Vec<(u32, ColStat)> = Vec::new();
                        let mut last: Option<usize> = None;
                        for e in st.e_lo..st.e_hi {
                            let b = p.l.endpoints(e).1;
                            let v = st.z_prev[e - st.e_lo];
                            match last {
                                Some(i) if partials[i].0 == b => partials[i].1.push(v, e as u32),
                                _ => {
                                    // b values repeat non-contiguously within a
                                    // rank; search existing entry.
                                    if let Some(i) = partials.iter().position(|&(pb, _)| pb == b) {
                                        partials[i].1.push(v, e as u32);
                                        last = Some(i);
                                        continue;
                                    }
                                    let mut s0 = ColStat::EMPTY;
                                    s0.push(v, e as u32);
                                    partials.push((b, s0));
                                    last = Some(partials.len() - 1);
                                }
                            }
                        }
                        partials
                    })
                })
                .collect();
            for h in handles {
                all_partials.push(h.join().expect("rank panicked"));
            }
        });

        // Superstep C: owners merge col stats (rank order = edge
        // order), then broadcast — each rank picks what it needs.
        let global_stats = merge_col_partials(&all_partials, nb, nranks);

        // Superstep D: finish othermax, S update, damping — local.
        std::thread::scope(|scope| {
            for st in states.iter_mut() {
                let global_stats = &global_stats;
                scope.spawn(move || {
                    for e in st.e_lo..st.e_hi {
                        let le = e - st.e_lo;
                        let b = p.l.endpoints(e).1;
                        let stat = global_stats
                            .iter()
                            .find(|&&(sb, _)| sb == b)
                            .map(|&(_, s)| s)
                            .unwrap_or(ColStat::EMPTY);
                        let v = if e as u32 == stat.arg_eid {
                            stat.max2
                        } else {
                            stat.max1
                        };
                        st.omc[le] = v.max(0.0);
                    }
                    for le in 0..st.y.len() {
                        st.y[le] = st.d[le] - st.omc[le];
                        st.z[le] = st.d[le] - st.omr[le];
                    }
                    // S^(k) = diag(y + z - d) S - F (local rows).
                    for e in st.e_lo..st.e_hi {
                        let le = e - st.e_lo;
                        let scale = st.y[le] + st.z[le] - st.d[le];
                        for idx in rowptr[e]..rowptr[e + 1] {
                            st.sk[idx - st.v_lo] = scale - st.fv[idx - st.v_lo];
                        }
                    }
                    // Damping.
                    for (c, pr) in st.y.iter_mut().zip(st.y_prev.iter_mut()) {
                        *c = gk * *c + (1.0 - gk) * *pr;
                        *pr = *c;
                    }
                    for (c, pr) in st.z.iter_mut().zip(st.z_prev.iter_mut()) {
                        *c = gk * *c + (1.0 - gk) * *pr;
                        *pr = *c;
                    }
                    for (c, pr) in st.sk.iter_mut().zip(st.sk_prev.iter_mut()) {
                        *c = gk * *c + (1.0 - gk) * *pr;
                        *pr = *c;
                    }
                });
            }
        });

        // Superstep E: rounding (allgather of y/z blocks + the
        // distributed matcher over the same ranks).
        let gather = |sel: fn(&RankState) -> &Vec<f64>| -> Vec<f64> {
            let mut g = Vec::with_capacity(m);
            for st in &states {
                g.extend_from_slice(sel(st));
            }
            g
        };
        pending.push((k, gather(|st| &st.y)));
        pending.push((k, gather(|st| &st.z)));
        if pending.len() >= config.batch.max(1) * 2 || k == config.iterations {
            trace.algo.rounding_invocations += 1;
            trace.algo.rounding_batch_sizes.push(pending.len() as u64);
            for (iter_k, g) in pending.drain(..) {
                let matching = distributed_local_dominant(&p.l, &g, nranks);
                let value = evaluate_matching(p, &matching, alpha, beta);
                if config.record_history {
                    history.push(IterationRecord {
                        iteration: iter_k,
                        objective: value.total,
                        weight: value.weight,
                        overlap: value.overlap,
                        upper_bound: None,
                    });
                }
                if best.as_ref().is_none_or(|(b, _, _)| value.total > *b) {
                    best = Some((value.total, g, iter_k));
                    trace.algo.best_improvements += 1;
                }
            }
        }
    }

    // Invariant: iterations >= 1 is enforced by AlignConfig::validate
    // and every final iteration rounds, so `best` is always populated.
    let (_, best_g, best_iter) = best.expect("at least one rounding happened");
    let matching = distributed_local_dominant(&p.l, &best_g, nranks);
    let value = evaluate_matching(p, &matching, alpha, beta);
    AlignmentResult {
        matching,
        objective: value.total,
        weight: value.weight,
        overlap: value.overlap,
        best_iteration: best_iter,
        upper_bound: None,
        history,
        trace,
    }
}

/// Left vertices whose edge ranges lie inside `[e_lo, e_hi)`.
fn boundaries_range(
    p: &NetAlignProblem,
    e_lo: usize,
    e_hi: usize,
) -> impl Iterator<Item = u32> + '_ {
    (0..p.l.num_left() as u32).filter(move |&a| {
        let r = p.l.left_range(a);
        r.start >= e_lo && r.end <= e_hi && !r.is_empty()
    })
}
