//! The `othermax` kernels of the BP method (paper §III.B).
//!
//! For a weight vector `g` over the edges of `L`:
//!
//! * `othermaxrow(g)[i,i'] = bound₀[max over (i,k') ∈ E_L, k' ≠ i' of g]`
//!   — per *left* vertex, each edge sees the maximum of its siblings;
//!   the maximum edge itself sees the second maximum. Negative results
//!   clamp to zero.
//! * `othermaxcol` is the same per *right* vertex.
//!
//! Both are embarrassingly parallel over vertices; the left side's edge
//! ranges are contiguous in the global order, the right side goes
//! through the column CSR's edge-id list.

use netalign_graph::{BipartiteGraph, VertexId};
use rayon::prelude::*;

/// Find `(max, second_max, argmax_position)` of an iterator of values.
/// `pub(crate)` so the delta replay recomputes othermax entries with
/// bit-identical comparison order.
#[inline]
pub(crate) fn max2(vals: impl Iterator<Item = f64>) -> (f64, f64, usize) {
    let mut max1 = f64::NEG_INFINITY;
    let mut max2 = f64::NEG_INFINITY;
    let mut arg = usize::MAX;
    for (i, v) in vals.enumerate() {
        if v > max1 {
            max2 = max1;
            max1 = v;
            arg = i;
        } else if v > max2 {
            max2 = v;
        }
    }
    (max1, max2, arg)
}

/// `out = othermaxrow(g)`, parallel over left vertices. `stats` is
/// caller-owned scratch of length `l.num_left()` (its contents are
/// overwritten) — passing it in keeps the sweep allocation-free.
pub fn othermaxrow_into(
    l: &BipartiteGraph,
    g: &[f64],
    out: &mut [f64],
    stats: &mut [(f64, f64, usize)],
    chunk: usize,
) {
    assert_eq!(g.len(), l.num_edges());
    assert_eq!(out.len(), l.num_edges());
    assert_eq!(stats.len(), l.num_left());
    // Two passes: per-vertex (max1, max2, argpos) stats, then a
    // per-edge fill — both embarrassingly parallel, no disjoint-slice
    // choreography needed.
    stats
        .par_iter_mut()
        .enumerate()
        .with_min_len(chunk)
        .for_each(|(a, s)| {
            let r = l.left_range(a as VertexId);
            *s = max2(g[r].iter().copied());
        });
    out.par_iter_mut()
        .enumerate()
        .with_min_len(chunk)
        .for_each(|(eid, o)| {
            let a = l.endpoints(eid).0;
            let (m1, m2, arg) = stats[a as usize];
            let start = l.left_range(a).start;
            let v = if eid - start == arg { m2 } else { m1 };
            *o = v.max(0.0);
        });
}

/// Precompute each edge's position within its right vertex's column
/// list; lets [`othermaxcol_into`] avoid a per-edge scan. Build once
/// per problem (the structure of `L` never changes).
pub fn column_positions(l: &BipartiteGraph) -> Vec<u32> {
    let mut pos = vec![0u32; l.num_edges()];
    for b in 0..l.num_right() as VertexId {
        for (p, (_, e)) in l.right_edges(b).enumerate() {
            pos[e] = p as u32;
        }
    }
    pos
}

/// `out = othermaxcol(g)`, parallel over right vertices. `col_pos` is
/// the precomputed [`column_positions`] array; `stats` is caller-owned
/// scratch of length `l.num_right()` (overwritten).
pub fn othermaxcol_into(
    l: &BipartiteGraph,
    g: &[f64],
    col_pos: &[u32],
    out: &mut [f64],
    stats: &mut [(f64, f64, usize)],
    chunk: usize,
) {
    assert_eq!(g.len(), l.num_edges());
    assert_eq!(out.len(), l.num_edges());
    assert_eq!(col_pos.len(), l.num_edges());
    assert_eq!(stats.len(), l.num_right());
    stats
        .par_iter_mut()
        .enumerate()
        .with_min_len(chunk)
        .for_each(|(b, s)| {
            *s = max2(l.right_edges(b as VertexId).map(|(_, e)| g[e]));
        });
    out.par_iter_mut()
        .enumerate()
        .with_min_len(chunk)
        .for_each(|(eid, o)| {
            let b = l.endpoints(eid).1;
            let (m1, m2, arg) = stats[b as usize];
            let v = if col_pos[eid] as usize == arg { m2 } else { m1 };
            *o = v.max(0.0);
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l() -> BipartiteGraph {
        // a0: b0, b1 ; a1: b0, b1 ; a2: b1
        BipartiteGraph::from_entries(
            3,
            2,
            vec![
                (0, 0, 0.0),
                (0, 1, 0.0),
                (1, 0, 0.0),
                (1, 1, 0.0),
                (2, 1, 0.0),
            ],
        )
    }

    fn row_stats(l: &BipartiteGraph) -> Vec<(f64, f64, usize)> {
        vec![(0.0, 0.0, 0); l.num_left()]
    }

    fn col_stats(l: &BipartiteGraph) -> Vec<(f64, f64, usize)> {
        vec![(0.0, 0.0, 0); l.num_right()]
    }

    #[test]
    fn row_othermax_basic() {
        let l = l();
        // edges in global order: (0,0)=e0,(0,1)=e1,(1,0)=e2,(1,1)=e3,(2,1)=e4
        let g = vec![3.0, 1.0, 2.0, 5.0, 4.0];
        let mut out = vec![0.0; 5];
        othermaxrow_into(&l, &g, &mut out, &mut row_stats(&l), 1);
        // row a0: values [3,1]: e0 is max -> second=1; e1 -> 3
        // row a1: [2,5]: e2 -> 5; e3 -> 2
        // row a2: [4]: single edge -> second = -inf -> clamp 0
        assert_eq!(out, vec![1.0, 3.0, 5.0, 2.0, 0.0]);
    }

    #[test]
    fn col_othermax_basic() {
        let l = l();
        let g = vec![3.0, 1.0, 2.0, 5.0, 4.0];
        let pos = column_positions(&l);
        let mut out = vec![0.0; 5];
        othermaxcol_into(&l, &g, &pos, &mut out, &mut col_stats(&l), 1);
        // col b0: edges e0=3, e2=2: e0 -> 2; e2 -> 3
        // col b1: edges e1=1, e3=5, e4=4: e1 -> 5; e3 -> 4; e4 -> 5
        assert_eq!(out, vec![2.0, 5.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn negative_values_clamp_to_zero() {
        let l = l();
        let g = vec![-1.0, -2.0, -3.0, -4.0, -5.0];
        let mut out = vec![9.0; 5];
        othermaxrow_into(&l, &g, &mut out, &mut row_stats(&l), 1);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ties_give_tied_value_to_argmax() {
        // Two equal maxima in a row: the argmax edge still sees the
        // other equal value as its "other max".
        let l = BipartiteGraph::from_entries(1, 2, vec![(0, 0, 0.0), (0, 1, 0.0)]);
        let g = vec![7.0, 7.0];
        let mut out = vec![0.0; 2];
        othermaxrow_into(&l, &g, &mut out, &mut row_stats(&l), 1);
        assert_eq!(out, vec![7.0, 7.0]);
    }

    #[test]
    fn chunked_matches_unchunked() {
        let l = l();
        let g = vec![0.5, 2.5, -1.0, 3.5, 0.25];
        let mut o1 = vec![0.0; 5];
        let mut o2 = vec![0.0; 5];
        othermaxrow_into(&l, &g, &mut o1, &mut row_stats(&l), 1);
        othermaxrow_into(&l, &g, &mut o2, &mut row_stats(&l), 1000);
        assert_eq!(o1, o2);
        let pos = column_positions(&l);
        othermaxcol_into(&l, &g, &pos, &mut o1, &mut col_stats(&l), 1);
        othermaxcol_into(&l, &g, &pos, &mut o2, &mut col_stats(&l), 1000);
        assert_eq!(o1, o2);
    }
}
