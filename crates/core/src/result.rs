//! Alignment run results.

use crate::trace::{Json, RunTrace};
use netalign_matching::Matching;

/// Per-iteration record (kept when `record_history` is set).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (1-based, matching the paper's pseudo-code).
    pub iteration: usize,
    /// Objective of the rounded solution at this iteration (best of the
    /// iterates rounded here).
    pub objective: f64,
    /// Matching weight `wᵀx` of that solution.
    pub weight: f64,
    /// Overlap `xᵀSx/2` of that solution.
    pub overlap: f64,
    /// MR only: the Lagrangian upper bound `w̄ᵀx`.
    pub upper_bound: Option<f64>,
}

/// The outcome of a BP or MR run.
#[derive(Clone, Debug)]
pub struct AlignmentResult {
    /// The best rounded matching found.
    pub matching: Matching,
    /// Its objective `α·weight + β·overlap`.
    pub objective: f64,
    /// Its matching weight `wᵀx`.
    pub weight: f64,
    /// Its overlap count `xᵀSx/2`.
    pub overlap: f64,
    /// Iteration at which the best solution appeared.
    pub best_iteration: usize,
    /// MR only: best (smallest) upper bound seen; `objective /
    /// upper_bound` is an a-posteriori approximation guarantee.
    pub upper_bound: Option<f64>,
    /// Per-iteration history (empty unless requested).
    pub history: Vec<IterationRecord>,
    /// Per-step timing spans, matcher counters, and aligner counters.
    pub trace: RunTrace,
}

impl AlignmentResult {
    /// MR's a-posteriori approximation ratio `objective / upper_bound`,
    /// when an upper bound is available and positive.
    pub fn approximation_ratio(&self) -> Option<f64> {
        self.upper_bound
            .filter(|&u| u > 0.0)
            .map(|u| self.objective / u)
    }

    /// Machine-readable run report: solution quality plus the full
    /// observability trace (step spans, matcher counters, aligner
    /// counters). Render with [`Json::render`] /
    /// [`Json::render_line`].
    pub fn report_json(&self) -> Json {
        Json::obj(vec![
            ("objective", Json::F64(self.objective)),
            ("weight", Json::F64(self.weight)),
            ("overlap", Json::F64(self.overlap)),
            ("best_iteration", Json::U64(self.best_iteration as u64)),
            (
                "upper_bound",
                self.upper_bound.map_or(Json::Null, Json::F64),
            ),
            (
                "approximation_ratio",
                self.approximation_ratio().map_or(Json::Null, Json::F64),
            ),
            (
                "matching_cardinality",
                Json::U64(self.matching.cardinality() as u64),
            ),
            ("trace", self.trace.to_json()),
        ])
    }

    /// Human-readable run report: quality line plus the trace's table.
    pub fn report_table(&self) -> String {
        let mut out = format!(
            "objective {:.3} (weight {:.3}, overlap {:.0}), best at iteration {}\n",
            self.objective, self.weight, self.overlap, self.best_iteration
        );
        if let Some(ratio) = self.approximation_ratio() {
            out.push_str(&format!("approximation ratio {ratio:.4}\n"));
        }
        out.push_str(&self.trace.report_table());
        out
    }

    /// Write the per-iteration history as CSV
    /// (`iteration,objective,weight,overlap,upper_bound`), for external
    /// plotting of the convergence traces behind Figures 2–3.
    pub fn write_history_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "iteration,objective,weight,overlap,upper_bound")?;
        for rec in &self.history {
            match rec.upper_bound {
                Some(ub) => writeln!(
                    w,
                    "{},{},{},{},{}",
                    rec.iteration, rec.objective, rec.weight, rec.overlap, ub
                )?,
                None => writeln!(
                    w,
                    "{},{},{},{},",
                    rec.iteration, rec.objective, rec.weight, rec.overlap
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_csv_roundtrips_fields() {
        let r = AlignmentResult {
            matching: Matching::empty(1, 1),
            objective: 8.0,
            weight: 2.0,
            overlap: 3.0,
            best_iteration: 2,
            upper_bound: None,
            history: vec![
                IterationRecord {
                    iteration: 1,
                    objective: 5.0,
                    weight: 1.0,
                    overlap: 2.0,
                    upper_bound: Some(9.5),
                },
                IterationRecord {
                    iteration: 2,
                    objective: 8.0,
                    weight: 2.0,
                    overlap: 3.0,
                    upper_bound: None,
                },
            ],
            trace: RunTrace::new(),
        };
        let mut buf = Vec::new();
        r.write_history_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "iteration,objective,weight,overlap,upper_bound");
        assert_eq!(lines[1], "1,5,1,2,9.5");
        assert_eq!(lines[2], "2,8,2,3,");
    }

    #[test]
    fn approximation_ratio() {
        let r = AlignmentResult {
            matching: Matching::empty(1, 1),
            objective: 8.0,
            weight: 2.0,
            overlap: 3.0,
            best_iteration: 5,
            upper_bound: Some(10.0),
            history: Vec::new(),
            trace: RunTrace::new(),
        };
        assert_eq!(r.approximation_ratio(), Some(0.8));
        let r2 = AlignmentResult {
            upper_bound: None,
            ..r
        };
        assert_eq!(r2.approximation_ratio(), None);
    }

    #[test]
    fn report_json_has_quality_and_trace() {
        let r = AlignmentResult {
            matching: Matching::empty(2, 2),
            objective: 4.0,
            weight: 2.0,
            overlap: 1.0,
            best_iteration: 3,
            upper_bound: Some(5.0),
            history: Vec::new(),
            trace: RunTrace::new(),
        };
        let text = r.report_json().render();
        assert!(text.contains("\"objective\":4.0"));
        assert!(text.contains("\"upper_bound\":5.0"));
        assert!(text.contains("\"approximation_ratio\":0.8"));
        assert!(text.contains("\"steps\""));
        assert!(text.contains("\"matcher\""));
        // No upper bound renders as null, not a missing key.
        let r2 = AlignmentResult {
            upper_bound: None,
            ..r
        };
        assert!(r2.report_json().render().contains("\"upper_bound\":null"));
    }
}
