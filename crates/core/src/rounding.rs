//! `round_heuristic` (paper Table I): convert a real-valued heuristic
//! vector over `E_L` into a matching via maximum-weight bipartite
//! matching, then evaluate the alignment objective.
//!
//! The rounding step is where the exact vs approximate matching
//! substitution — the paper's central experiment — happens: every
//! rounding call takes a [`MatcherKind`].

use crate::objective::{evaluate_matching, ObjectiveValue};
use crate::problem::NetAlignProblem;
use netalign_matching::{max_weight_matching_traced, MatcherCounters, MatcherKind, Matching};
use rayon::prelude::*;

/// A rounded heuristic: the matching plus its evaluated objective.
#[derive(Clone, Debug)]
pub struct RoundedSolution {
    /// The matching produced from the heuristic weights.
    pub matching: Matching,
    /// Objective components under the problem's `w`, `S`.
    pub value: ObjectiveValue,
}

/// Round one heuristic vector `g` to a matching with the chosen
/// matcher and evaluate `α wᵀx + (β/2) xᵀSx`.
///
/// ```
/// use netalign_core::{NetAlignProblem, rounding::round_heuristic};
/// use netalign_graph::{Graph, BipartiteGraph};
/// use netalign_matching::MatcherKind;
///
/// let a = Graph::from_edges(2, vec![(0, 1)]);
/// let b = Graph::from_edges(2, vec![(0, 1)]);
/// let l = BipartiteGraph::from_entries(2, 2, vec![
///     (0, 0, 1.0), (1, 1, 1.0),
/// ]);
/// let p = NetAlignProblem::new(a, b, l);
/// let g = vec![1.0, 1.0]; // heuristic weights over E_L
/// let r = round_heuristic(&p, &g, 1.0, 2.0, MatcherKind::Exact);
/// assert_eq!(r.value.overlap, 1.0); // the matched pair overlaps (0,1)
/// assert_eq!(r.value.total, 2.0 + 2.0);
/// ```
pub fn round_heuristic(
    p: &NetAlignProblem,
    g: &[f64],
    alpha: f64,
    beta: f64,
    matcher: MatcherKind,
) -> RoundedSolution {
    round_heuristic_traced(p, g, alpha, beta, matcher, MatcherCounters::disabled())
}

/// [`round_heuristic`] with matcher event counting (only the parallel
/// locally-dominant matchers record anything).
pub fn round_heuristic_traced(
    p: &NetAlignProblem,
    g: &[f64],
    alpha: f64,
    beta: f64,
    matcher: MatcherKind,
    counters: &MatcherCounters,
) -> RoundedSolution {
    assert_eq!(
        g.len(),
        p.l.num_edges(),
        "heuristic length must equal |E_L|"
    );
    let matching = max_weight_matching_traced(&p.l, g, matcher, counters);
    let value = evaluate_matching(p, &matching, alpha, beta);
    RoundedSolution { matching, value }
}

/// Round a batch of heuristic vectors concurrently (the paper's
/// `BP(batch=r)`: matchings run as independent tasks; with a parallel
/// matcher, rayon's work-stealing provides the nested parallelism the
/// paper gets from nested OpenMP).
pub fn round_batch<B>(
    p: &NetAlignProblem,
    batch: &[B],
    alpha: f64,
    beta: f64,
    matcher: MatcherKind,
) -> Vec<RoundedSolution>
where
    B: AsRef<[f64]> + Sync,
{
    round_batch_traced(p, batch, alpha, beta, matcher, MatcherCounters::disabled())
}

/// [`round_batch`] with matcher event counting. The counters are
/// shared across the batch's concurrent matchings; the accumulated
/// totals stay deterministic because every batched matching's own
/// counts are (see the matcher's round structure).
///
/// Generic over anything slice-like so callers can pass pooled/reused
/// buffers (e.g. BP's pending-rounding pool) without copying the batch
/// into a `Vec<Vec<f64>>` first.
pub fn round_batch_traced<B>(
    p: &NetAlignProblem,
    batch: &[B],
    alpha: f64,
    beta: f64,
    matcher: MatcherKind,
    counters: &MatcherCounters,
) -> Vec<RoundedSolution>
where
    B: AsRef<[f64]> + Sync,
{
    batch
        .par_iter()
        .map(|g| round_heuristic_traced(p, g.as_ref(), alpha, beta, matcher, counters))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::{BipartiteGraph, Graph};

    fn problem() -> NetAlignProblem {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 1, 5.0)],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn rounding_follows_heuristic_not_w() {
        let p = problem();
        // Heuristic favouring the identity despite (0,1) having w=5.
        let mut g = vec![0.0; 4];
        for i in 0..3 {
            g[p.l.edge_id(i, i).unwrap()] = 10.0;
        }
        let r = round_heuristic(&p, &g, 1.0, 2.0, MatcherKind::Exact);
        assert_eq!(r.matching.cardinality(), 3);
        assert_eq!(r.value.overlap, 3.0);
    }

    #[test]
    fn exact_and_approx_agree_on_clear_cut_heuristics() {
        let p = problem();
        let mut g = vec![0.0; 4];
        for i in 0..3 {
            g[p.l.edge_id(i, i).unwrap()] = 1.0 + i as f64;
        }
        let exact = round_heuristic(&p, &g, 1.0, 2.0, MatcherKind::Exact);
        let approx = round_heuristic(&p, &g, 1.0, 2.0, MatcherKind::ParallelLocalDominant);
        assert_eq!(exact.matching, approx.matching);
    }

    #[test]
    fn batch_matches_individual_rounding() {
        let p = problem();
        let batch: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..4).map(|e| ((e + k) % 4) as f64).collect())
            .collect();
        let joint = round_batch(&p, &batch, 1.0, 2.0, MatcherKind::Exact);
        for (g, r) in batch.iter().zip(&joint) {
            let solo = round_heuristic(&p, g, 1.0, 2.0, MatcherKind::Exact);
            assert_eq!(solo.matching, r.matching);
            assert_eq!(solo.value, r.value);
        }
    }

    #[test]
    #[should_panic(expected = "heuristic length")]
    fn wrong_length_panics() {
        let p = problem();
        let _ = round_heuristic(&p, &[1.0], 1.0, 2.0, MatcherKind::Exact);
    }
}
