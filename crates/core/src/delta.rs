//! Incremental re-alignment: delta-proportional warm starts for
//! evolving graphs (ROADMAP item 2).
//!
//! A *recorded* BP run captures its full per-iteration trajectory —
//! the damped `y`/`z`/`S⁽ᵏ⁾` iterates plus every rounded stage's
//! matching and objective. When the instance then changes by a small
//! structural/weight delta (edges of `A`, `B` or `L` inserted,
//! expired or reweighted), [`replay_bp`] re-aligns the patched
//! instance **bit-identically to a cold re-solve** while doing work
//! proportional to how far the perturbation actually propagates:
//!
//! 1. the squares matrix is patched, not rebuilt
//!    ([`crate::squares::SquaresMatrix::patch`]);
//! 2. the old trajectory is remapped onto the new edge numbering
//!    (survivor rows carry their recorded iterates verbatim);
//! 3. each iteration is *replayed* over a dirty candidate set only:
//!    a row is recomputed when one of its inputs changed bitwise in
//!    the previous iteration, using scalar kernels that replicate the
//!    parallel cold kernels' floating-point order exactly;
//! 4. a rounded stage whose heuristic vector came out bitwise
//!    unchanged reuses the recorded matching (matchers are pure
//!    functions of `(structure(L), g)`); otherwise the stage is
//!    re-rounded through the warm matcher engines.
//!
//! The bet is locality: `F = bound₀^β(β + S⁽ᵏ⁻¹⁾ᵀ)` saturates and the
//! `othermax` operators ignore non-maximal siblings, so most
//! perturbations are absorbed within a few hops. When the dirty
//! frontier grows past a fraction of `E_L` anyway (or the patched run
//! trips the numeric guard), the replay **escapes**: it reconstructs a
//! [`crate::checkpoint::BpState`] at the last fully replayed iteration
//! boundary and hands the rest of the run to a real [`BpEngine`] —
//! still bit-identical, just no longer sparse.
//!
//! Limits: replay requires engine-mode rounding (`config.rounding`)
//! and a base run free of numeric recoveries (a recovery halves the
//! engine-local damping base mid-run, which the replay does not
//! model). Recorded trajectories cost `T·(2·|E_L| + nnz(S))` floats —
//! record deliberately.

use crate::bp::othermax::{column_positions, max2};
use crate::bp::BpEngine;
use crate::checkpoint::{BpState, PayloadReader, PayloadWriter};
use crate::config::AlignConfig;
use crate::objective::{evaluate_matching_with_scratch, ObjectiveValue};
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::squares::SquaresPatchStats;
use crate::trace::{AlgoCounters, MatcherCounters, RunTrace};
use netalign_graph::delta::REMOVED;
use netalign_graph::{EdgeId, VertexId};
use netalign_matching::{GreedyScratch, MatcherEngine, Matching};

pub use netalign_graph::delta::{CandidateDelta, DeltaError, GraphDelta};

/// Dirty-frontier fraction of `E_L` beyond which sparse replay stops
/// paying for itself and the run escapes to a full engine resume.
const ESCAPE_FRACTION: f64 = 0.5;

/// A combined edit of one alignment instance: deltas for `A`, `B` and
/// the candidate graph `L`. Empty parts are skipped entirely.
#[derive(Clone, Debug, Default)]
pub struct ProblemDelta {
    /// Edge insertions/expirations in `A`.
    pub a: GraphDelta,
    /// Edge insertions/expirations in `B`.
    pub b: GraphDelta,
    /// Candidate insertions/expirations/reweights in `L`.
    pub l: CandidateDelta,
}

impl ProblemDelta {
    /// True when no part edits anything.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty() && self.b.is_empty() && self.l.is_empty()
    }
}

/// One rounded stage of a recorded run: the matching produced by the
/// parity-routed matcher engine and its evaluated objective.
#[derive(Clone, Debug)]
pub struct RecordedStage {
    /// Iteration whose iterate was rounded (1-based).
    pub iteration: usize,
    /// 0 = the `y` stream, 1 = the `z` stream.
    pub parity: usize,
    /// Matched `(a, b)` vertex pairs — vertex ids survive edge
    /// renumbering, so stages never need remapping.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// Objective of this stage's matching.
    pub value: ObjectiveValue,
}

impl RecordedStage {
    fn placeholder(parity: usize) -> Self {
        RecordedStage {
            iteration: 0,
            parity,
            pairs: Vec::new(),
            value: ObjectiveValue {
                weight: 0.0,
                overlap: 0.0,
                total: f64::NEG_INFINITY,
            },
        }
    }
}

/// The full per-iteration record of one BP run. Iteration `k`
/// (1-based) lives at `[(k-1)*m .. k*m]` of `y`/`z` (and the `nnz`
/// analog for `sk`); iteration 0 — the all-zeros start — is implicit.
/// Stage `(k, parity)` lives at slot `2*(k-1) + parity`.
#[derive(Clone, Debug)]
pub struct BpTrajectory {
    m: usize,
    nnz: usize,
    iterations: usize,
    y: Vec<f64>,
    z: Vec<f64>,
    sk: Vec<f64>,
    stages: Vec<RecordedStage>,
    numeric_recoveries: usize,
}

impl BpTrajectory {
    /// Iterations recorded.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Candidate-edge count the trajectory is sized for.
    pub fn num_candidates(&self) -> usize {
        self.m
    }

    /// Numeric-guard rollbacks observed while recording. Replay
    /// refuses trajectories with any.
    pub fn numeric_recoveries(&self) -> usize {
        self.numeric_recoveries
    }

    /// Approximate heap footprint of the recorded floats.
    pub fn memory_bytes(&self) -> usize {
        (self.y.len() + self.z.len() + self.sk.len()) * 8
    }

    /// Serialize the full trajectory into `w` (bit-exact floats). The
    /// shape (`m`, `nnz`) is *not* written — deserialization takes it
    /// from the surrounding problem, so a spill file whose problem and
    /// trajectory disagree is rejected instead of half-loaded.
    pub fn serialize_into(&self, w: &mut PayloadWriter) {
        w.put_usize(self.iterations);
        w.put_usize(self.numeric_recoveries);
        w.put_f64_slice(&self.y);
        w.put_f64_slice(&self.z);
        w.put_f64_slice(&self.sk);
        w.put_usize(self.stages.len());
        for st in &self.stages {
            w.put_usize(st.iteration);
            w.put_usize(st.parity);
            w.put_f64(st.value.weight);
            w.put_f64(st.value.overlap);
            w.put_f64(st.value.total);
            w.put_usize(st.pairs.len());
            for &(a, b) in &st.pairs {
                w.put_u64(a as u64);
                w.put_u64(b as u64);
            }
        }
    }

    /// Deserialize a trajectory recorded over a problem with `m`
    /// candidates and `nnz` squares entries; every length is validated
    /// against that shape before any state is built.
    pub fn deserialize(r: &mut PayloadReader<'_>, m: usize, nnz: usize) -> Result<Self, String> {
        let iterations = r.get_usize("trajectory.iterations")?;
        // One f64 per candidate per iteration: anything claiming more
        // than a few thousand iterations is damage, not data.
        if iterations > 1 << 20 {
            return Err(format!("trajectory.iterations {iterations} implausible"));
        }
        let numeric_recoveries = r.get_usize("trajectory.numeric_recoveries")?;
        let y = r.get_f64_vec(iterations * m, "trajectory.y")?;
        let z = r.get_f64_vec(iterations * m, "trajectory.z")?;
        let sk = r.get_f64_vec(iterations * nnz, "trajectory.sk")?;
        let n_stages = r.get_usize("trajectory.stages length")?;
        if n_stages != 2 * iterations {
            return Err(format!(
                "trajectory.stages length {n_stages}, expected {}",
                2 * iterations
            ));
        }
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let iteration = r.get_usize("stage.iteration")?;
            let parity = r.get_usize("stage.parity")?;
            if parity > 1 {
                return Err(format!("stage.parity: invalid value {parity}"));
            }
            let weight = r.get_f64("stage.value.weight")?;
            let overlap = r.get_f64("stage.value.overlap")?;
            let total = r.get_f64("stage.value.total")?;
            let n_pairs = r.get_usize("stage.pairs length")?;
            if n_pairs > m {
                return Err(format!(
                    "stage.pairs length {n_pairs} exceeds candidates {m}"
                ));
            }
            let mut pairs = Vec::with_capacity(n_pairs);
            for _ in 0..n_pairs {
                let a = r.get_u64("stage.pair a")?;
                let b = r.get_u64("stage.pair b")?;
                let a = VertexId::try_from(a).map_err(|_| "stage.pair a out of range")?;
                let b = VertexId::try_from(b).map_err(|_| "stage.pair b out of range")?;
                pairs.push((a, b));
            }
            stages.push(RecordedStage {
                iteration,
                parity,
                pairs,
                value: ObjectiveValue {
                    weight,
                    overlap,
                    total,
                },
            });
        }
        Ok(BpTrajectory {
            m,
            nnz,
            iterations,
            y,
            z,
            sk,
            stages,
            numeric_recoveries,
        })
    }
}

/// Captures a [`BpTrajectory`] from inside [`BpEngine`]; attached via
/// [`BpEngine::set_recorder`]. Writes are slot-addressed, so a resumed
/// engine (the replay escape hatch) records into a partially filled
/// trajectory correctly.
pub struct TrajectoryRecorder {
    t: BpTrajectory,
}

impl TrajectoryRecorder {
    /// Preallocate a recorder for a run of `iterations` over a problem
    /// with `m` candidates and `nnz` squares entries.
    pub fn new(m: usize, nnz: usize, iterations: usize) -> Self {
        TrajectoryRecorder {
            t: BpTrajectory {
                m,
                nnz,
                iterations,
                y: vec![0.0; iterations * m],
                z: vec![0.0; iterations * m],
                sk: vec![0.0; iterations * nnz],
                stages: (0..2 * iterations)
                    .map(|s| RecordedStage::placeholder(s % 2))
                    .collect(),
                numeric_recoveries: 0,
            },
        }
    }

    /// Resume recording into an existing trajectory (escape hatch).
    fn resuming(t: BpTrajectory) -> Self {
        TrajectoryRecorder { t }
    }

    pub(crate) fn record_iteration(&mut self, k: usize, y: &[f64], z: &[f64], sk: &[f64]) {
        let (m, nnz) = (self.t.m, self.t.nnz);
        self.t.y[(k - 1) * m..k * m].copy_from_slice(y);
        self.t.z[(k - 1) * m..k * m].copy_from_slice(z);
        self.t.sk[(k - 1) * nnz..k * nnz].copy_from_slice(sk);
    }

    pub(crate) fn record_stage(
        &mut self,
        iteration: usize,
        parity: usize,
        matching: &Matching,
        value: ObjectiveValue,
    ) {
        let st = &mut self.t.stages[2 * (iteration - 1) + parity];
        st.iteration = iteration;
        st.parity = parity;
        st.value = value;
        st.pairs.clear();
        st.pairs.extend(matching.pairs());
    }

    pub(crate) fn note_recovery(&mut self) {
        self.t.numeric_recoveries += 1;
    }

    /// Finish recording.
    pub fn into_trajectory(self) -> BpTrajectory {
        self.t
    }
}

/// Work accounting of one delta re-alignment.
#[derive(Clone, Debug, Default)]
pub struct DeltaStats {
    /// Iterations replayed through the sparse dirty-frontier path
    /// (the rest, if any, ran on a resumed engine).
    pub delta_reused_iterations: usize,
    /// Total iterations of the run.
    pub iterations_total: usize,
    /// Candidate rows recomputed across all sparse iterations.
    pub rows_recomputed: usize,
    /// `|E_L| · iterations` — what a cold run recomputes.
    pub row_slots_total: usize,
    /// Rows seeded dirty every iteration by the delta itself.
    pub seed_rows: usize,
    /// Rounded stages whose recorded matching was reused.
    pub stages_reused: usize,
    /// Rounded stages re-run through the matcher engines.
    pub stages_rematched: usize,
    /// Iteration at which the sparse replay escaped to a full engine
    /// resume, if it did.
    pub escaped_at: Option<usize>,
    /// Squares-matrix patch accounting.
    pub squares: SquaresPatchStats,
}

/// Result bundle of [`replay_bp`].
pub struct ReplayOutput {
    /// The patched problem (new base for further deltas).
    pub problem: NetAlignProblem,
    /// The re-alignment result — bit-identical to a cold solve of
    /// `problem` under the same config.
    pub result: AlignmentResult,
    /// Sparse-replay work accounting.
    pub stats: DeltaStats,
    /// Rounding engines bound to the patched `L`, warm for the next
    /// delta.
    pub engines: Vec<MatcherEngine>,
}

/// A recorded base run bundled with everything needed to apply deltas:
/// the problem, its config, the trajectory, and warm matcher engines.
pub struct DeltaBase {
    problem: NetAlignProblem,
    config: AlignConfig,
    trajectory: Option<BpTrajectory>,
    engines: Vec<MatcherEngine>,
}

impl DeltaBase {
    /// Run a recorded cold solve of `problem` and bundle the base.
    /// Requires engine-mode rounding and a recovery-free run.
    pub fn record(
        problem: NetAlignProblem,
        config: AlignConfig,
    ) -> Result<(AlignmentResult, DeltaBase), DeltaError> {
        let (result, trajectory, engines) = record_bp(&problem, &config, Vec::new())?;
        Ok((
            result,
            DeltaBase {
                problem,
                config,
                trajectory: Some(trajectory),
                engines,
            },
        ))
    }

    /// Assemble a base from parts (e.g. the serving cache).
    pub fn from_parts(
        problem: NetAlignProblem,
        config: AlignConfig,
        trajectory: BpTrajectory,
        engines: Vec<MatcherEngine>,
    ) -> Self {
        assert_eq!(trajectory.m, problem.l.num_edges());
        assert_eq!(trajectory.nnz, problem.s.nnz());
        DeltaBase {
            problem,
            config,
            trajectory: Some(trajectory),
            engines,
        }
    }

    /// The current (post-delta) problem.
    pub fn problem(&self) -> &NetAlignProblem {
        &self.problem
    }

    /// The config every solve in this chain runs under.
    pub fn config(&self) -> &AlignConfig {
        &self.config
    }

    /// The current trajectory; `None` after a failed [`Self::apply`]
    /// left the base needing a fresh recording.
    pub fn trajectory(&self) -> Option<&BpTrajectory> {
        self.trajectory.as_ref()
    }

    /// Apply `delta`, re-align, and advance the base in place so the
    /// next delta chains off the patched instance.
    pub fn apply(
        &mut self,
        delta: &ProblemDelta,
    ) -> Result<(AlignmentResult, DeltaStats), DeltaError> {
        let mut trajectory = self
            .trajectory
            .take()
            .ok_or_else(|| DeltaError::Unsupported("delta base needs re-recording".into()))?;
        let engines = std::mem::take(&mut self.engines);
        // Validation and patching fail before the trajectory is touched,
        // so a rejected delta leaves the base intact and reusable.
        match replay_bp(&self.problem, &self.config, &mut trajectory, delta, engines) {
            Ok(out) => {
                self.problem = out.problem;
                self.trajectory = Some(trajectory);
                self.engines = out.engines;
                Ok((out.result, out.stats))
            }
            Err(e) => {
                self.trajectory = Some(trajectory);
                Err(e)
            }
        }
    }
}

/// Run a plain recorded BP solve (no budget/deadline machinery): the
/// building block behind [`DeltaBase::record`] and the harness's
/// `run_bp_recorded`. `warm` engines are adopted when they still bind
/// `problem.l`.
pub fn record_bp(
    problem: &NetAlignProblem,
    config: &AlignConfig,
    warm: Vec<MatcherEngine>,
) -> Result<(AlignmentResult, BpTrajectory, Vec<MatcherEngine>), DeltaError> {
    if config.rounding.is_none() {
        return Err(DeltaError::Unsupported(
            "trajectory recording requires engine-mode rounding (config.rounding)".into(),
        ));
    }
    if config.iterations == 0 {
        return Err(DeltaError::Unsupported(
            "cannot record a zero-iteration run".into(),
        ));
    }
    let mut engine = BpEngine::new(problem, config);
    if !warm.is_empty() {
        let _ = engine.adopt_rounding(warm);
    }
    engine.set_recorder(TrajectoryRecorder::new(
        problem.l.num_edges(),
        problem.s.nnz(),
        config.iterations,
    ));
    for _ in 0..config.iterations {
        engine.step();
        if engine.rounding_due() {
            engine.round_pending();
        }
        engine.end_iteration();
    }
    let result = engine.finish_in_place();
    let trajectory = engine
        .take_recorder()
        .expect("recorder attached above")
        .into_trajectory();
    let engines = engine.release_rounding();
    if trajectory.numeric_recoveries > 0 {
        return Err(DeltaError::Unsupported(
            "base run hit numeric recoveries; delta replay cannot model the halved damping".into(),
        ));
    }
    Ok((result, trajectory, engines))
}

/// Patch `p` by `delta`, rebuilding only what the delta touches.
/// Returns the patched problem and the squares-patch accounting.
pub fn patch_problem(
    p: &NetAlignProblem,
    delta: &ProblemDelta,
) -> Result<(NetAlignProblem, SquaresPatchStats), DeltaError> {
    let patched = patch(p, delta)?;
    Ok((patched.problem, patched.s_stats))
}

/// Everything the replay needs to know about a patched instance.
struct Patched {
    problem: NetAlignProblem,
    new_to_old: Vec<usize>,
    reweighted: Vec<EdgeId>,
    /// Per new row: whether its recorded `y`/`z`/`sk` slots carry over
    /// verbatim (survivor with unchanged `S`-row shape).
    carry_row: Vec<bool>,
    s_stats: SquaresPatchStats,
}

fn patch(p: &NetAlignProblem, delta: &ProblemDelta) -> Result<Patched, DeltaError> {
    let a2 = if delta.a.is_empty() {
        p.a.clone()
    } else {
        delta.a.apply(&p.a)?
    };
    let b2 = if delta.b.is_empty() {
        p.b.clone()
    } else {
        delta.b.apply(&p.b)?
    };
    let applied = delta.l.apply(&p.l)?;
    let new_to_old = applied.new_to_old();
    let l2 = applied.graph;
    let m2 = l2.num_edges();

    // Rows whose S-row must be re-enumerated from the patched graphs:
    // new rows, rows at A/B-delta endpoints, and partner rows of every
    // structural L edit (i ∈ N_A(j), i' ∈ N_B(j') for an edited
    // (j, j') — the rows whose squares with it appear or vanish).
    let mut core: Vec<EdgeId> = applied.new_edges.clone();
    for &v in &delta.a.touched_vertices() {
        core.extend(l2.left_range(v));
    }
    for &v in &delta.b.touched_vertices() {
        core.extend(l2.right_edges(v).map(|(_, e)| e));
    }
    let structural = delta
        .l
        .insert
        .iter()
        .map(|&(a, b, _)| (a, b))
        .chain(delta.l.remove.iter().copied());
    for (j, jp) in structural {
        for &i in p.a.neighbors(j).iter().chain(a2.neighbors(j)) {
            for &ip in p.b.neighbors(jp).iter().chain(b2.neighbors(jp)) {
                if let Some(e) = l2.edge_id(i, ip) {
                    core.push(e);
                }
            }
        }
    }
    core.sort_unstable();
    core.dedup();

    let (s2, shape_preserved, s_stats) =
        p.s.patch(&a2, &b2, &l2, &applied.old_to_new, &new_to_old, &core);

    let mut carry_row: Vec<bool> = new_to_old.iter().map(|&o| o != REMOVED).collect();
    for (i, &e) in core.iter().enumerate() {
        carry_row[e] = carry_row[e] && shape_preserved[i];
    }
    debug_assert_eq!(carry_row.len(), m2);

    Ok(Patched {
        problem: NetAlignProblem::from_parts(a2, b2, l2, s2),
        new_to_old,
        reweighted: applied.reweighted,
        carry_row,
        s_stats,
    })
}

/// Replay a recorded run against `delta`. On success the trajectory is
/// advanced in place to the patched instance's cold trajectory (so
/// deltas chain); on error it is left untouched.
///
/// The returned result is **bit-identical** to
/// `belief_propagation(patched_problem, config)` — matching, objective
/// bits, best iteration and per-rounding history all agree.
pub fn replay_bp(
    p: &NetAlignProblem,
    config: &AlignConfig,
    trajectory: &mut BpTrajectory,
    delta: &ProblemDelta,
    engines: Vec<MatcherEngine>,
) -> Result<ReplayOutput, DeltaError> {
    if config.rounding.is_none() {
        return Err(DeltaError::Unsupported(
            "delta replay requires engine-mode rounding (config.rounding)".into(),
        ));
    }
    if trajectory.numeric_recoveries > 0 {
        return Err(DeltaError::Unsupported(
            "trajectory has numeric recoveries; re-record the base".into(),
        ));
    }
    if trajectory.iterations != config.iterations || trajectory.iterations == 0 {
        return Err(DeltaError::Unsupported(
            "trajectory iteration count does not match the config".into(),
        ));
    }
    if trajectory.m != p.l.num_edges() || trajectory.nnz != p.s.nnz() {
        return Err(DeltaError::Unsupported(
            "trajectory shape does not match the base problem".into(),
        ));
    }

    let patched = patch(p, delta)?;
    // Everything fallible is done; from here the trajectory mutates.
    let out = replay_patched(p, config, trajectory, delta, patched, engines);
    Ok(out)
}

fn replay_patched(
    p: &NetAlignProblem,
    config: &AlignConfig,
    trajectory: &mut BpTrajectory,
    delta: &ProblemDelta,
    patched: Patched,
    engines: Vec<MatcherEngine>,
) -> ReplayOutput {
    let Patched {
        problem: p2,
        new_to_old,
        reweighted,
        carry_row,
        s_stats,
    } = patched;
    let tt = trajectory.iterations;
    let (m1, nnz1) = (trajectory.m, trajectory.nnz);
    let (m2, nnz2) = (p2.l.num_edges(), p2.s.nnz());
    let rowptr1 = p.s.rowptr();
    let rowptr2 = p2.s.rowptr();
    let structure_changed = delta.l.changes_structure();

    // Remap the trajectory onto the new numbering. Survivor slots
    // carry verbatim; new/shape-changed slots zero (and are re-seeded
    // every iteration below). Unchanged layouts move without copying.
    let old_y = std::mem::take(&mut trajectory.y);
    let old_z = std::mem::take(&mut trajectory.z);
    let old_sk = std::mem::take(&mut trajectory.sk);
    let (y, z) = if !structure_changed {
        (old_y, old_z)
    } else {
        let mut y = vec![0.0; tt * m2];
        let mut z = vec![0.0; tt * m2];
        for it in 0..tt {
            let (ys, zs) = (&old_y[it * m1..], &old_z[it * m1..]);
            let (yd, zd) = (
                &mut y[it * m2..(it + 1) * m2],
                &mut z[it * m2..(it + 1) * m2],
            );
            for e in 0..m2 {
                let o = new_to_old[e];
                if o != REMOVED {
                    yd[e] = ys[o];
                    zd[e] = zs[o];
                }
            }
        }
        (y, z)
    };
    let sk = if nnz2 == nnz1 && carry_row.iter().all(|&c| c) {
        old_sk
    } else {
        let mut sk = vec![0.0; tt * nnz2];
        for it in 0..tt {
            let src = &old_sk[it * nnz1..(it + 1) * nnz1];
            let dst = &mut sk[it * nnz2..(it + 1) * nnz2];
            for e in 0..m2 {
                if carry_row[e] {
                    let o = new_to_old[e];
                    let (r2, r1) = (rowptr2[e]..rowptr2[e + 1], rowptr1[o]..rowptr1[o + 1]);
                    debug_assert_eq!(r2.len(), r1.len());
                    dst[r2].copy_from_slice(&src[r1]);
                }
            }
        }
        sk
    };
    let mut traj = BpTrajectory {
        m: m2,
        nnz: nnz2,
        iterations: tt,
        y,
        z,
        sk,
        // Matched vertex pairs survive edge renumbering as-is.
        stages: std::mem::take(&mut trajectory.stages),
        numeric_recoveries: 0,
    };

    // Seed rows — recomputed every iteration: rows without carried
    // state, reweighted rows, and every row sharing an endpoint with a
    // structural L edit (their othermax input *set* changed, which a
    // value comparison cannot see).
    let always_dirty: Vec<bool> = carry_row.iter().map(|&c| !c).collect();
    let mut seed: Vec<usize> = (0..m2).filter(|&e| always_dirty[e]).collect();
    seed.extend_from_slice(&reweighted);
    let structural = delta
        .l
        .insert
        .iter()
        .map(|&(a, b, _)| (a, b))
        .chain(delta.l.remove.iter().copied());
    for (a, b) in structural {
        seed.extend(p2.l.left_range(a));
        seed.extend(p2.l.right_edges(b).map(|(_, e)| e));
    }
    seed.sort_unstable();
    seed.dedup();

    // Rounding engines for the patched L: reuse the cached pair when
    // it still binds (cold-start their warm memory — it refers to the
    // pre-delta vectors), else build fresh. The sparse replay itself
    // rounds through a sequential greedy scratch; the engines serve
    // the escape path and go back to the caller warm-capable.
    let kind = config.rounding.expect("validated by replay_bp");
    let mut engines = engines;
    if engines.len() == 2 && engines.iter().all(|e| e.binds(&p2.l)) {
        for e in &mut engines {
            e.invalidate();
        }
    } else {
        engines = (0..2)
            .map(|_| MatcherEngine::new(&p2.l, kind, config.warm_start))
            .collect();
    }

    let mut stats = DeltaStats {
        iterations_total: tt,
        row_slots_total: m2 * tt,
        seed_rows: seed.len(),
        squares: s_stats,
        ..Default::default()
    };

    let counters = MatcherCounters::new(config.trace_matcher);
    let mut greedy = GreedyScratch::new(&p2.l);
    let escape_k = replay_sparse(
        &p2,
        config,
        &mut traj,
        &seed,
        &always_dirty,
        structure_changed,
        &mut greedy,
        &mut stats,
    );

    if let Some(k_esc) = escape_k {
        stats.escaped_at = Some(k_esc);
        stats.delta_reused_iterations = k_esc - 1;
        let (result, traj2, engines2) = escape_resume(&p2, config, k_esc, traj, engines);
        *trajectory = traj2;
        return ReplayOutput {
            problem: p2,
            result,
            stats,
            engines: engines2,
        };
    }

    // Fold the incumbent over all replayed stages in slot order —
    // exactly the cold run's strict-improvement fold — and assemble
    // the result through the shared finalize tail.
    let mut best: Option<(f64, usize)> = None;
    let mut best_slot = 0usize;
    let mut history = Vec::new();
    for (slot, st) in traj.stages.iter().enumerate() {
        if config.record_history {
            history.push(IterationRecord {
                iteration: st.iteration,
                objective: st.value.total,
                weight: st.value.weight,
                overlap: st.value.overlap,
                upper_bound: None,
            });
        }
        if best.is_none_or(|(b, _)| st.value.total > b) {
            best = Some((st.value.total, st.iteration));
            best_slot = slot;
        }
    }
    let (best_obj, best_iter) = best.expect("stages is non-empty (iterations > 0)");
    let it = best_slot / 2;
    let src = if best_slot.is_multiple_of(2) {
        &traj.y
    } else {
        &traj.z
    };
    let best_g = src[it * m2..(it + 1) * m2].to_vec();
    let result = crate::bp::finalize(
        &p2,
        config,
        Some((best_obj, best_g, best_iter)),
        history,
        RunTrace::new(),
        &counters,
    );
    *trajectory = traj;
    ReplayOutput {
        problem: p2,
        result,
        stats,
        engines,
    }
}

/// The sparse dirty-frontier replay loop. Mutates `traj` in place so
/// that after iteration `k` its slot `k` equals the patched cold run's
/// post-iteration-`k` state. Returns `Some(k)` if iteration `k` must
/// instead run on a resumed engine (frontier too wide, or the numeric
/// guard would trip).
#[allow(clippy::too_many_arguments)]
fn replay_sparse(
    p2: &NetAlignProblem,
    config: &AlignConfig,
    traj: &mut BpTrajectory,
    seed: &[usize],
    always_dirty: &[bool],
    structure_changed: bool,
    greedy: &mut GreedyScratch,
    stats: &mut DeltaStats,
) -> Option<usize> {
    let tt = traj.iterations;
    let (m2, nnz2) = (traj.m, traj.nnz);
    let (alpha, beta) = (config.alpha, config.beta);
    let w2 = p2.l.weights();
    let rowptr2 = p2.s.rowptr();
    let perm2 = p2.s.transpose_perm_slice();
    let col_pos2 = column_positions(&p2.l);
    let escape_rows = ((m2 as f64) * ESCAPE_FRACTION) as usize;

    let colidx2 = p2.s.colidx();
    let zeros_m = vec![0.0; m2];
    let zeros_nnz = vec![0.0; nnz2];
    let mut cand: Vec<usize> = Vec::new();
    let mut cand_next: Vec<usize> = Vec::new();
    let mut cand_epoch = vec![0u32; m2];
    let mut row_stats = vec![(0.0f64, 0.0f64, 0usize); p2.l.num_left()];
    let mut row_epoch = vec![0u32; p2.l.num_left()];
    let mut col_stats = vec![(0.0f64, 0.0f64, 0usize); p2.l.num_right()];
    let mut col_epoch = vec![0u32; p2.l.num_right()];
    let mut fv_row: Vec<f64> = Vec::new();
    let mut marks = vec![false; m2];

    // cand(1) = seed; later candidate sets are built during the
    // previous iteration from what actually changed, per input
    // channel: a changed y reaches row siblings (their othermaxrow), a
    // changed z reaches column siblings, a changed S⁽ᵏ⁾ entry reaches
    // exactly its partner row (the one that reads it through the
    // transpose permutation) — and only when the change survives the
    // F = bound₀^β(β + ·) clamp, which is where the paper's saturation
    // absorbs most perturbations. Any own change re-enters the row
    // itself (damping reads its own previous iterate).
    for &e in seed {
        if cand_epoch[e] != 1 {
            cand_epoch[e] = 1;
            cand.push(e);
        }
    }

    for k in 1..=tt {
        if std::env::var_os("NETALIGN_DELTA_DEBUG").is_some() {
            eprintln!("replay k={k} cand={} escape_rows={escape_rows}", cand.len());
        }
        if cand.len() > escape_rows {
            return Some(k);
        }
        let epoch = k as u32;
        let next = epoch + 1;
        cand_next.clear();
        for &e in seed {
            if cand_epoch[e] != next {
                cand_epoch[e] = next;
                cand_next.push(e);
            }
        }

        let gk = config.damping.fresh_weight(config.gamma, k);
        let mut changed_y_any = false;
        let mut changed_z_any = false;
        let mut nonfinite = false;
        {
            let (ylo, yhi) = traj.y.split_at_mut((k - 1) * m2);
            let y_prev: &[f64] = if k == 1 {
                &zeros_m
            } else {
                &ylo[(k - 2) * m2..]
            };
            let y_cur = &mut yhi[..m2];
            let (zlo, zhi) = traj.z.split_at_mut((k - 1) * m2);
            let z_prev: &[f64] = if k == 1 {
                &zeros_m
            } else {
                &zlo[(k - 2) * m2..]
            };
            let z_cur = &mut zhi[..m2];
            let (slo, shi) = traj.sk.split_at_mut((k - 1) * nnz2);
            let sk_prev: &[f64] = if k == 1 {
                &zeros_nnz
            } else {
                &slo[(k - 2) * nnz2..]
            };
            let sk_cur = &mut shi[..nnz2];

            for &e in &cand {
                // Listing 2 steps 1+2 for this row, in the cold
                // kernel's exact accumulation order.
                let r = rowptr2[e]..rowptr2[e + 1];
                fv_row.clear();
                let mut acc = 0.0;
                for idx in r.clone() {
                    let f = (beta + sk_prev[perm2[idx]]).clamp(0.0, beta);
                    fv_row.push(f);
                    acc += f;
                }
                let d_e = alpha * w2[e] + acc;

                // Step 3: othermax, one (max, max2, arg) stat per
                // touched vertex per iteration.
                let (a, b) = p2.l.endpoints(e);
                let (au, bu) = (a as usize, b as usize);
                let arange = p2.l.left_range(a);
                if row_epoch[au] != epoch {
                    row_epoch[au] = epoch;
                    row_stats[au] = max2(y_prev[arange.clone()].iter().copied());
                }
                let (m1r, m2r, argr) = row_stats[au];
                let omr = if e - arange.start == argr { m2r } else { m1r }.max(0.0);
                if col_epoch[bu] != epoch {
                    col_epoch[bu] = epoch;
                    col_stats[bu] = max2(p2.l.right_edges(b).map(|(_, e2)| z_prev[e2]));
                }
                let (m1c, m2c, argc) = col_stats[bu];
                let omc = if col_pos2[e] as usize == argc {
                    m2c
                } else {
                    m1c
                }
                .max(0.0);
                let y_new = d_e - omc;
                let z_new = d_e - omr;

                // Steps 4+5: S-row rescale, then damping. `forced`
                // rows (no carried base state) must propagate to every
                // reader: their pre-overwrite slot content is not the
                // base value, so the comparisons below are meaningless
                // for them.
                let scale = y_new + z_new - d_e;
                let forced = always_dirty[e];
                let yd = gk * y_new + (1.0 - gk) * y_prev[e];
                let zd = gk * z_new + (1.0 - gk) * z_prev[e];
                let changed_y = forced | (yd.to_bits() != y_cur[e].to_bits());
                y_cur[e] = yd;
                let changed_z = forced | (zd.to_bits() != z_cur[e].to_bits());
                z_cur[e] = zd;
                let mut changed_own = changed_y | changed_z;
                for (off, idx) in r.enumerate() {
                    let old = sk_cur[idx];
                    let skd = gk * (scale - fv_row[off]) + (1.0 - gk) * sk_prev[idx];
                    sk_cur[idx] = skd;
                    if config.numeric_guards && !skd.is_finite() {
                        nonfinite = true;
                    }
                    let moved = skd.to_bits() != old.to_bits();
                    changed_own |= moved;
                    let visible = moved
                        && (beta + old).clamp(0.0, beta).to_bits()
                            != (beta + skd).clamp(0.0, beta).to_bits();
                    if forced || visible {
                        let c = colidx2[idx] as usize;
                        if cand_epoch[c] != next {
                            cand_epoch[c] = next;
                            cand_next.push(c);
                        }
                    }
                }
                if changed_own && cand_epoch[e] != next {
                    cand_epoch[e] = next;
                    cand_next.push(e);
                }
                if changed_y {
                    changed_y_any = true;
                    for e2 in arange.clone() {
                        if cand_epoch[e2] != next {
                            cand_epoch[e2] = next;
                            cand_next.push(e2);
                        }
                    }
                }
                if changed_z {
                    changed_z_any = true;
                    for (_, e2) in p2.l.right_edges(b) {
                        if cand_epoch[e2] != next {
                            cand_epoch[e2] = next;
                            cand_next.push(e2);
                        }
                    }
                }
                if config.numeric_guards && !(yd.is_finite() && zd.is_finite()) {
                    nonfinite = true;
                }
            }
        }
        if nonfinite {
            // The patched cold run's guard would roll iteration k
            // back; hand it to a real engine, which replicates the
            // rollback bit-for-bit.
            return Some(k);
        }
        stats.rows_recomputed += cand.len();
        stats.delta_reused_iterations += 1;

        // Round (or reuse) this iteration's two stages. A stage whose
        // vector came out bitwise clean keeps its recorded matching;
        // the value is always re-evaluated (weights may have moved).
        for parity in 0..2 {
            let slot = 2 * (k - 1) + parity;
            let stage_clean = !structure_changed
                && if parity == 0 {
                    !changed_y_any
                } else {
                    !changed_z_any
                };
            let g: &[f64] = if parity == 0 {
                &traj.y[(k - 1) * m2..k * m2]
            } else {
                &traj.z[(k - 1) * m2..k * m2]
            };
            if stage_clean {
                let mut matching = Matching::empty(p2.l.num_left(), p2.l.num_right());
                for &(a, b) in &traj.stages[slot].pairs {
                    matching.add_pair(a, b);
                }
                let value = evaluate_matching_with_scratch(p2, &matching, alpha, beta, &mut marks);
                let st = &mut traj.stages[slot];
                st.iteration = k;
                st.parity = parity;
                st.value = value;
                stats.stages_reused += 1;
            } else {
                // Sequential greedy instead of the parallel engines:
                // the matching is pool-invariant (greedy over the
                // strict total order ≡ locally-dominant ≡ Suitor, see
                // the matching crate's equivalence suite), and one
                // sort plus a linear pass is far cheaper per stage
                // than the queue-based machinery the cold run needs
                // for parallelism it cannot use mid-replay anyway.
                let matching = greedy.run(&p2.l, g);
                let value = evaluate_matching_with_scratch(p2, matching, alpha, beta, &mut marks);
                let st = &mut traj.stages[slot];
                st.iteration = k;
                st.parity = parity;
                st.value = value;
                st.pairs.clear();
                st.pairs.extend(matching.pairs());
                stats.stages_rematched += 1;
            }
        }
        std::mem::swap(&mut cand, &mut cand_next);
    }
    None
}

/// Escape hatch: reconstruct a checkpoint at the last fully replayed
/// iteration boundary (`k_esc - 1`) and let a real [`BpEngine`] run
/// the rest, recording into the same trajectory. Bit-identical to the
/// cold run by the checkpoint/restore state-equality contract.
fn escape_resume(
    p2: &NetAlignProblem,
    config: &AlignConfig,
    k_esc: usize,
    traj: BpTrajectory,
    engines: Vec<MatcherEngine>,
) -> (AlignmentResult, BpTrajectory, Vec<MatcherEngine>) {
    let kb = k_esc - 1;
    let (m2, nnz2) = (traj.m, traj.nnz);
    let batch = config.batch.max(1);
    let last_flush = (kb / batch) * batch;

    // Incumbent/history as of the last flush boundary — later stages
    // are still "pending" at the checkpoint and get rounded (again,
    // identically) by the resumed engine.
    let mut best: Option<(f64, usize)> = None;
    let mut best_slot = 0usize;
    let mut history = Vec::new();
    for (slot, st) in traj.stages.iter().enumerate().take(2 * last_flush) {
        if config.record_history {
            history.push(IterationRecord {
                iteration: st.iteration,
                objective: st.value.total,
                weight: st.value.weight,
                overlap: st.value.overlap,
                upper_bound: None,
            });
        }
        if best.is_none_or(|(b, _)| st.value.total > b) {
            best = Some((st.value.total, st.iteration));
            best_slot = slot;
        }
    }
    let best_g = match best {
        Some(_) => {
            let it = best_slot / 2;
            let src = if best_slot.is_multiple_of(2) {
                &traj.y
            } else {
                &traj.z
            };
            src[it * m2..(it + 1) * m2].to_vec()
        }
        None => vec![0.0; m2],
    };

    let mut engine = BpEngine::new(p2, config);
    let _ = engine.adopt_rounding(engines);
    if kb > 0 {
        let mut pending_iter = Vec::new();
        let mut pending_bufs = Vec::new();
        for it in (last_flush + 1)..=kb {
            pending_iter.push(it);
            pending_bufs.push(traj.y[(it - 1) * m2..it * m2].to_vec());
            pending_iter.push(it);
            pending_bufs.push(traj.z[(it - 1) * m2..it * m2].to_vec());
        }
        engine.restore_state(BpState {
            k: kb,
            gamma: config.gamma,
            y: traj.y[(kb - 1) * m2..kb * m2].to_vec(),
            z: traj.z[(kb - 1) * m2..kb * m2].to_vec(),
            sk: traj.sk[(kb - 1) * nnz2..kb * nnz2].to_vec(),
            pending_iter,
            pending_bufs,
            best,
            best_g,
            history,
            algo: AlgoCounters::default(),
            matcher: MatcherCounters::new(config.trace_matcher).snapshot(),
        });
    }
    engine.set_recorder(TrajectoryRecorder::resuming(traj));
    for _ in kb..config.iterations {
        engine.step();
        if engine.rounding_due() {
            engine.round_pending();
        }
        engine.end_iteration();
    }
    let result = engine.finish_in_place();
    let traj = engine
        .take_recorder()
        .expect("recorder attached above")
        .into_trajectory();
    let engines = engine.release_rounding();
    (result, traj, engines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bp::belief_propagation;
    use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
    use netalign_matching::RoundingMatcher;

    fn instance(n: usize, seed: u64) -> NetAlignProblem {
        let g = power_law_graph(n, 2.5, 12, seed);
        let a = add_random_edges(&g, 0.02, seed + 1);
        let b = add_random_edges(&g, 0.02, seed + 2);
        let l = identity_plus_noise_l(n, n, 6.0 / n as f64, 1.0, 1.0, seed + 3);
        NetAlignProblem::new(a, b, l)
    }

    fn cfg(iterations: usize, batch: usize) -> AlignConfig {
        AlignConfig {
            iterations,
            batch,
            rounding: Some(RoundingMatcher::Ld),
            warm_start: true,
            record_history: true,
            ..Default::default()
        }
    }

    fn assert_bit_identical(r: &AlignmentResult, c: &AlignmentResult) {
        assert_eq!(r.matching, c.matching);
        assert_eq!(r.objective.to_bits(), c.objective.to_bits());
        assert_eq!(r.weight.to_bits(), c.weight.to_bits());
        assert_eq!(r.overlap.to_bits(), c.overlap.to_bits());
        assert_eq!(r.best_iteration, c.best_iteration);
        assert_eq!(r.history.len(), c.history.len());
        for (h, ch) in r.history.iter().zip(&c.history) {
            assert_eq!(h.iteration, ch.iteration);
            assert_eq!(h.objective.to_bits(), ch.objective.to_bits());
        }
    }

    /// Cold-solve the patched instance from scratch (full S rebuild).
    fn cold_solve(
        p: &NetAlignProblem,
        delta: &ProblemDelta,
        config: &AlignConfig,
    ) -> AlignmentResult {
        let a2 = delta.a.apply(&p.a).unwrap();
        let b2 = delta.b.apply(&p.b).unwrap();
        let l2 = delta.l.apply(&p.l).unwrap().graph;
        belief_propagation(&NetAlignProblem::new(a2, b2, l2), config)
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let p = instance(30, 71);
        let config = cfg(7, 2);
        let (r, traj, _engines) = record_bp(&p, &config, Vec::new()).unwrap();
        assert_eq!(traj.iterations(), 7);
        assert_eq!(traj.num_candidates(), p.l.num_edges());
        let c = belief_propagation(&p, &config);
        assert_bit_identical(&r, &c);
    }

    #[test]
    fn empty_delta_reuses_every_stage() {
        let p = instance(30, 61);
        let config = cfg(8, 1);
        let (r0, mut base) = DeltaBase::record(p, config).unwrap();
        let (r, stats) = base.apply(&ProblemDelta::default()).unwrap();
        assert_eq!(stats.rows_recomputed, 0);
        assert_eq!(stats.stages_reused, 16);
        assert_eq!(stats.stages_rematched, 0);
        assert_eq!(stats.delta_reused_iterations, 8);
        assert_eq!(stats.escaped_at, None);
        assert_bit_identical(&r, &r0);
    }

    #[test]
    fn reweight_replay_is_bit_identical_to_cold() {
        let p = instance(40, 11);
        for batch in [1, 3] {
            let config = cfg(12, batch);
            let (_, mut base) = DeltaBase::record(p.clone(), config).unwrap();
            let (a0, b0) = p.l.endpoints(2);
            let (a1, b1) = p.l.endpoints(p.l.num_edges() - 1);
            let delta = ProblemDelta {
                l: CandidateDelta {
                    reweight: vec![(a0, b0, 3.5), (a1, b1, 0.25)],
                    ..Default::default()
                },
                ..Default::default()
            };
            let (r, stats) = base.apply(&delta).unwrap();
            assert_bit_identical(&r, &cold_solve(&p, &delta, &config));
            // The perturbation frontier may legitimately saturate and
            // trigger the engine escape; parity must hold either way,
            // and at least the early iterations must replay sparsely.
            assert!(stats.delta_reused_iterations >= 1, "batch {batch}");
            assert!(stats.rows_recomputed < stats.row_slots_total);
        }
    }

    #[test]
    fn structural_replay_is_bit_identical_to_cold() {
        let p = instance(40, 21);
        let config = cfg(10, 1);
        // L: expire one candidate, insert one absent, reweight one.
        let (ra, rb) = p.l.endpoints(5);
        let (wa, wb) = p.l.endpoints(9);
        let mut l_ins = None;
        'l: for a in 0..p.l.num_left() as VertexId {
            for b in 0..p.l.num_right() as VertexId {
                if p.l.edge_id(a, b).is_none() {
                    l_ins = Some((a, b));
                    break 'l;
                }
            }
        }
        let (ia, ib) = l_ins.unwrap();
        // A: toggle one edge each way.
        let (au, av) = p.a.edges().next().unwrap();
        let mut a_ins = None;
        'a: for u in 0..p.a.num_vertices() as VertexId {
            for v in (u + 1)..p.a.num_vertices() as VertexId {
                if !p.a.has_edge(u, v) {
                    a_ins = Some((u, v));
                    break 'a;
                }
            }
        }
        let delta = ProblemDelta {
            a: GraphDelta {
                insert: vec![a_ins.unwrap()],
                remove: vec![(au, av)],
            },
            b: GraphDelta::default(),
            l: CandidateDelta {
                insert: vec![(ia, ib, 0.8)],
                remove: vec![(ra, rb)],
                reweight: vec![(wa, wb, 2.0)],
            },
        };
        let (_, mut base) = DeltaBase::record(p.clone(), config).unwrap();
        let (r, stats) = base.apply(&delta).unwrap();
        assert_bit_identical(&r, &cold_solve(&p, &delta, &config));
        assert!(stats.squares.rows_reused > 0);
        assert!(stats.seed_rows > 0);
    }

    #[test]
    fn chained_deltas_advance_the_base() {
        let p = instance(30, 31);
        let config = cfg(8, 1);
        let (_, mut base) = DeltaBase::record(p.clone(), config).unwrap();
        let (a0, b0) = p.l.endpoints(0);
        let d1 = ProblemDelta {
            l: CandidateDelta {
                reweight: vec![(a0, b0, 2.0)],
                ..Default::default()
            },
            ..Default::default()
        };
        base.apply(&d1).unwrap();
        let (a1, b1) = p.l.endpoints(3);
        let d2 = ProblemDelta {
            l: CandidateDelta {
                reweight: vec![(a1, b1, 0.1)],
                ..Default::default()
            },
            ..Default::default()
        };
        let (r2, _) = base.apply(&d2).unwrap();
        let l2 = d1.l.apply(&p.l).unwrap().graph;
        let l3 = d2.l.apply(&l2).unwrap().graph;
        let cold = belief_propagation(&NetAlignProblem::new(p.a.clone(), p.b.clone(), l3), &config);
        assert_bit_identical(&r2, &cold);
    }

    #[test]
    fn wide_delta_escapes_to_engine_resume() {
        let p = instance(120, 41);
        assert!(
            p.l.num_edges() > 260,
            "want a wide L, got {}",
            p.l.num_edges()
        );
        for batch in [1, 3] {
            let config = cfg(9, batch);
            let (_, mut base) = DeltaBase::record(p.clone(), config).unwrap();
            // Reweight half of all candidates: the seed alone blows the
            // dirty-fraction threshold, so the whole run escapes.
            let reweight: Vec<_> = (0..p.l.num_edges())
                .step_by(2)
                .map(|e| {
                    let (a, b) = p.l.endpoints(e);
                    (a, b, 1.0 + (e % 7) as f64 * 0.3)
                })
                .collect();
            let delta = ProblemDelta {
                l: CandidateDelta {
                    reweight,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (r, stats) = base.apply(&delta).unwrap();
            assert!(stats.escaped_at.is_some(), "batch {batch}");
            assert_bit_identical(&r, &cold_solve(&p, &delta, &config));
        }
    }

    /// Drive the escape hatch directly from a mid-run boundary on an
    /// unchanged problem: the resumed engine must land on the recorded
    /// cold result exactly (checkpoint reconstruction, pending-batch
    /// rebuild, incumbent fold).
    #[test]
    fn escape_resume_from_midpoint_matches_cold() {
        let p = instance(40, 51);
        for batch in [1, 3] {
            let config = cfg(10, batch);
            let (cold, traj, engines) = record_bp(&p, &config, Vec::new()).unwrap();
            for k_esc in [1, 5, 10] {
                let (r, _t, _e) = escape_resume(&p, &config, k_esc, traj.clone(), Vec::new());
                assert_bit_identical(&r, &cold);
            }
            drop(engines);
        }
    }

    #[test]
    fn replay_refuses_unrecordable_configs() {
        let p = instance(20, 81);
        let config = AlignConfig {
            iterations: 5,
            ..Default::default()
        };
        assert!(matches!(
            record_bp(&p, &config, Vec::new()),
            Err(DeltaError::Unsupported(_))
        ));
    }
}
