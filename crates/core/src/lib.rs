//! Network alignment heuristics — the primary contribution of the
//! SC'12 paper *"A multithreaded algorithm for network alignment via
//! approximate matching"* (Khan, Gleich, Pothen, Halappanavar).
//!
//! Given two undirected graphs `A`, `B` and a weighted bipartite
//! candidate graph `L` between their vertex sets, network alignment
//! seeks a matching `x` in `L` maximizing
//!
//! ```text
//!     α · wᵀx  +  (β/2) · xᵀ S x
//! ```
//!
//! where `S` is the *squares* matrix: `S[(i,i'),(j,j')] = 1` iff
//! `(i,j) ∈ E_A` and `(i',j') ∈ E_B` (an *overlapped* edge pair).
//!
//! This crate implements both heuristics the paper parallelizes:
//!
//! * [`bp`] — belief propagation message passing (Listing 2), with
//!   batched rounding `BP(batch=r)`;
//! * [`mr`] — Klau's matching relaxation / Lagrangian subgradient
//!   method (Listing 1);
//!
//! plus the machinery they share: [`squares`] (building `S`),
//! [`objective`], [`rounding`] (the `round_heuristic` of Table I with a
//! pluggable exact/approximate matcher), run observability ([`trace`]:
//! per-step spans, matcher counters, JSON reports), fault tolerance
//! ([`checkpoint`]: versioned engine snapshots; [`harness`]:
//! checkpointed + resumable runs), and the run [`config`] /
//! [`result`] types.
//!
//! # Quickstart
//!
//! ```
//! use netalign_core::prelude::*;
//! use netalign_graph::{Graph, BipartiteGraph};
//!
//! // Two triangles and a noisy candidate graph between them.
//! let a = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
//! let b = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
//! let l = BipartiteGraph::from_entries(3, 3, vec![
//!     (0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 1, 1.0),
//! ]);
//! let problem = NetAlignProblem::new(a, b, l);
//! let config = AlignConfig { iterations: 20, ..AlignConfig::default() };
//! let result = belief_propagation(&problem, &config);
//! assert_eq!(result.matching.cardinality(), 3);
//! assert_eq!(result.overlap, 3.0); // all three edges overlap
//! ```

pub mod baselines;
pub mod bp;
pub mod checkpoint;
pub mod config;
pub mod delta;
pub mod dist;
pub mod exitcode;
pub mod frame;
pub mod harness;
pub mod mr;
pub mod objective;
pub mod oocore;
pub mod pareto;
pub mod problem;
pub mod result;
pub mod rounding;
pub mod rowspans;
pub mod squares;
pub mod trace;

pub mod prelude {
    //! Convenient re-exports of the most used items.
    pub use crate::baselines::{isorank, naive_rounding, nsd, IsoRankConfig, NsdConfig};
    pub use crate::bp::belief_propagation;
    pub use crate::checkpoint::{CheckpointError, EngineKind};
    pub use crate::config::{AlignConfig, CheckpointPolicy, TimeBudget};
    pub use crate::harness::{AlignOutcome, Completion, DeadlinePolicy, HarnessError, RunHarness};
    pub use crate::mr::matching_relaxation;
    pub use crate::oocore::{align_streaming, belief_propagation_ooc, OocError, OocOptions};
    pub use crate::problem::NetAlignProblem;
    pub use crate::result::AlignmentResult;
    pub use crate::trace::cancel::{CancelReason, CancelToken};
    pub use netalign_matching::{MatcherKind, RoundingMatcher};
}

pub use bp::belief_propagation;
pub use config::AlignConfig;
pub use mr::matching_relaxation;
pub use problem::NetAlignProblem;
pub use result::AlignmentResult;
