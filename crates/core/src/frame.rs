//! Length-prefixed frame codec shared by every socket protocol in the
//! workspace.
//!
//! One frame is a 4-byte big-endian payload length followed by the
//! payload. The codec was born in `netalign-serve`'s wire protocol and
//! moved here once the distributed execution layer (`crate::dist`)
//! needed the same framing for coordinator↔worker traffic.
//!
//! Robustness contract (property-tested below):
//!
//! * **Arbitrary split points.** `read_frame` never assumes a `read()`
//!   call returns a whole header or payload; it loops over partial
//!   reads and retries [`std::io::ErrorKind::Interrupted`], so a
//!   transport delivering one byte at a time parses identically to one
//!   delivering whole frames.
//! * **Torn tails are typed.** EOF in the middle of a header or
//!   payload yields [`FrameError::Torn`] with the exact byte counts —
//!   never a panic, never an over-read past the declared length.
//! * **Oversized frames keep the stream aligned.** A frame whose
//!   declared length exceeds the caller's limit is drained so the next
//!   frame parses; the caller decides whether to reply or hang up.

use std::io::{ErrorKind, Read, Write};

/// Outcome of reading one frame.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer declared `len` bytes, over the limit; the payload was
    /// drained so the stream stays frame-aligned.
    Oversized(u32),
    /// The peer closed the connection cleanly (EOF at a frame
    /// boundary).
    Closed,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended mid-frame: the peer died (or tore the
    /// connection) between split points. `got` of `expected` bytes of
    /// the `part` ("header" or "payload") arrived.
    Torn {
        part: &'static str,
        expected: usize,
        got: usize,
    },
    /// Underlying transport error (read timeouts surface here with
    /// their original [`ErrorKind`]).
    Io(std::io::Error),
}

impl FrameError {
    /// True when the error is a read timeout (`WouldBlock`/`TimedOut`),
    /// i.e. the stream is still healthy and a retry may succeed.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
        )
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn {
                part,
                expected,
                got,
            } => write!(f, "torn frame: {got}/{expected} {part} bytes before EOF"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<FrameError> for std::io::Error {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Torn { .. } => std::io::Error::new(ErrorKind::UnexpectedEof, e.to_string()),
            FrameError::Io(e) => e,
        }
    }
}

/// Fill `buf` from `r`, tolerating arbitrary split points and retrying
/// `Interrupted`. Returns the number of bytes read before EOF.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one length-prefixed frame, enforcing `max_len`.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<FrameRead, FrameError> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf)? {
        0 => return Ok(FrameRead::Closed),
        4 => {}
        got => {
            return Err(FrameError::Torn {
                part: "header",
                expected: 4,
                got,
            })
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max_len {
        // Drain the declared payload so the next frame parses; a tear
        // during the drain is still a torn payload.
        let mut sink = std::io::sink();
        let drained =
            std::io::copy(&mut r.take(len as u64), &mut sink).map_err(FrameError::Io)? as usize;
        if drained < len as usize {
            return Err(FrameError::Torn {
                part: "payload",
                expected: len as usize,
                got: drained,
            });
        }
        return Ok(FrameRead::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got < payload.len() {
        return Err(FrameError::Torn {
            part: "payload",
            expected: payload.len(),
            got,
        });
    }
    Ok(FrameRead::Frame(payload))
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A reader that serves `data` in chunks split at `cuts`, then EOF.
    /// Every boundary in `cuts` forces a short `read()` return, so a
    /// frame parse must survive any interleaving of partial reads.
    struct SplitReader {
        data: Vec<u8>,
        pos: usize,
        cuts: Vec<usize>,
    }

    impl Read for SplitReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let next_cut = self
                .cuts
                .iter()
                .copied()
                .filter(|&c| c > self.pos)
                .min()
                .unwrap_or(self.data.len())
                .min(self.data.len());
            let n = (next_cut - self.pos).min(buf.len()).max(1);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn empty_frame_roundtrips() {
        let wire = encode(&[]);
        let mut r = wire.as_slice();
        match read_frame(&mut r, 16).unwrap() {
            FrameRead::Frame(p) => assert!(p.is_empty()),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn eof_at_boundary_is_closed() {
        let mut r: &[u8] = &[];
        assert!(matches!(read_frame(&mut r, 16).unwrap(), FrameRead::Closed));
    }

    proptest! {
        /// A frame must decode identically no matter where `read()`
        /// splits the byte stream — including one-byte-at-a-time.
        #[test]
        fn roundtrip_through_every_split_offset(
            payload in proptest::collection::vec(0u8..255, 0..48),
            cut in 0usize..64,
        ) {
            let wire = encode(&payload);
            let cut = cut % (wire.len() + 1);
            let mut r = SplitReader {
                data: wire.clone(),
                pos: 0,
                cuts: vec![cut],
            };
            match read_frame(&mut r, 1 << 16).unwrap() {
                FrameRead::Frame(p) => prop_assert_eq!(p, payload),
                other => prop_assert!(false, "unexpected: {:?}", other),
            }
            // Exhaustively: a cut at *every* offset simultaneously
            // (one-byte reads).
            let mut r = SplitReader {
                cuts: (0..wire.len()).collect(),
                data: wire,
                pos: 0,
            };
            match read_frame(&mut r, 1 << 16).unwrap() {
                FrameRead::Frame(p) => prop_assert_eq!(p, payload),
                other => prop_assert!(false, "unexpected: {:?}", other),
            }
        }

        /// Truncating the wire bytes at any interior offset must yield
        /// a typed torn-frame error (or `Closed` at offset 0) — never a
        /// panic, never a bogus frame, never an over-read.
        #[test]
        fn truncation_at_every_offset_is_typed(
            payload in proptest::collection::vec(0u8..255, 0..48),
            keep in 0usize..64,
        ) {
            let wire = encode(&payload);
            let keep = keep % (wire.len() + 1);
            let truncated = wire[..keep].to_vec();
            let mut r = SplitReader { data: truncated, pos: 0, cuts: vec![] };
            match read_frame(&mut r, 1 << 16) {
                Ok(FrameRead::Closed) => prop_assert_eq!(keep, 0),
                Ok(FrameRead::Frame(p)) => {
                    prop_assert_eq!(keep, wire.len());
                    prop_assert_eq!(p, payload);
                }
                Ok(FrameRead::Oversized(_)) => prop_assert!(false, "no limit set"),
                Err(FrameError::Torn { expected, got, .. }) => {
                    prop_assert!(keep > 0 && keep < wire.len());
                    prop_assert!(got < expected);
                }
                Err(FrameError::Io(e)) => prop_assert!(false, "io error: {}", e),
            }
        }

        /// Oversized frames drain exactly the declared payload, so a
        /// following frame still parses.
        #[test]
        fn oversized_keeps_stream_aligned(
            big in proptest::collection::vec(0u8..255, 9..40),
            next in proptest::collection::vec(0u8..255, 0..8),
        ) {
            let mut wire = encode(&big);
            wire.extend_from_slice(&encode(&next));
            let mut r = SplitReader { cuts: (0..wire.len()).collect(), data: wire, pos: 0 };
            match read_frame(&mut r, 8).unwrap() {
                FrameRead::Oversized(len) => prop_assert_eq!(len as usize, big.len()),
                other => prop_assert!(false, "unexpected: {:?}", other),
            }
            match read_frame(&mut r, 8).unwrap() {
                FrameRead::Frame(p) => prop_assert_eq!(p, next),
                other => prop_assert!(false, "unexpected: {:?}", other),
            }
        }
    }
}
