//! Run observability: the instrumented step taxonomy, hierarchical
//! per-iteration timing, matcher counters, and machine-readable run
//! reports (paper §VIII.C, Figures 6 and 7).
//!
//! This module is the aligner-facing surface over the
//! [`netalign_trace`] substrate. A [`RunTrace`] travels inside every
//! [`crate::result::AlignmentResult`] and bundles:
//!
//! * per-step wall-clock spans, broken down by iteration
//!   ([`StepTrace`] indexed by [`Step`]);
//! * a [`MatcherCounterSnapshot`] of the parallel matcher's events
//!   (populated when [`crate::config::AlignConfig::trace_matcher`] is
//!   set);
//! * [`AlgoCounters`] — messages updated, rounding invocations and
//!   batch sizes, best-iterate improvements.

pub use netalign_trace::{
    cancel, faults, peak_rss_kb, AlgoCounters, Json, MatcherCounterSnapshot, MatcherCounters,
    StepTrace,
};

use std::time::{Duration, Instant};

/// The instrumented steps of both aligners. MR uses the first five
/// (Listing 1's annotations), BP the last six (Listing 2's).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    // -- Klau's MR method --
    /// Step 1: one small exact matching per row of S.
    RowMatch,
    /// Step 2: `w̄ = αw + d`.
    Daxpy,
    /// Step 3: the full bipartite matching of `w̄` (or a BP rounding).
    Match,
    /// Step 4: objective / bound evaluation.
    ObjectiveEval,
    /// Step 5: Lagrange multiplier update.
    UpdateU,
    // -- BP --
    /// Step 1: `F = bound₀^β (βS + S⁽ᵏ⁾ᵀ)`.
    ComputeF,
    /// Step 2: `d = αw + Fe`.
    ComputeD,
    /// Step 3: the two othermax sweeps.
    OtherMax,
    /// Step 4: `S⁽ᵏ⁾ = diag(y+z−d) S − F`.
    UpdateS,
    /// Step 5: the `γᵏ` damping interpolation.
    Damping,
    // -- shared --
    /// Numerical guard rails: end-of-iteration finite check, the
    /// safe-iterate copy, and any rollback (both aligners, when
    /// [`crate::config::AlignConfig::numeric_guards`] is on).
    Guard,
}

impl Step {
    /// All steps, for iteration in reports.
    pub const ALL: [Step; 11] = [
        Step::RowMatch,
        Step::Daxpy,
        Step::Match,
        Step::ObjectiveEval,
        Step::UpdateU,
        Step::ComputeF,
        Step::ComputeD,
        Step::OtherMax,
        Step::UpdateS,
        Step::Damping,
        Step::Guard,
    ];

    /// Stable display names, parallel to [`Step::ALL`] — the step axis
    /// of every trace and JSON report.
    pub const NAMES: [&'static str; 11] = [
        "row-match",
        "daxpy",
        "match",
        "objective",
        "update-u",
        "compute-f",
        "compute-d",
        "othermax",
        "update-s",
        "damping",
        "guard",
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        Self::NAMES[self.index()]
    }

    /// Position in [`Step::ALL`] / [`Step::NAMES`] (the [`StepTrace`]
    /// index).
    pub const fn index(&self) -> usize {
        match self {
            Step::RowMatch => 0,
            Step::Daxpy => 1,
            Step::Match => 2,
            Step::ObjectiveEval => 3,
            Step::UpdateU => 4,
            Step::ComputeF => 5,
            Step::ComputeD => 6,
            Step::OtherMax => 7,
            Step::UpdateS => 8,
            Step::Damping => 9,
            Step::Guard => 10,
        }
    }
}

/// The full observability record of one aligner run: hierarchical step
/// timing plus matcher and aligner counters. Carried by
/// [`crate::result::AlignmentResult::trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunTrace {
    /// Per-step wall-clock spans, per iteration, indexed by [`Step`].
    pub steps: StepTrace,
    /// Parallel-matcher event counts accumulated over the run (zero
    /// unless the run traced its matcher).
    pub matcher: MatcherCounterSnapshot,
    /// Aligner-level counters.
    pub algo: AlgoCounters,
    /// Lifetime peak resident-set size of the process (kB) sampled at
    /// the end of the run — `VmHWM` on Linux, 0 elsewhere. Monotone
    /// over the process lifetime, so in-process comparisons must
    /// sample the out-of-core run first.
    pub peak_rss_kb: u64,
}

impl Default for RunTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl RunTrace {
    /// Fresh trace recording per-iteration step rows.
    pub fn new() -> Self {
        RunTrace {
            steps: StepTrace::new(&Step::NAMES),
            matcher: MatcherCounterSnapshot::default(),
            algo: AlgoCounters::default(),
            peak_rss_kb: 0,
        }
    }

    /// Fresh trace keeping only step totals (constant memory for very
    /// long runs).
    pub fn totals_only() -> Self {
        RunTrace {
            steps: StepTrace::with_options(&Step::NAMES, false),
            matcher: MatcherCounterSnapshot::default(),
            algo: AlgoCounters::default(),
            peak_rss_kb: 0,
        }
    }

    /// Record the process's lifetime peak RSS so far (kB) into the
    /// trace. Keeps the larger of the stored and sampled values.
    pub fn stamp_peak_rss(&mut self) {
        self.peak_rss_kb = self.peak_rss_kb.max(netalign_trace::peak_rss_kb());
    }

    /// Time a closure, attributing its wall-clock to `step`.
    pub fn time<T>(&mut self, step: Step, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(step, start.elapsed());
        out
    }

    /// Add an externally measured duration to a step (current
    /// iteration).
    pub fn add(&mut self, step: Step, d: Duration) {
        self.steps.add(step.index(), d);
    }

    /// Close the current iteration's row of step spans.
    pub fn end_iteration(&mut self) {
        self.steps.end_iteration();
    }

    /// Pre-size storage for `iterations` rows and as many rounding
    /// batches, so the aligners' steady-state loops record without
    /// allocating.
    pub fn reserve_iterations(&mut self, iterations: usize) {
        self.steps.reserve_iterations(iterations);
        self.algo.rounding_batch_sizes.reserve(iterations);
    }

    /// Accumulated time of one step.
    pub fn get(&self, step: Step) -> Duration {
        self.steps.get(step.index())
    }

    /// Total across all steps.
    pub fn total(&self) -> Duration {
        self.steps.total()
    }

    /// Merge another run's trace into this one: step totals add,
    /// iteration rows append, matcher counters accumulate, aligner
    /// counters add.
    pub fn merge(&mut self, other: &RunTrace) {
        self.steps.merge(&other.steps);
        self.matcher.accumulate(&other.matcher);
        self.algo.messages_updated += other.algo.messages_updated;
        self.algo.rounding_invocations += other.algo.rounding_invocations;
        self.algo
            .rounding_batch_sizes
            .extend_from_slice(&other.algo.rounding_batch_sizes);
        self.algo.best_improvements += other.algo.best_improvements;
        self.algo.numeric_recoveries += other.algo.numeric_recoveries;
        // RSS is a process-wide high-water mark, not an additive span.
        self.peak_rss_kb = self.peak_rss_kb.max(other.peak_rss_kb);
    }

    /// `(step-name, seconds, share-of-total)` rows for non-zero steps,
    /// ready for the Figure 6/7 breakdown tables.
    pub fn report(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total().as_secs_f64();
        Step::ALL
            .iter()
            .filter(|s| !self.get(**s).is_zero())
            .map(|s| {
                let secs = self.get(*s).as_secs_f64();
                (s.name(), secs, if total > 0.0 { secs / total } else { 0.0 })
            })
            .collect()
    }

    /// Human-readable summary: the per-step table plus counter lines.
    pub fn report_table(&self) -> String {
        let mut out = self.steps.report();
        if !self.matcher.is_zero() {
            out.push_str(&format!(
                "matcher: {} rounds, {} find-mate (+{} re-runs), {} attempts -> {} pairs ({} lost CAS), queue peak {}\n",
                self.matcher.rounds,
                self.matcher.find_mate_initial,
                self.matcher.find_mate_reruns,
                self.matcher.match_attempts,
                self.matcher.matched_pairs,
                self.matcher.cas_failures,
                self.matcher.queue_peak,
            ));
            if self.matcher.proposals > 0 {
                out.push_str(&format!(
                    "suitor: {} proposals, {} displacements\n",
                    self.matcher.proposals, self.matcher.displacements,
                ));
            }
            if self.matcher.warm_hits > 0 || self.matcher.reseeded_vertices > 0 {
                out.push_str(&format!(
                    "warm start: {} vertices reused, {} reseeded\n",
                    self.matcher.warm_hits, self.matcher.reseeded_vertices,
                ));
            }
        }
        if self.algo != AlgoCounters::default() {
            out.push_str(&format!(
                "aligner: {} messages updated, {} roundings over {} vectors, {} best improvements\n",
                self.algo.messages_updated,
                self.algo.rounding_invocations,
                self.algo.vectors_rounded(),
                self.algo.best_improvements,
            ));
        }
        if self.algo.numeric_recoveries > 0 {
            out.push_str(&format!(
                "guard: {} numeric recoveries (rolled back to the last finite iterate)\n",
                self.algo.numeric_recoveries,
            ));
        }
        if self.peak_rss_kb > 0 {
            out.push_str(&format!("memory: peak RSS {} kB\n", self.peak_rss_kb));
        }
        out
    }

    /// Machine-readable form: step spans, matcher counters, aligner
    /// counters.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("steps", self.steps.to_json()),
            ("matcher", self.matcher.to_json()),
            ("algo", self.algo.to_json()),
            ("peak_rss_kb", Json::U64(self.peak_rss_kb)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates() {
        let mut t = RunTrace::new();
        let v = t.time(Step::Daxpy, || 21 * 2);
        assert_eq!(v, 42);
        assert!(t.get(Step::Daxpy) > Duration::ZERO);
        assert_eq!(t.get(Step::Match), Duration::ZERO);
    }

    #[test]
    fn report_shares_sum_to_one() {
        let mut t = RunTrace::new();
        t.add(Step::RowMatch, Duration::from_millis(30));
        t.add(Step::Match, Duration::from_millis(70));
        let rep = t.report();
        assert_eq!(rep.len(), 2);
        let share_sum: f64 = rep.iter().map(|r| r.2).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut t1 = RunTrace::new();
        t1.add(Step::OtherMax, Duration::from_millis(5));
        t1.algo.rounding_batch_sizes.push(2);
        let mut t2 = RunTrace::new();
        t2.add(Step::OtherMax, Duration::from_millis(7));
        t2.algo.rounding_batch_sizes.push(3);
        t2.matcher.rounds = 4;
        t1.merge(&t2);
        assert_eq!(t1.get(Step::OtherMax), Duration::from_millis(12));
        assert_eq!(t1.algo.rounding_batch_sizes, vec![2, 3]);
        assert_eq!(t1.matcher.rounds, 4);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Step::RowMatch.name(), "row-match");
        assert_eq!(Step::Damping.name(), "damping");
        assert_eq!(Step::Guard.name(), "guard");
        assert_eq!(Step::ALL.len(), 11);
        for (i, s) in Step::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(s.name(), Step::NAMES[i]);
        }
    }

    #[test]
    fn iterations_are_recorded() {
        let mut t = RunTrace::new();
        t.add(Step::ComputeF, Duration::from_millis(1));
        t.end_iteration();
        t.add(Step::ComputeF, Duration::from_millis(2));
        t.end_iteration();
        assert_eq!(t.steps.num_iterations(), 2);
        assert_eq!(
            t.steps.iteration(1)[Step::ComputeF.index()],
            Duration::from_millis(2)
        );
    }

    #[test]
    fn peak_rss_merges_as_max_and_reports() {
        let mut t1 = RunTrace::new();
        t1.peak_rss_kb = 512;
        let mut t2 = RunTrace::new();
        t2.peak_rss_kb = 2048;
        t1.merge(&t2);
        assert_eq!(t1.peak_rss_kb, 2048);
        assert!(t1.report_table().contains("peak RSS 2048 kB"));
        assert!(t1.to_json().render().contains("\"peak_rss_kb\":2048"));
        #[cfg(target_os = "linux")]
        {
            let mut t = RunTrace::new();
            t.stamp_peak_rss();
            assert!(t.peak_rss_kb > 0);
        }
    }

    #[test]
    fn json_contains_all_sections() {
        let mut t = RunTrace::new();
        t.add(Step::Match, Duration::from_millis(3));
        t.matcher.rounds = 2;
        t.algo.rounding_invocations = 1;
        let text = t.to_json().render();
        assert!(text.contains("\"steps\""));
        assert!(text.contains("\"matcher\""));
        assert!(text.contains("\"rounds\":2"));
        assert!(text.contains("\"rounding_invocations\":1"));
    }
}
