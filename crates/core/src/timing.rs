//! Per-step wall-clock accounting for the scalability-bottleneck
//! experiments (paper §VIII.C, Figures 6 and 7).

use std::time::{Duration, Instant};

/// The instrumented steps of both aligners. MR uses the first five
/// (Listing 1's annotations), BP the last six (Listing 2's).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    // -- Klau's MR method --
    /// Step 1: one small exact matching per row of S.
    RowMatch,
    /// Step 2: `w̄ = αw + d`.
    Daxpy,
    /// Step 3: the full bipartite matching of `w̄` (or a BP rounding).
    Match,
    /// Step 4: objective / bound evaluation.
    ObjectiveEval,
    /// Step 5: Lagrange multiplier update.
    UpdateU,
    // -- BP --
    /// Step 1: `F = bound₀^β (βS + S⁽ᵏ⁾ᵀ)`.
    ComputeF,
    /// Step 2: `d = αw + Fe`.
    ComputeD,
    /// Step 3: the two othermax sweeps.
    OtherMax,
    /// Step 4: `S⁽ᵏ⁾ = diag(y+z−d) S − F`.
    UpdateS,
    /// Step 5: the `γᵏ` damping interpolation.
    Damping,
}

impl Step {
    /// All steps, for iteration in reports.
    pub const ALL: [Step; 10] = [
        Step::RowMatch,
        Step::Daxpy,
        Step::Match,
        Step::ObjectiveEval,
        Step::UpdateU,
        Step::ComputeF,
        Step::ComputeD,
        Step::OtherMax,
        Step::UpdateS,
        Step::Damping,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Step::RowMatch => "row-match",
            Step::Daxpy => "daxpy",
            Step::Match => "match",
            Step::ObjectiveEval => "objective",
            Step::UpdateU => "update-u",
            Step::ComputeF => "compute-f",
            Step::ComputeD => "compute-d",
            Step::OtherMax => "othermax",
            Step::UpdateS => "update-s",
            Step::Damping => "damping",
        }
    }

    fn index(&self) -> usize {
        Self::ALL.iter().position(|s| s == self).unwrap()
    }
}

/// Accumulated wall-clock per step.
#[derive(Clone, Debug, Default)]
pub struct StepTimers {
    acc: [Duration; 10],
}

impl StepTimers {
    /// Fresh zeroed timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure, attributing its wall-clock to `step`.
    pub fn time<T>(&mut self, step: Step, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.acc[step.index()] += start.elapsed();
        out
    }

    /// Add an externally measured duration to a step.
    pub fn add(&mut self, step: Step, d: Duration) {
        self.acc[step.index()] += d;
    }

    /// Accumulated time of one step.
    pub fn get(&self, step: Step) -> Duration {
        self.acc[step.index()]
    }

    /// Total across all steps.
    pub fn total(&self) -> Duration {
        self.acc.iter().sum()
    }

    /// `(step-name, seconds, share-of-total)` rows for non-zero steps,
    /// ready for the Figure 6/7 breakdown tables.
    pub fn report(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total().as_secs_f64();
        Step::ALL
            .iter()
            .filter(|s| !self.get(**s).is_zero())
            .map(|s| {
                let secs = self.get(*s).as_secs_f64();
                (s.name(), secs, if total > 0.0 { secs / total } else { 0.0 })
            })
            .collect()
    }

    /// Merge another timer set into this one.
    pub fn merge(&mut self, other: &StepTimers) {
        for (a, b) in self.acc.iter_mut().zip(other.acc.iter()) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates() {
        let mut t = StepTimers::new();
        let v = t.time(Step::Daxpy, || 21 * 2);
        assert_eq!(v, 42);
        assert!(t.get(Step::Daxpy) > Duration::ZERO);
        assert_eq!(t.get(Step::Match), Duration::ZERO);
    }

    #[test]
    fn report_shares_sum_to_one() {
        let mut t = StepTimers::new();
        t.add(Step::RowMatch, Duration::from_millis(30));
        t.add(Step::Match, Duration::from_millis(70));
        let rep = t.report();
        assert_eq!(rep.len(), 2);
        let share_sum: f64 = rep.iter().map(|r| r.2).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut t1 = StepTimers::new();
        t1.add(Step::OtherMax, Duration::from_millis(5));
        let mut t2 = StepTimers::new();
        t2.add(Step::OtherMax, Duration::from_millis(7));
        t1.merge(&t2);
        assert_eq!(t1.get(Step::OtherMax), Duration::from_millis(12));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Step::RowMatch.name(), "row-match");
        assert_eq!(Step::Damping.name(), "damping");
        assert_eq!(Step::ALL.len(), 10);
    }
}
