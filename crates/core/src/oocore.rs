//! Out-of-core belief propagation: align instances whose squares
//! matrix — and whose `nnz(S)`-sized iterate state — does not fit in
//! RAM.
//!
//! The in-core [`BpEngine`](crate::bp::BpEngine) keeps three
//! `nnz`-sized arrays resident (`S⁽ᵏ⁾`, its previous iterate, and the
//! scratch `F`) and gathers the transpose through the value
//! permutation — a random access per stored entry. Neither survives
//! contact with a memory budget: the arrays must spill, and a random
//! gather over a spilled array is a page fault per entry.
//!
//! The out-of-core path removes both obstacles with one
//! reformulation: alongside `sk` it maintains the *transpose
//! companion* `skt[idx] = sk[perm[idx]]` as an explicit second array.
//! Because the transpose permutation of a structurally symmetric CSR
//! is an involution (`perm ∘ perm = id`), both arrays can be advanced
//! with **strictly sequential** sweeps over the pattern:
//!
//! * `d[r] = α·w[r] + Σ_{idx ∈ row r} bound₀^β(β + skt_prev[idx])` —
//!   the fused F/d pass reads `skt_prev` in storage order;
//! * `sk[idx] = γ·(scale[row] − f(idx)) + (1−γ)·sk_prev[idx]` and
//!   `skt[idx] = γ·(scale[colidx[idx]] − fᵗ(idx)) + (1−γ)·skt_prev[idx]`
//!   with `f(idx) = bound₀^β(β + skt_prev[idx])`,
//!   `fᵗ(idx) = bound₀^β(β + sk_prev[idx])` — the update+damping pass
//!   reads and writes all four `nnz` streams in storage order, with
//!   only the `m`-sized `scale` vector accessed randomly.
//!
//! Every f64 operation consumes bit-identical operands in the same
//! order as the in-core kernels, so the out-of-core run is
//! **bit-identical** to the in-core run at every thread count — the
//! `oocore` integration tests pin this.
//!
//! The four `nnz` streams live in unlinked memory-mapped scratch
//! files ([`ScratchF64`]); the pattern is served by a mapped
//! [`CsrView`]. Sweeps process one *superblock* of rows at a time
//! (sized from the resident budget) and release the pages behind them
//! (`msync` + `MADV_DONTNEED`), so peak RSS stays near the `m`-sized
//! baseline plus one superblock window regardless of `nnz`.

use crate::bp::BpEngine;
use crate::config::AlignConfig;
use crate::problem::NetAlignProblem;
use crate::result::AlignmentResult;
use crate::rowspans::RowSpans;
use crate::squares::SquaresMatrix;
use netalign_graph::mmap::ScratchF64;
use netalign_graph::nacs::NacsError;
use netalign_graph::{BipartiteGraph, Graph};
use std::fmt;
use std::ops::Range;
use std::path::PathBuf;

/// Options for the out-of-core alignment path.
#[derive(Clone, Debug)]
pub struct OocOptions {
    /// Directory for the NACS squares file and the iterate scratch
    /// files. Must be on a filesystem with room for
    /// `~5 × 8 × nnz(S)` bytes.
    pub scratch_dir: PathBuf,
    /// Resident-set budget in bytes. `None` = stream through mapped
    /// storage without constraining the superblock window.
    pub max_resident_bytes: Option<u64>,
    /// Override the derived superblock size (stored entries per sweep
    /// step). For tests and tuning; `None` = derive from the budget.
    pub superblock_entries: Option<usize>,
}

impl OocOptions {
    /// Options with no resident budget (mapped storage, full-width
    /// sweeps).
    pub fn new(scratch_dir: impl Into<PathBuf>) -> OocOptions {
        OocOptions {
            scratch_dir: scratch_dir.into(),
            max_resident_bytes: None,
            superblock_entries: None,
        }
    }

    /// Set the resident budget in mebibytes.
    pub fn with_budget_mb(mut self, mb: u64) -> OocOptions {
        self.max_resident_bytes = Some(mb << 20);
        self
    }

    /// Force a specific superblock size (stored entries per sweep).
    pub fn with_superblock_entries(mut self, entries: usize) -> OocOptions {
        self.superblock_entries = Some(entries);
        self
    }
}

/// Failures specific to the out-of-core path.
#[derive(Debug)]
pub enum OocError {
    /// Scratch-file or mapping I/O failed.
    Io(std::io::Error),
    /// Writing or reopening the NACS squares file failed.
    Nacs(NacsError),
    /// The budget cannot cover even the `m`-sized working set plus a
    /// minimal superblock window.
    BudgetTooSmall {
        /// The budget that was requested.
        budget_bytes: u64,
        /// The estimated unavoidable resident baseline.
        baseline_bytes: u64,
    },
    /// A config knob the out-of-core engine does not support.
    Unsupported(&'static str),
}

impl fmt::Display for OocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OocError::Io(e) => write!(f, "out-of-core I/O error: {e}"),
            OocError::Nacs(e) => write!(f, "squares file error: {e}"),
            OocError::BudgetTooSmall {
                budget_bytes,
                baseline_bytes,
            } => write!(
                f,
                "resident budget {} KiB is below the {} KiB working-set \
                 baseline for this instance",
                budget_bytes >> 10,
                baseline_bytes >> 10
            ),
            OocError::Unsupported(what) => {
                write!(f, "unsupported in out-of-core mode: {what}")
            }
        }
    }
}

impl std::error::Error for OocError {}

impl From<std::io::Error> for OocError {
    fn from(e: std::io::Error) -> OocError {
        OocError::Io(e)
    }
}

impl From<NacsError> for OocError {
    fn from(e: NacsError) -> OocError {
        OocError::Nacs(e)
    }
}

/// Estimated unavoidable resident bytes of a BP run: the `m`-sized
/// engine vectors (iterates, othermax scratch, staging buffers,
/// matcher engines, `L` itself) plus a fixed allowance for the
/// binary, thread stacks and allocator slack. Deliberately
/// conservative — the budget gate should fail loudly, not thrash.
pub fn resident_baseline_bytes(m: usize, na: usize, nb: usize) -> u64 {
    (m as u64) * 224 + ((na + nb) as u64) * 64 + (96 << 20)
}

/// Bytes of resident window each stored entry of `S` costs during the
/// widest sweep (four f64 streams + the column index), with slack for
/// page-granularity rounding.
const BYTES_PER_ENTRY: u64 = 48;

/// Smallest superblock worth scheduling (entries): below this the
/// per-superblock `msync`/`madvise` calls dominate.
const MIN_SUPERBLOCK_ENTRIES: usize = 1 << 16;

/// How the budget splits into sweep windows and build buffers.
#[derive(Clone, Copy, Debug)]
pub struct OocPlan {
    /// Target stored entries per sweep superblock.
    pub superblock_entries: usize,
    /// Spill-buffer bytes for the streaming squares build.
    pub spill_buffer_bytes: usize,
    /// The baseline estimate the plan was derived from.
    pub baseline_bytes: u64,
}

/// Derive the sweep/build plan from the instance shape and budget.
/// Fails with [`OocError::BudgetTooSmall`] when the budget cannot
/// cover the baseline plus a minimal window.
pub fn plan_for(m: usize, na: usize, nb: usize, opts: &OocOptions) -> Result<OocPlan, OocError> {
    let baseline = resident_baseline_bytes(m, na, nb);
    let window = match opts.max_resident_bytes {
        None => u64::MAX,
        Some(budget) => {
            let floor = baseline + (BYTES_PER_ENTRY * MIN_SUPERBLOCK_ENTRIES as u64);
            if budget < floor {
                return Err(OocError::BudgetTooSmall {
                    budget_bytes: budget,
                    baseline_bytes: floor,
                });
            }
            budget - baseline
        }
    };
    let superblock_entries = usize::try_from(window / BYTES_PER_ENTRY)
        .unwrap_or(usize::MAX)
        .max(MIN_SUPERBLOCK_ENTRIES);
    let spill_buffer_bytes = usize::try_from((window / 2).min(256 << 20))
        .unwrap_or(256 << 20)
        .max(1 << 20);
    Ok(OocPlan {
        superblock_entries,
        spill_buffer_bytes,
        baseline_bytes: baseline,
    })
}

/// One contiguous span of rows (and their stored entries) processed
/// per sweep step, with the chunk boundaries for row-parallel work
/// inside it (relative to the superblock start, per
/// [`rayon::par_uneven_chunks_mut`]).
#[derive(Clone, Debug)]
pub(crate) struct Superblock {
    pub(crate) rows: Range<usize>,
    pub(crate) entries: Range<usize>,
    pub(crate) rel_row_bounds: Vec<usize>,
    pub(crate) rel_entry_bounds: Vec<usize>,
}

/// The out-of-core additions to a [`BpEngine`]: the four spilled
/// `nnz` streams, the `m`-sized row-scale vector, and the superblock
/// schedule.
pub(crate) struct OocState {
    /// Current damped `S⁽ᵏ⁾` values (ping).
    pub(crate) sk: ScratchF64,
    /// Previous damped `S⁽ᵏ⁻¹⁾` values (pong).
    pub(crate) sk_prev: ScratchF64,
    /// Transpose companion of `sk`: `skt[idx] = sk[perm[idx]]`.
    pub(crate) skt: ScratchF64,
    /// Transpose companion of `sk_prev`.
    pub(crate) skt_prev: ScratchF64,
    /// Per-row `y[e] + z[e] − d[e]`, recomputed each iteration.
    pub(crate) scale: Vec<f64>,
    /// Sweep schedule: superblocks aligned to span-group boundaries.
    pub(crate) superblocks: Vec<Superblock>,
}

impl OocState {
    /// Allocate the scratch streams in `opts.scratch_dir` and derive
    /// the superblock schedule from the span decomposition.
    pub(crate) fn new(
        p: &NetAlignProblem,
        spans: &RowSpans,
        opts: &OocOptions,
    ) -> Result<OocState, OocError> {
        let m = p.l.num_edges();
        let nnz = p.s.nnz();
        let plan = plan_for(m, p.l.num_left(), p.l.num_right(), opts)?;
        let dir = &opts.scratch_dir;
        std::fs::create_dir_all(dir)?;
        Ok(OocState {
            sk: ScratchF64::zeroed_in(dir, "bp-sk-a", nnz)?,
            sk_prev: ScratchF64::zeroed_in(dir, "bp-sk-b", nnz)?,
            skt: ScratchF64::zeroed_in(dir, "bp-skt-a", nnz)?,
            skt_prev: ScratchF64::zeroed_in(dir, "bp-skt-b", nnz)?,
            scale: vec![0.0; m],
            superblocks: superblocks_from_spans(
                spans,
                opts.superblock_entries.unwrap_or(plan.superblock_entries),
            ),
        })
    }

    /// Swap the ping/pong roles after a finite iteration.
    pub(crate) fn advance(&mut self) {
        std::mem::swap(&mut self.sk, &mut self.sk_prev);
        std::mem::swap(&mut self.skt, &mut self.skt_prev);
    }
}

/// Merge consecutive span groups into superblocks of roughly
/// `target` entries each, recording the intra-superblock chunk
/// bounds. A single group larger than `target` becomes its own
/// superblock (rows are never split).
pub(crate) fn superblocks_from_spans(spans: &RowSpans, target: usize) -> Vec<Superblock> {
    let row_bounds = spans.row_bounds();
    let entry_bounds = spans.entry_bounds();
    let groups = spans.num_groups();
    let mut out = Vec::new();
    let mut g0 = 0;
    while g0 < groups {
        let mut g1 = g0 + 1;
        while g1 < groups && entry_bounds[g1 + 1] - entry_bounds[g0] <= target {
            g1 += 1;
        }
        out.push(Superblock {
            rows: row_bounds[g0]..row_bounds[g1],
            entries: entry_bounds[g0]..entry_bounds[g1],
            rel_row_bounds: row_bounds[g0..=g1]
                .iter()
                .map(|&r| r - row_bounds[g0])
                .collect(),
            rel_entry_bounds: entry_bounds[g0..=g1]
                .iter()
                .map(|&e| e - entry_bounds[g0])
                .collect(),
        });
        g0 = g1;
    }
    out
}

/// Run belief propagation out-of-core on a problem whose squares
/// matrix is memory-mapped ([`SquaresMatrix::is_mapped`]).
///
/// Bit-identical to [`belief_propagation`](crate::bp::belief_propagation)
/// on the equivalent in-core problem, at every thread count.
pub fn belief_propagation_ooc(
    problem: &NetAlignProblem,
    config: &AlignConfig,
    opts: &OocOptions,
) -> Result<AlignmentResult, OocError> {
    let mut engine = BpEngine::new_ooc(problem, config, opts)?;
    for _ in 0..config.iterations {
        engine.step();
        if engine.rounding_due() {
            engine.round_pending();
        }
        engine.end_iteration();
    }
    Ok(engine.finish())
}

/// End-to-end out-of-core alignment: build the squares matrix by
/// streaming (spilling row blocks to `opts.scratch_dir`), reopen it
/// memory-mapped, and run [`belief_propagation_ooc`]. The NACS file
/// (`s.nacs`) is left in the scratch directory for inspection.
pub fn align_streaming(
    a: Graph,
    b: Graph,
    l: BipartiteGraph,
    config: &AlignConfig,
    opts: &OocOptions,
) -> Result<AlignmentResult, OocError> {
    let plan = plan_for(l.num_edges(), l.num_left(), l.num_right(), opts)?;
    std::fs::create_dir_all(&opts.scratch_dir)?;
    let nacs_path = opts.scratch_dir.join("s.nacs");
    let s = SquaresMatrix::build_streaming(&a, &b, &l, &nacs_path, plan.spill_buffer_bytes)?;
    let problem = NetAlignProblem::from_parts(a, b, l, s);
    belief_propagation_ooc(&problem, config, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rejects_budget_below_baseline() {
        let opts = OocOptions::new("/tmp/x").with_budget_mb(1);
        match plan_for(1000, 100, 100, &opts) {
            Err(OocError::BudgetTooSmall {
                budget_bytes,
                baseline_bytes,
            }) => {
                assert_eq!(budget_bytes, 1 << 20);
                assert!(baseline_bytes > budget_bytes);
            }
            other => panic!("expected BudgetTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn plan_without_budget_is_unbounded() {
        let opts = OocOptions::new("/tmp/x");
        let plan = plan_for(1000, 100, 100, &opts).unwrap();
        assert!(plan.superblock_entries >= usize::MAX / 64);
        assert!(plan.spill_buffer_bytes >= 1 << 20);
    }

    #[test]
    fn plan_scales_window_with_budget() {
        let opts = OocOptions::new("/tmp/x").with_budget_mb(512);
        let small = plan_for(1000, 100, 100, &opts).unwrap();
        let opts = OocOptions::new("/tmp/x").with_budget_mb(1024);
        let large = plan_for(1000, 100, 100, &opts).unwrap();
        assert!(large.superblock_entries > small.superblock_entries);
    }

    #[test]
    fn superblocks_cover_all_rows_and_entries() {
        // rowptr with skewed rows: 10 rows, entries 0,5,5,25,25,...
        let rowptr = vec![0usize, 5, 10, 35, 40, 45, 50, 75, 80, 85, 90];
        let spans = RowSpans::build(&rowptr, 5);
        let sbs = superblocks_from_spans(&spans, 30);
        assert!(!sbs.is_empty());
        assert_eq!(sbs[0].rows.start, 0);
        assert_eq!(sbs.last().unwrap().rows.end, 10);
        assert_eq!(sbs.last().unwrap().entries.end, 90);
        for w in sbs.windows(2) {
            assert_eq!(w[0].rows.end, w[1].rows.start);
            assert_eq!(w[0].entries.end, w[1].entries.start);
        }
        for sb in &sbs {
            assert_eq!(sb.rel_row_bounds[0], 0);
            assert_eq!(
                *sb.rel_row_bounds.last().unwrap(),
                sb.rows.end - sb.rows.start
            );
            assert_eq!(sb.rel_entry_bounds[0], 0);
            assert_eq!(
                *sb.rel_entry_bounds.last().unwrap(),
                sb.entries.end - sb.entries.start
            );
        }
    }
}
