//! Run configuration shared by the BP and MR aligners.

use netalign_matching::{MatcherKind, RoundingMatcher};
use std::time::Duration;

/// How BP's messages are damped toward the previous iterate (the paper
/// describes only the `γᵏ` variant and points to Bayati et al. [13]
/// for the others; both extra variants from that paper are provided).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DampingKind {
    /// `m⁽ᵏ⁾ ← γᵏ·m⁽ᵏ⁾ + (1−γᵏ)·m⁽ᵏ⁻¹⁾` — the weight of the fresh
    /// message decays geometrically, freezing the iteration (the
    /// variant in the paper's Listing 2).
    #[default]
    Power,
    /// `m⁽ᵏ⁾ ← γ·m⁽ᵏ⁾ + (1−γ)·m⁽ᵏ⁻¹⁾` — constant interpolation.
    Constant,
    /// No damping: raw message updates (may oscillate; the rounding
    /// step still tracks the best iterate).
    None,
}

impl DampingKind {
    /// Interpolation weight of the *fresh* message at iteration `k`
    /// (1-based) for damping base `gamma`.
    pub fn fresh_weight(&self, gamma: f64, k: usize) -> f64 {
        match self {
            DampingKind::Power => gamma.powi(k as i32),
            DampingKind::Constant => gamma,
            DampingKind::None => 1.0,
        }
    }
}

/// When to write engine-state snapshots during a run (see
/// [`crate::checkpoint`]). Both triggers are independent; either firing
/// causes a checkpoint at the end of the current iteration. The zero
/// value disables a trigger, and [`CheckpointPolicy::disabled`] (the
/// default) disables checkpointing entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint every `k` completed iterations (0 = off).
    pub every_k_iters: usize,
    /// Checkpoint when this many seconds elapsed since the last one
    /// (0 = off). Wall-clock cadence only affects *when* snapshots are
    /// taken, never their contents, so resumed runs stay bit-identical.
    pub every_secs: f64,
}

impl CheckpointPolicy {
    /// No checkpointing.
    pub const fn disabled() -> Self {
        CheckpointPolicy {
            every_k_iters: 0,
            every_secs: 0.0,
        }
    }

    /// True when at least one trigger is configured.
    pub fn is_enabled(&self) -> bool {
        self.every_k_iters > 0 || self.every_secs > 0.0
    }

    /// Should a checkpoint be written, given the iterations and seconds
    /// elapsed since the previous one?
    pub fn due(&self, iters_since: usize, secs_since: f64) -> bool {
        (self.every_k_iters > 0 && iters_since >= self.every_k_iters)
            || (self.every_secs > 0.0 && secs_since >= self.every_secs)
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Wall-clock budget of a harness-driven run (see [`crate::harness`]).
///
/// Both aligners are *anytime* algorithms — every rounded iterate is a
/// feasible solution and the engines track the best one seen — so a
/// budgeted run never fails outright: at expiry the harness returns the
/// incumbent with a `DeadlineBestSoFar` completion. The budget also
/// feeds the graceful-degradation ladder: an EWMA of per-iteration cost
/// is compared against the remaining time, and the harness sheds
/// rounding work (larger BP batches, forced warm Suitor rounding)
/// *before* the deadline instead of dying at it.
///
/// Wall-clock pressure only ever decides *when* the run stops or
/// degrades, never what any completed iteration computes, so two runs
/// stopped at the same iteration with the same ladder state are
/// bit-identical at every pool size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeBudget {
    /// Total wall-clock budget for the run (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// Soft per-iteration budget: an iteration exceeding it escalates
    /// the degradation ladder one rung even while the total budget
    /// still looks comfortable (`None` = off). Never terminates a run
    /// by itself.
    pub soft_iteration: Option<Duration>,
}

impl TimeBudget {
    /// No time limits (the default).
    pub const fn unbounded() -> Self {
        TimeBudget {
            deadline: None,
            soft_iteration: None,
        }
    }

    /// Budget with a total deadline of `ms` milliseconds.
    pub fn from_deadline_ms(ms: u64) -> Self {
        TimeBudget {
            deadline: Some(Duration::from_millis(ms)),
            soft_iteration: None,
        }
    }

    /// True when any limit is configured.
    pub fn is_bounded(&self) -> bool {
        self.deadline.is_some() || self.soft_iteration.is_some()
    }
}

/// Parameters of an alignment run. Field meanings follow the paper:
/// `α`/`β` weight the two objective terms, `γ` is BP's damping base and
/// MR's subgradient step size, `mstep` is MR's stall window before the
/// step halves, and `batch` is BP's rounding batch size `r`.
#[derive(Clone, Copy, Debug)]
pub struct AlignConfig {
    /// Weight of the matching term `wᵀx`.
    pub alpha: f64,
    /// Weight of the overlap term `xᵀSx/2`.
    pub beta: f64,
    /// BP: damping base (`γ^k` interpolation). MR: initial step size.
    pub gamma: f64,
    /// Number of iterations.
    pub iterations: usize,
    /// MR only: halve `γ` when the upper bound has not improved for
    /// this many iterations.
    pub mstep: usize,
    /// BP only: rounding batch size `r` (`BP(batch=r)`); 1 rounds every
    /// iterate immediately.
    pub batch: usize,
    /// Matching algorithm used inside the rounding step.
    pub matcher: MatcherKind,
    /// BP only: damping variant (the paper uses [`DampingKind::Power`]).
    pub damping: DampingKind,
    /// MR only: enriched rounding (the `rtype = 2` option of the
    /// authors' released `netalignmr`): after matching `w̄`, re-match
    /// the overlap-aware weights `αw + β·S·x` and keep the better
    /// solution. One extra matching per iteration; substantially
    /// improves MR's primal solutions on noisy instances.
    pub enriched_rounding: bool,
    /// Perform one final *exact* matching on the best heuristic vector
    /// before returning, as the paper does at the end of §VII's setup.
    pub final_exact_round: bool,
    /// Record per-iteration history (objective, weight, overlap).
    pub record_history: bool,
    /// Record the parallel matcher's event counters into the result's
    /// [`crate::trace::RunTrace::matcher`] snapshot. Off by default:
    /// the enabled path adds relaxed atomic traffic inside the matcher;
    /// disabled it costs one predictable branch per event.
    pub trace_matcher: bool,
    /// Route the per-iteration rounding matchings through a
    /// preallocated [`netalign_matching::MatcherEngine`] of the given
    /// kind instead of the one-shot [`MatcherKind`] dispatch. `None`
    /// (the default) keeps the legacy path; `Some(RoundingMatcher::Ld)`
    /// computes the *same* matching as
    /// [`MatcherKind::ParallelLocalDominant`] bit-for-bit, without the
    /// per-call allocations. The final rounding in `finalize` still
    /// uses [`AlignConfig::matcher`].
    pub rounding: Option<RoundingMatcher>,
    /// Warm-start the rounding engine: seed each matcher call from the
    /// previous call's mate state and reprocess only vertices a weight
    /// change can affect. Requires [`AlignConfig::rounding`]; results
    /// stay bit-identical to cold runs at every pool size.
    pub warm_start: bool,
    /// Numerical guard rails: finite-check the iterate at the end of
    /// every iteration and, on a non-finite value, roll back to the
    /// last finite iterate and tighten the damping/step size (BP:
    /// `γ ← γ/2` on the damping base; MR: the same halving the paper's
    /// `mstep` machinery uses) instead of silently diverging. Costs one
    /// extra read pass plus one copy of the iterate per iteration; on
    /// by default because the `γᵏ` interpolation propagates any NaN to
    /// every later iterate. Recoveries are counted in
    /// [`netalign_trace::AlgoCounters::numeric_recoveries`].
    pub numeric_guards: bool,
    /// Checkpoint cadence; snapshots are only written when a run is
    /// driven through [`crate::harness`] with a checkpoint directory.
    pub checkpoint: CheckpointPolicy,
}

impl Default for AlignConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 2.0,
            gamma: 0.99,
            iterations: 100,
            mstep: 10,
            batch: 1,
            matcher: MatcherKind::Exact,
            damping: DampingKind::Power,
            enriched_rounding: false,
            final_exact_round: false,
            record_history: false,
            trace_matcher: false,
            rounding: None,
            warm_start: false,
            numeric_guards: true,
            checkpoint: CheckpointPolicy::disabled(),
        }
    }
}

impl AlignConfig {
    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(self.alpha >= 0.0, "alpha must be non-negative");
        assert!(self.beta >= 0.0, "beta must be non-negative");
        assert!(
            self.alpha > 0.0 || self.beta > 0.0,
            "at least one of alpha/beta must be positive"
        );
        assert!(
            self.gamma > 0.0 && self.gamma <= 1.0,
            "gamma must be in (0, 1], got {}",
            self.gamma
        );
        assert!(self.iterations > 0, "need at least one iteration");
        assert!(self.batch >= 1, "batch must be at least 1");
        assert!(self.mstep >= 1, "mstep must be at least 1");
        assert!(
            !self.warm_start || self.rounding.is_some(),
            "warm_start requires a rounding engine (set rounding)"
        );
        assert!(
            self.checkpoint.every_secs >= 0.0,
            "checkpoint.every_secs must be non-negative, got {}",
            self.checkpoint.every_secs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damping_fresh_weights() {
        assert_eq!(DampingKind::Power.fresh_weight(0.9, 2), 0.81);
        assert_eq!(DampingKind::Constant.fresh_weight(0.9, 50), 0.9);
        assert_eq!(DampingKind::None.fresh_weight(0.5, 3), 1.0);
    }

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = AlignConfig::default();
        c.validate();
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.beta, 2.0);
        assert_eq!(c.gamma, 0.99);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        AlignConfig {
            gamma: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn rejects_zero_batch() {
        AlignConfig {
            batch: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "warm_start")]
    fn rejects_warm_start_without_engine() {
        AlignConfig {
            warm_start: true,
            rounding: None,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn engine_config_is_valid() {
        AlignConfig {
            rounding: Some(RoundingMatcher::Suitor),
            warm_start: true,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_negative_alpha() {
        AlignConfig {
            alpha: -1.0,
            ..Default::default()
        }
        .validate();
    }
}
