//! Fault-tolerant run driver: the engine loops of
//! [`crate::bp::belief_propagation`] / [`crate::mr::matching_relaxation`]
//! wrapped with policy-driven checkpointing and resume.
//!
//! ```text
//! let harness = RunHarness::new().with_checkpoint_dir("ckpts");
//! let result = harness.run_bp(&problem, &config)?;   // writes snapshots
//! // ... process dies mid-run ...
//! let result = RunHarness::new()
//!     .with_resume_from("ckpts")                     // newest valid file
//!     .with_checkpoint_dir("ckpts")
//!     .run_bp(&problem, &config)?;                   // bit-identical tail
//! ```
//!
//! Because every kernel reduction is deterministic at every pool size,
//! a resumed run reproduces the uninterrupted run *exactly*: same
//! objective history, same matching, same bounds, same counters — only
//! wall-clock timings differ. The resilience test suite asserts this
//! bit-for-bit at pools {1, 2, 4, 8}.
//!
//! Resume semantics:
//!
//! * a **file** path must load cleanly — any validation failure is a
//!   hard [`CheckpointError`];
//! * a **directory** path is scanned newest-first and damaged or
//!   mismatched files are skipped, so a checkpoint corrupted in flight
//!   falls back to the previous valid snapshot; the error list becomes
//!   hard only when *no* file validates. An empty directory starts a
//!   fresh run (the kill may have predated the first snapshot).

use crate::bp::BpEngine;
use crate::checkpoint::{
    checkpoint_file_name, load_checkpoint, load_latest_checkpoint, prune_checkpoints,
    write_checkpoint, CheckpointError, CheckpointState, EngineKind,
};
use crate::config::{AlignConfig, CheckpointPolicy};
use crate::mr::MrEngine;
use crate::problem::NetAlignProblem;
use crate::result::AlignmentResult;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Checkpoint/resume wrapper around the BP and MR engine loops.
#[derive(Clone, Debug, Default)]
pub struct RunHarness {
    checkpoint_dir: Option<PathBuf>,
    resume_from: Option<PathBuf>,
    keep: usize,
}

impl RunHarness {
    /// Plain harness: no checkpoints, no resume (identical to calling
    /// the wrapper functions directly).
    pub fn new() -> Self {
        RunHarness {
            checkpoint_dir: None,
            resume_from: None,
            keep: 3,
        }
    }

    /// Write snapshots into `dir` (created on demand). The cadence
    /// comes from [`AlignConfig::checkpoint`]; when that policy is
    /// disabled, a directory implies checkpointing every iteration.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from `path`: either a specific checkpoint file (must
    /// validate — hard error otherwise) or a directory (newest valid
    /// snapshot wins; empty directory starts fresh).
    pub fn with_resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// How many snapshots to retain per engine (older ones are pruned
    /// after each write; default 3, so one corrupted write still leaves
    /// validated fallbacks).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// The effective cadence: an explicit policy wins; a checkpoint
    /// directory with the policy disabled means every iteration.
    fn effective_policy(&self, config: &AlignConfig) -> CheckpointPolicy {
        if config.checkpoint.is_enabled() {
            config.checkpoint
        } else if self.checkpoint_dir.is_some() {
            CheckpointPolicy {
                every_k_iters: 1,
                every_secs: 0.0,
            }
        } else {
            CheckpointPolicy::disabled()
        }
    }

    /// Resolve the configured resume source into a validated state.
    fn resolve_resume(
        &self,
        engine: EngineKind,
        p: &NetAlignProblem,
        config: &AlignConfig,
    ) -> Result<Option<CheckpointState>, CheckpointError> {
        let Some(src) = &self.resume_from else {
            return Ok(None);
        };
        if src.is_dir() {
            match load_latest_checkpoint(src, engine, p, config) {
                Ok(Some((_, state))) => Ok(Some(state)),
                Ok(None) => Ok(None),
                // Every candidate failed: surface the newest file's
                // error (the one a user most likely cares about).
                Err(mut attempts) => Err(attempts.swap_remove(0).1),
            }
        } else {
            load_checkpoint(src, engine, p, config).map(Some)
        }
    }

    fn write_snapshot(
        dir: &Path,
        engine: EngineKind,
        k: usize,
        p: &NetAlignProblem,
        config: &AlignConfig,
        state: &CheckpointState,
        keep: usize,
    ) -> Result<(), CheckpointError> {
        let path = dir.join(checkpoint_file_name(engine, k));
        write_checkpoint(&path, p, config, state)?;
        prune_checkpoints(dir, engine, keep);
        Ok(())
    }

    /// Run belief propagation under this harness.
    pub fn run_bp(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
    ) -> Result<AlignmentResult, CheckpointError> {
        let mut engine = BpEngine::new(p, config);
        if let Some(CheckpointState::Bp(state)) = self.resolve_resume(EngineKind::Bp, p, config)? {
            engine.restore_state(state);
        }
        let policy = self.effective_policy(config);
        let mut iters_since = 0usize;
        let mut last_write = Instant::now();
        while engine.iteration() < config.iterations {
            engine.step();
            if engine.rounding_due() {
                engine.round_pending();
            }
            engine.end_iteration();
            iters_since += 1;
            if let Some(dir) = &self.checkpoint_dir {
                if policy.due(iters_since, last_write.elapsed().as_secs_f64()) {
                    let state = CheckpointState::Bp(engine.checkpoint_state());
                    Self::write_snapshot(
                        dir,
                        EngineKind::Bp,
                        engine.iteration(),
                        p,
                        config,
                        &state,
                        self.keep,
                    )?;
                    iters_since = 0;
                    last_write = Instant::now();
                }
            }
        }
        Ok(engine.finish())
    }

    /// Run the matching relaxation under this harness.
    pub fn run_mr(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
    ) -> Result<AlignmentResult, CheckpointError> {
        let mut engine = MrEngine::new(p, config);
        if let Some(CheckpointState::Mr(state)) = self.resolve_resume(EngineKind::Mr, p, config)? {
            engine.restore_state(state);
        }
        let policy = self.effective_policy(config);
        let mut iters_since = 0usize;
        let mut last_write = Instant::now();
        while engine.iteration() < config.iterations {
            engine.step();
            engine.end_iteration();
            iters_since += 1;
            if let Some(dir) = &self.checkpoint_dir {
                if policy.due(iters_since, last_write.elapsed().as_secs_f64()) {
                    let state = CheckpointState::Mr(engine.checkpoint_state());
                    Self::write_snapshot(
                        dir,
                        EngineKind::Mr,
                        engine.iteration(),
                        p,
                        config,
                        &state,
                        self.keep,
                    )?;
                    iters_since = 0;
                    last_write = Instant::now();
                }
            }
        }
        Ok(engine.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::list_checkpoints;
    use crate::trace::faults;
    use netalign_graph::{BipartiteGraph, Graph};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "netalign-harness-test-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn plain_harness_matches_wrapper() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 12,
            record_history: true,
            ..Default::default()
        };
        let direct = crate::bp::belief_propagation(&p, &cfg);
        let harnessed = RunHarness::new().run_bp(&p, &cfg).expect("no checkpoints");
        assert_eq!(direct.objective, harnessed.objective);
        assert_eq!(direct.matching, harnessed.matching);
    }

    #[test]
    fn checkpoints_are_written_and_pruned() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 9,
            ..Default::default()
        };
        let dir = scratch_dir("prune");
        RunHarness::new()
            .with_checkpoint_dir(&dir)
            .with_keep(2)
            .run_mr(&p, &cfg)
            .expect("run");
        let files = list_checkpoints(&dir, EngineKind::Mr);
        assert_eq!(files.len(), 2, "keep=2 must retain exactly 2 snapshots");
        assert!(files[0].ends_with(checkpoint_file_name(EngineKind::Mr, 9)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_directory_reproduces_run() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 14,
            batch: 3,
            record_history: true,
            ..Default::default()
        };
        let full = RunHarness::new().run_bp(&p, &cfg).expect("full run");

        // First leg: stop after 6 iterations, leaving a checkpoint.
        let dir = scratch_dir("resume");
        let short = AlignConfig {
            iterations: 6,
            ..cfg
        };
        RunHarness::new()
            .with_checkpoint_dir(&dir)
            .run_bp(&p, &short)
            .expect("first leg");

        // Second leg: a fingerprint-compatible resume needs the same
        // iteration budget, so the first leg's checkpoints are written
        // under the full config too.
        let resumed = RunHarness::new()
            .with_resume_from(&dir)
            .run_bp(&p, &cfg)
            .err();
        // iterations differs (6 vs 14) -> ConfigMismatch is correct.
        assert!(
            matches!(resumed, Some(CheckpointError::ConfigMismatch { .. })),
            "config fingerprint must protect against budget drift, got {resumed:?}"
        );
        std::fs::remove_dir_all(&dir).ok();

        // Proper kill-and-resume: same config throughout, kill via a
        // fault at iteration 7.
        let dir = scratch_dir("resume2");
        faults::install(faults::FaultPlan {
            panic: Some(faults::StepTrigger::new("bp.step", 7)),
            ..Default::default()
        });
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            RunHarness::new()
                .with_checkpoint_dir(&dir)
                .run_bp(&p, &cfg)
                .expect("write leg")
        }));
        faults::clear();
        assert!(killed.is_err(), "the injected panic must surface");

        let resumed = RunHarness::new()
            .with_resume_from(&dir)
            .run_bp(&p, &cfg)
            .expect("resume leg");
        assert_eq!(full.objective, resumed.objective);
        assert_eq!(full.matching, resumed.matching);
        assert_eq!(full.best_iteration, resumed.best_iteration);
        assert_eq!(full.history.len(), resumed.history.len());
        for (a, b) in full.history.iter().zip(&resumed.history) {
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_missing_file_is_hard_error() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let err = RunHarness::new()
            .with_resume_from("/definitely/not/a/checkpoint.bin")
            .run_bp(&p, &cfg)
            .err();
        assert!(matches!(err, Some(CheckpointError::Io { .. })));
    }

    #[test]
    fn resume_from_empty_directory_starts_fresh() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 8,
            ..Default::default()
        };
        let dir = scratch_dir("empty");
        let direct = crate::bp::belief_propagation(&p, &cfg);
        let fresh = RunHarness::new()
            .with_resume_from(&dir)
            .run_bp(&p, &cfg)
            .expect("fresh start");
        assert_eq!(direct.objective, fresh.objective);
        std::fs::remove_dir_all(&dir).ok();
    }
}
