//! Fault-tolerant, deadline-aware run driver: the engine loops of
//! [`crate::bp::belief_propagation`] / [`crate::mr::matching_relaxation`]
//! wrapped with policy-driven checkpointing, resume, cooperative
//! cancellation, and a graceful-degradation ladder.
//!
//! ```text
//! let harness = RunHarness::new().with_checkpoint_dir("ckpts");
//! let outcome = harness.run_bp(&problem, &config)?;  // writes snapshots
//! // ... process dies mid-run ...
//! let outcome = RunHarness::new()
//!     .with_resume_from("ckpts")                     // newest valid file
//!     .with_checkpoint_dir("ckpts")
//!     .run_bp(&problem, &config)?;                   // bit-identical tail
//! ```
//!
//! Because every kernel reduction is deterministic at every pool size,
//! a resumed run reproduces the uninterrupted run *exactly*: same
//! objective history, same matching, same bounds, same counters — only
//! wall-clock timings differ. The resilience test suite asserts this
//! bit-for-bit at pools {1, 2, 4, 8}.
//!
//! Resume semantics:
//!
//! * a **file** path must load cleanly — any validation failure is a
//!   hard [`CheckpointError`];
//! * a **directory** path is scanned newest-first and damaged or
//!   mismatched files are skipped, so a checkpoint corrupted in flight
//!   falls back to the previous valid snapshot; the error list becomes
//!   hard only when *no* file validates. An empty directory starts a
//!   fresh run (the kill may have predated the first snapshot).
//!
//! # Deadlines and anytime execution
//!
//! Both aligners are anytime algorithms: every rounded iterate is a
//! feasible solution and the engines track the best one seen. A
//! [`TimeBudget`] turns that property into a service guarantee — a
//! budgeted run *always* returns an [`AlignOutcome`] whose
//! [`Completion`] says how it ended:
//!
//! * `Completed` — the full iteration budget ran;
//! * `DeadlineBestSoFar` — the time budget expired (or an expiry was
//!   predicted within one more iteration); the result is the incumbent
//!   best-so-far matching, fully assembled, never a half-written state;
//! * `Cancelled` — the run's [`CancelToken`] was cancelled (manual
//!   request or watchdog-detected stall).
//!
//! Cancellation is cooperative at two granularities: the vendored
//! runtime probes the run's token once per *chunk claim* (a cancelled
//! parallel region unwinds within one chunk of work per participant,
//! with the pool reusable afterward), and the harness probes at
//! *iteration boundaries*, where stopping is deterministic.
//!
//! Under pressure — an EWMA of per-iteration cost approaching the
//! remaining budget — the harness climbs a degradation ladder *before*
//! the deadline: (1) BP escalates the rounding batch (`BP(batch=r)`),
//! (2) both engines force warm-started Suitor rounding, (3) the run
//! cuts a final checkpoint (same atomic tmp+rename path as mid-run
//! snapshots) and returns best-so-far. The ladder sheds only *rounding
//! frequency and matcher cost*; completed iterations are never
//! approximated retroactively, so a run stopped at iteration `k` with a
//! given ladder state is bit-identical at every pool size. The
//! deterministic deadline tests pin the stop with
//! `NETALIGN_FAULT_DEADLINE=<iter>` instead of a wall clock.

use crate::bp::BpEngine;
use crate::checkpoint::{
    checkpoint_file_name, load_checkpoint, load_latest_checkpoint, prune_checkpoints,
    write_checkpoint, CheckpointError, CheckpointState, EngineKind,
};
use crate::config::{AlignConfig, CheckpointPolicy, TimeBudget};
use crate::delta::{self, BpTrajectory, DeltaBase, DeltaError, DeltaStats, ProblemDelta};
use crate::mr::MrEngine;
use crate::problem::NetAlignProblem;
use crate::result::AlignmentResult;
use crate::trace::cancel::{self, CancelReason, CancelToken, Watchdog};
use crate::trace::faults;
use netalign_matching::MatcherEngine;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How a harness-driven run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// The configured iteration budget ran to the end.
    Completed,
    /// The time budget expired (or its expiry was predicted within one
    /// more iteration); the result is the best-so-far incumbent.
    DeadlineBestSoFar,
    /// The run's cancel token fired (manual request or watchdog stall);
    /// the result is the best-so-far incumbent.
    Cancelled,
}

impl Completion {
    /// Stable kebab-case label for JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            Completion::Completed => "completed",
            Completion::DeadlineBestSoFar => "deadline-best-so-far",
            Completion::Cancelled => "cancelled",
        }
    }
}

/// Result of a harness-driven run: the assembled alignment plus how the
/// run ended. The result is always fully assembled — best-so-far
/// matching, objective, history, counters — regardless of completion.
#[derive(Clone, Debug)]
pub struct AlignOutcome {
    /// The alignment (the incumbent best-so-far on early stops).
    pub result: AlignmentResult,
    /// How the run ended.
    pub completion: Completion,
    /// Aligner iterations fully completed before the stop.
    pub iterations_run: usize,
    /// Why the cancel token fired, when it did.
    pub cancel_reason: Option<CancelReason>,
    /// Highest degradation-ladder rung engaged (0 = none, 1 = batch
    /// escalation, 2 = forced cheap rounding, 3 = final cut).
    pub ladder_rung: u8,
    /// The deadline-cut checkpoint, when one was written.
    pub deadline_checkpoint: Option<PathBuf>,
}

impl AlignOutcome {
    /// Wrap a result produced outside the harness (a direct engine
    /// call) as a normally completed outcome, so callers can treat
    /// harnessed and direct runs uniformly.
    pub fn completed(result: AlignmentResult, iterations_run: usize) -> Self {
        AlignOutcome {
            result,
            completion: Completion::Completed,
            iterations_run,
            cancel_reason: None,
            ladder_rung: 0,
            deadline_checkpoint: None,
        }
    }
}

/// What the harness does when the time budget expires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeadlinePolicy {
    /// Return the best-so-far result (cutting a final checkpoint too
    /// when a checkpoint directory is configured). The default.
    #[default]
    BestSoFar,
    /// Like `BestSoFar`, but a checkpoint directory is expected — the
    /// run is meant to be resumed with a larger budget later.
    Checkpoint,
    /// Treat expiry as a failure: [`HarnessError::DeadlineExceeded`].
    Error,
}

/// Errors a harness run can surface.
#[derive(Debug)]
pub enum HarnessError {
    /// Checkpoint write/load failure.
    Checkpoint(CheckpointError),
    /// The time budget expired under [`DeadlinePolicy::Error`].
    DeadlineExceeded {
        /// Iterations fully completed before expiry.
        iterations_run: usize,
    },
    /// A delta record/replay failure (malformed delta, unrecordable
    /// config, or a base whose trajectory cannot be replayed).
    Delta(DeltaError),
}

impl From<CheckpointError> for HarnessError {
    fn from(e: CheckpointError) -> Self {
        HarnessError::Checkpoint(e)
    }
}

impl From<DeltaError> for HarnessError {
    fn from(e: DeltaError) -> Self {
        HarnessError::Delta(e)
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Checkpoint(e) => write!(f, "{e}"),
            HarnessError::DeadlineExceeded { iterations_run } => write!(
                f,
                "time budget expired after {iterations_run} iterations (deadline policy: error)"
            ),
            HarnessError::Delta(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Checkpoint(e) => Some(e),
            HarnessError::DeadlineExceeded { .. } => None,
            HarnessError::Delta(e) => Some(e),
        }
    }
}

/// Checkpoint/resume + deadline wrapper around the BP and MR engines.
#[derive(Clone, Debug, Default)]
pub struct RunHarness {
    checkpoint_dir: Option<PathBuf>,
    resume_from: Option<PathBuf>,
    keep: usize,
    budget: TimeBudget,
    on_deadline: DeadlinePolicy,
    watchdog_stall: Option<Duration>,
    cancel_token: Option<CancelToken>,
}

impl RunHarness {
    /// Plain harness: no checkpoints, no resume, no time budget
    /// (identical to calling the wrapper functions directly).
    pub fn new() -> Self {
        RunHarness {
            checkpoint_dir: None,
            resume_from: None,
            keep: 3,
            budget: TimeBudget::unbounded(),
            on_deadline: DeadlinePolicy::BestSoFar,
            watchdog_stall: None,
            cancel_token: None,
        }
    }

    /// Write snapshots into `dir` (created on demand). The cadence
    /// comes from [`AlignConfig::checkpoint`]; when that policy is
    /// disabled, a directory implies checkpointing every iteration.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from `path`: either a specific checkpoint file (must
    /// validate — hard error otherwise) or a directory (newest valid
    /// snapshot wins; empty directory starts fresh).
    pub fn with_resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// How many snapshots to retain per engine (older ones are pruned
    /// after each write; default 3, so one corrupted write still leaves
    /// validated fallbacks).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Bound the run by `budget` (see [`TimeBudget`]).
    pub fn with_time_budget(mut self, budget: TimeBudget) -> Self {
        self.budget = budget;
        self
    }

    /// What to do when the budget expires (default: best-so-far).
    pub fn with_on_deadline(mut self, policy: DeadlinePolicy) -> Self {
        self.on_deadline = policy;
        self
    }

    /// Arm a watchdog: when no heartbeat (chunk claim or iteration) is
    /// observed for `stall`, the run is cancelled cleanly with a
    /// `Watchdog` reason instead of hanging. Cooperative — a loop that
    /// never reaches a probe point can only be reported, not recovered.
    pub fn with_watchdog(mut self, stall: Duration) -> Self {
        self.watchdog_stall = Some(stall);
        self
    }

    /// Drive the run through an externally owned token, so a caller
    /// (service handler, signal hook, test) can cancel it mid-flight.
    /// Overrides the token the harness would otherwise build from
    /// [`TimeBudget::deadline`] — give the external token a deadline of
    /// its own if both are wanted.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel_token = Some(token);
        self
    }

    /// The effective cadence: an explicit policy wins; a checkpoint
    /// directory with the policy disabled means every iteration.
    fn effective_policy(&self, config: &AlignConfig) -> CheckpointPolicy {
        if config.checkpoint.is_enabled() {
            config.checkpoint
        } else if self.checkpoint_dir.is_some() {
            CheckpointPolicy {
                every_k_iters: 1,
                every_secs: 0.0,
            }
        } else {
            CheckpointPolicy::disabled()
        }
    }

    /// Resolve the configured resume source into a validated state.
    fn resolve_resume(
        &self,
        engine: EngineKind,
        p: &NetAlignProblem,
        config: &AlignConfig,
    ) -> Result<Option<CheckpointState>, CheckpointError> {
        let Some(src) = &self.resume_from else {
            return Ok(None);
        };
        if src.is_dir() {
            match load_latest_checkpoint(src, engine, p, config) {
                Ok(Some((_, state))) => Ok(Some(state)),
                Ok(None) => Ok(None),
                // Every candidate failed: surface the newest file's
                // error (the one a user most likely cares about).
                Err(mut attempts) => Err(attempts.swap_remove(0).1),
            }
        } else {
            load_checkpoint(src, engine, p, config).map(Some)
        }
    }

    fn write_snapshot(
        dir: &Path,
        engine: EngineKind,
        k: usize,
        p: &NetAlignProblem,
        config: &AlignConfig,
        state: &CheckpointState,
        keep: usize,
    ) -> Result<PathBuf, CheckpointError> {
        let path = dir.join(checkpoint_file_name(engine, k));
        write_checkpoint(&path, p, config, state)?;
        prune_checkpoints(dir, engine, keep);
        Ok(path)
    }

    /// Run belief propagation under this harness.
    pub fn run_bp(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
    ) -> Result<AlignOutcome, HarnessError> {
        self.run_bp_warm(p, config, Vec::new()).map(|(o, _)| o)
    }

    /// [`run_bp`](Self::run_bp) with rounding-engine recycling: `warm`
    /// engines previously released by a run on the same candidate graph
    /// are adopted — carrying their warm matcher memory into this run —
    /// and the (possibly fresh) rounding engines are handed back with
    /// the outcome for the next run. Engines that don't bind `p.l` are
    /// dropped in favour of fresh cold ones; a checkpoint resume
    /// invalidates adopted warm memory exactly as it does fresh (warm ≡
    /// cold, so results are bit-identical either way).
    pub fn run_bp_warm(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
        warm: Vec<MatcherEngine>,
    ) -> Result<(AlignOutcome, Vec<MatcherEngine>), HarnessError> {
        let mut engine = BpEngine::new(p, config);
        if !warm.is_empty() {
            let _ = engine.adopt_rounding(warm);
        }
        if let Some(CheckpointState::Bp(state)) = self.resolve_resume(EngineKind::Bp, p, config)? {
            engine.restore_state(state);
        }
        let policy = self.effective_policy(config);
        let mut driver = BudgetDriver::new(self);
        let mut iters_since = 0usize;
        let mut last_write = Instant::now();
        let mut completed = engine.iteration();
        let mut stop: Option<Stop> = None;
        while engine.iteration() < config.iterations {
            let iter_start = Instant::now();
            let stepped = catch_unwind(AssertUnwindSafe(|| {
                engine.step();
                if engine.rounding_due() {
                    engine.round_pending();
                }
                engine.end_iteration();
            }));
            if let Err(payload) = stepped {
                stop = Some(driver.classify_unwind(payload));
                break;
            }
            completed = engine.iteration();
            match driver.after_iteration(completed as u64, iter_start.elapsed().as_secs_f64()) {
                Verdict::Continue { escalate_to } => match escalate_to {
                    1 => engine.escalate_batch(),
                    2 => {
                        engine.escalate_batch();
                        engine.force_cheap_rounding();
                    }
                    _ => {}
                },
                Verdict::Deadline => {
                    // Rung 3: cut a final checkpoint (the state is
                    // consistent — we are at an iteration boundary),
                    // then stop with the incumbent.
                    let cut = if let Some(dir) = &self.checkpoint_dir {
                        let state = CheckpointState::Bp(engine.checkpoint_state());
                        Some(Self::write_snapshot(
                            dir,
                            EngineKind::Bp,
                            completed,
                            p,
                            config,
                            &state,
                            self.keep,
                        )?)
                    } else {
                        None
                    };
                    stop = Some(Stop {
                        completion: Completion::DeadlineBestSoFar,
                        checkpoint: cut,
                    });
                    break;
                }
                Verdict::Cancelled => {
                    stop = Some(Stop {
                        completion: Completion::Cancelled,
                        checkpoint: None,
                    });
                    break;
                }
            }
            iters_since += 1;
            if let Some(dir) = &self.checkpoint_dir {
                if policy.due(iters_since, last_write.elapsed().as_secs_f64()) {
                    let state = CheckpointState::Bp(engine.checkpoint_state());
                    Self::write_snapshot(
                        dir,
                        EngineKind::Bp,
                        engine.iteration(),
                        p,
                        config,
                        &state,
                        self.keep,
                    )?;
                    iters_since = 0;
                    last_write = Instant::now();
                }
            }
        }
        // Final assembly must not be cancelled by the very deadline it
        // answers: release the global token before touching the engine.
        let ladder_rung = driver.finish(&stop);
        let cancel_reason = driver.reason();
        let outcome = match stop {
            None => AlignOutcome {
                result: engine.finish_in_place(),
                completion: Completion::Completed,
                iterations_run: completed,
                cancel_reason,
                ladder_rung,
                deadline_checkpoint: None,
            },
            Some(stop) => {
                if stop.completion == Completion::DeadlineBestSoFar
                    && self.on_deadline == DeadlinePolicy::Error
                {
                    return Err(HarnessError::DeadlineExceeded {
                        iterations_run: completed,
                    });
                }
                // No time to round the staged backlog — the incumbent
                // is the answer.
                engine.discard_pending();
                AlignOutcome {
                    result: engine.finish_in_place(),
                    completion: stop.completion,
                    iterations_run: completed,
                    cancel_reason,
                    ladder_rung,
                    deadline_checkpoint: stop.checkpoint,
                }
            }
        };
        Ok((outcome, engine.release_rounding()))
    }

    /// Run the matching relaxation under this harness.
    pub fn run_mr(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
    ) -> Result<AlignOutcome, HarnessError> {
        self.run_mr_warm(p, config, Vec::new()).map(|(o, _)| o)
    }

    /// [`run_mr`](Self::run_mr) with rounding-engine recycling; see
    /// [`run_bp_warm`](Self::run_bp_warm) for the contract.
    pub fn run_mr_warm(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
        warm: Vec<MatcherEngine>,
    ) -> Result<(AlignOutcome, Vec<MatcherEngine>), HarnessError> {
        let mut engine = MrEngine::new(p, config);
        if !warm.is_empty() {
            let _ = engine.adopt_rounding(warm);
        }
        if let Some(CheckpointState::Mr(state)) = self.resolve_resume(EngineKind::Mr, p, config)? {
            engine.restore_state(state);
        }
        let policy = self.effective_policy(config);
        let mut driver = BudgetDriver::new(self);
        let mut iters_since = 0usize;
        let mut last_write = Instant::now();
        let mut completed = engine.iteration();
        let mut stop: Option<Stop> = None;
        while engine.iteration() < config.iterations {
            let iter_start = Instant::now();
            let stepped = catch_unwind(AssertUnwindSafe(|| {
                engine.step();
                engine.end_iteration();
            }));
            if let Err(payload) = stepped {
                stop = Some(driver.classify_unwind(payload));
                break;
            }
            completed = engine.iteration();
            match driver.after_iteration(completed as u64, iter_start.elapsed().as_secs_f64()) {
                Verdict::Continue { escalate_to } => {
                    // MR has no rounding batch; rungs 1 and 2 both land
                    // on the cheap-matcher switch.
                    if escalate_to >= 2 {
                        engine.force_cheap_rounding();
                    }
                }
                Verdict::Deadline => {
                    let cut = if let Some(dir) = &self.checkpoint_dir {
                        let state = CheckpointState::Mr(engine.checkpoint_state());
                        Some(Self::write_snapshot(
                            dir,
                            EngineKind::Mr,
                            completed,
                            p,
                            config,
                            &state,
                            self.keep,
                        )?)
                    } else {
                        None
                    };
                    stop = Some(Stop {
                        completion: Completion::DeadlineBestSoFar,
                        checkpoint: cut,
                    });
                    break;
                }
                Verdict::Cancelled => {
                    stop = Some(Stop {
                        completion: Completion::Cancelled,
                        checkpoint: None,
                    });
                    break;
                }
            }
            iters_since += 1;
            if let Some(dir) = &self.checkpoint_dir {
                if policy.due(iters_since, last_write.elapsed().as_secs_f64()) {
                    let state = CheckpointState::Mr(engine.checkpoint_state());
                    Self::write_snapshot(
                        dir,
                        EngineKind::Mr,
                        engine.iteration(),
                        p,
                        config,
                        &state,
                        self.keep,
                    )?;
                    iters_since = 0;
                    last_write = Instant::now();
                }
            }
        }
        let ladder_rung = driver.finish(&stop);
        let cancel_reason = driver.reason();
        let outcome = match stop {
            None => AlignOutcome {
                result: engine.finish_in_place(),
                completion: Completion::Completed,
                iterations_run: completed,
                cancel_reason,
                ladder_rung,
                deadline_checkpoint: None,
            },
            Some(stop) => {
                if stop.completion == Completion::DeadlineBestSoFar
                    && self.on_deadline == DeadlinePolicy::Error
                {
                    return Err(HarnessError::DeadlineExceeded {
                        iterations_run: completed,
                    });
                }
                AlignOutcome {
                    result: engine.finish_in_place(),
                    completion: stop.completion,
                    iterations_run: completed,
                    cancel_reason,
                    ladder_rung,
                    deadline_checkpoint: stop.checkpoint,
                }
            }
        };
        Ok((outcome, engine.release_rounding()))
    }

    /// Run belief propagation while recording its full per-iteration
    /// trajectory, enabling later [`run_bp_delta`](Self::run_bp_delta)
    /// calls. Recording requires a deterministic, uninterrupted run, so
    /// this path ignores the harness's budget/deadline/checkpoint
    /// machinery and always completes the full iteration count. `warm`
    /// matcher engines are adopted exactly as in
    /// [`run_bp_warm`](Self::run_bp_warm).
    pub fn run_bp_recorded(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
        warm: Vec<MatcherEngine>,
    ) -> Result<(AlignOutcome, BpTrajectory, Vec<MatcherEngine>), HarnessError> {
        let (result, trajectory, engines) = delta::record_bp(p, config, warm)?;
        Ok((
            AlignOutcome::completed(result, config.iterations),
            trajectory,
            engines,
        ))
    }

    /// Re-align an edited instance from a recorded [`DeltaBase`]: patch
    /// the problem (including the squares matrix) in place of a
    /// rebuild, replay only the iterations/rows the delta actually
    /// perturbs, and reuse rounded stages whose inputs are bitwise
    /// unchanged. The result is bit-identical to a cold re-solve of the
    /// patched instance; `base` advances so further deltas chain.
    pub fn run_bp_delta(
        &self,
        base: &mut DeltaBase,
        delta: &ProblemDelta,
    ) -> Result<(AlignOutcome, DeltaStats), HarnessError> {
        let (result, stats) = base.apply(delta)?;
        let iterations = base.config().iterations;
        Ok((AlignOutcome::completed(result, iterations), stats))
    }

    /// Re-align an edited instance with the matching relaxation. MR's
    /// subgradient state has no sparse-replay story (every multiplier
    /// couples through the global matching), so this patches the
    /// problem — reusing the squares matrix — and re-solves warm. The
    /// result is trivially bit-identical to a cold run on the patched
    /// instance; the returned problem is the patched one, for chaining.
    pub fn run_mr_delta(
        &self,
        p: &NetAlignProblem,
        config: &AlignConfig,
        delta: &ProblemDelta,
        warm: Vec<MatcherEngine>,
    ) -> Result<
        (
            NetAlignProblem,
            AlignOutcome,
            Vec<MatcherEngine>,
            crate::squares::SquaresPatchStats,
        ),
        HarnessError,
    > {
        let (patched, stats) = delta::patch_problem(p, delta)?;
        let (outcome, engines) = self.run_mr_warm(&patched, config, warm)?;
        Ok((patched, outcome, engines, stats))
    }
}

/// How an early stop ended, before the outcome is assembled.
struct Stop {
    completion: Completion,
    checkpoint: Option<PathBuf>,
}

/// Post-iteration verdict of the budget driver.
enum Verdict {
    /// Keep going; a non-zero `escalate_to` means the ladder just
    /// climbed to that rung (monotone — reported once per rung).
    Continue { escalate_to: u8 },
    /// Stop now with the incumbent (deadline expired or predicted to
    /// expire within one more iteration).
    Deadline,
    /// Stop now with the incumbent (manual cancel or watchdog stall).
    Cancelled,
}

/// Per-run deadline/ladder state. Owns the run's scoped token
/// registration and the watchdog; [`BudgetDriver::finish`] (or drop)
/// releases both so the final assembly and later runs are unaffected.
/// Registration is *scoped* — each driver gets its own cancel scope id,
/// made current on the driving thread and adopted by every parallel
/// region the run publishes — so concurrent harness runs in one
/// process never observe each other's deadlines.
struct BudgetDriver {
    token: CancelToken,
    watchdog: Option<Watchdog>,
    /// This run's registered cancel scope (0 = not registered).
    scope: u64,
    /// The driving thread's previous scope, restored on release.
    prev_scope: u64,
    /// EWMA of per-iteration wall-clock cost, seconds.
    ewma: Option<f64>,
    /// Highest rung engaged so far (monotone, 0–3).
    rung: u8,
    /// Deterministic injected deadline (1-based iteration), if armed.
    injected: Option<u64>,
    deadline_bounded: bool,
    soft: Option<f64>,
}

impl BudgetDriver {
    /// EWMA weight of the newest iteration.
    const EWMA_ALPHA: f64 = 0.3;
    /// Rung thresholds, in multiples of the EWMA per-iteration cost:
    /// remaining < 4×ewma → rung 1, < 2×ewma → rung 2, < 1×ewma →
    /// rung 3 (stop: the next iteration would overrun).
    const RUNG1_HEADROOM: f64 = 4.0;
    const RUNG2_HEADROOM: f64 = 2.0;

    fn new(harness: &RunHarness) -> Self {
        let injected = faults::deadline_iteration();
        let token = match (&harness.cancel_token, harness.budget.deadline) {
            (Some(token), _) => token.clone(),
            (None, Some(budget)) => CancelToken::with_budget(budget),
            (None, None) => CancelToken::new(),
        };
        // The runtime hook only needs the token when something can
        // actually fire; an unbounded, watchdog-less run skips the
        // registration entirely (and pays nothing per chunk).
        let bounded = harness.budget.is_bounded()
            || harness.watchdog_stall.is_some()
            || harness.cancel_token.is_some()
            || injected.is_some();
        let (scope, prev_scope) = if bounded {
            let scope = cancel::register(token.clone());
            (scope, rayon::set_cancel_scope(scope))
        } else {
            (0, 0)
        };
        let watchdog = harness
            .watchdog_stall
            .map(|stall| Watchdog::spawn(token.clone(), stall));
        BudgetDriver {
            watchdog,
            scope,
            prev_scope,
            ewma: None,
            rung: 0,
            injected,
            deadline_bounded: token.deadline().is_some(),
            soft: harness.budget.soft_iteration.map(|d| d.as_secs_f64()),
            token,
        }
    }

    /// Feed one completed iteration (1-based `k`, wall-clock cost) and
    /// decide what happens next.
    fn after_iteration(&mut self, k: u64, iter_secs: f64) -> Verdict {
        self.token.tick();
        if self.injected.is_some_and(|d| k >= d) {
            self.rung = 3;
            return Verdict::Deadline;
        }
        if self.token.should_stop() {
            return match self.token.reason() {
                Some(CancelReason::Deadline) => {
                    self.rung = 3;
                    Verdict::Deadline
                }
                _ => Verdict::Cancelled,
            };
        }
        let ewma = match self.ewma {
            None => iter_secs,
            Some(prev) => (1.0 - Self::EWMA_ALPHA) * prev + Self::EWMA_ALPHA * iter_secs,
        };
        self.ewma = Some(ewma);
        let mut target = self.rung;
        if self.deadline_bounded {
            if let Some(remaining) = self.token.remaining() {
                let remaining = remaining.as_secs_f64();
                if remaining < ewma {
                    self.rung = 3;
                    return Verdict::Deadline;
                }
                if remaining < Self::RUNG2_HEADROOM * ewma {
                    target = target.max(2);
                } else if remaining < Self::RUNG1_HEADROOM * ewma {
                    target = target.max(1);
                }
            }
        }
        // The soft per-iteration budget escalates pressure one rung at
        // a time but never terminates a run by itself.
        if self.soft.is_some_and(|soft| iter_secs > soft) {
            target = target.max((self.rung + 1).min(2));
        }
        if target > self.rung {
            self.rung = target;
            Verdict::Continue {
                escalate_to: target,
            }
        } else {
            Verdict::Continue { escalate_to: 0 }
        }
    }

    /// Classify a payload unwound out of an engine step: the runtime's
    /// distinguished cancellation payload becomes a clean stop (keyed
    /// on the token's reason), anything else is a genuine panic and is
    /// re-raised.
    fn classify_unwind(&mut self, payload: Box<dyn std::any::Any + Send>) -> Stop {
        if payload.downcast_ref::<rayon::RegionCancelled>().is_none() {
            self.release();
            resume_unwind(payload);
        }
        match self.token.reason() {
            Some(CancelReason::Deadline) => {
                self.rung = 3;
                Stop {
                    completion: Completion::DeadlineBestSoFar,
                    checkpoint: None,
                }
            }
            _ => Stop {
                completion: Completion::Cancelled,
                checkpoint: None,
            },
        }
    }

    /// The token's cancel reason, if it fired.
    fn reason(&self) -> Option<CancelReason> {
        self.token.reason()
    }

    /// Release the watchdog and the scoped token registration (so the
    /// final assembly cannot be cancelled by the expired deadline) and
    /// report the highest rung engaged.
    fn finish(&mut self, stop: &Option<Stop>) -> u8 {
        if stop
            .as_ref()
            .is_some_and(|s| s.completion == Completion::DeadlineBestSoFar)
        {
            self.rung = 3;
        }
        self.release();
        self.rung
    }

    fn release(&mut self) {
        self.watchdog = None;
        if self.scope != 0 {
            rayon::set_cancel_scope(self.prev_scope);
            cancel::deregister(self.scope);
            self.scope = 0;
        }
    }
}

impl Drop for BudgetDriver {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::list_checkpoints;
    use crate::trace::faults;
    use netalign_graph::{BipartiteGraph, Graph};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "netalign-harness-test-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn plain_harness_matches_wrapper() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 12,
            record_history: true,
            ..Default::default()
        };
        let direct = crate::bp::belief_propagation(&p, &cfg);
        let harnessed = RunHarness::new().run_bp(&p, &cfg).expect("no checkpoints");
        assert_eq!(harnessed.completion, Completion::Completed);
        assert_eq!(harnessed.iterations_run, 12);
        assert_eq!(harnessed.ladder_rung, 0);
        assert_eq!(direct.objective, harnessed.result.objective);
        assert_eq!(direct.matching, harnessed.result.matching);
    }

    #[test]
    fn checkpoints_are_written_and_pruned() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 9,
            ..Default::default()
        };
        let dir = scratch_dir("prune");
        RunHarness::new()
            .with_checkpoint_dir(&dir)
            .with_keep(2)
            .run_mr(&p, &cfg)
            .expect("run");
        let files = list_checkpoints(&dir, EngineKind::Mr);
        assert_eq!(files.len(), 2, "keep=2 must retain exactly 2 snapshots");
        assert!(files[0].ends_with(checkpoint_file_name(EngineKind::Mr, 9)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_directory_reproduces_run() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 14,
            batch: 3,
            record_history: true,
            ..Default::default()
        };
        let full = RunHarness::new().run_bp(&p, &cfg).expect("full run").result;

        // First leg: stop after 6 iterations, leaving a checkpoint.
        let dir = scratch_dir("resume");
        let short = AlignConfig {
            iterations: 6,
            ..cfg
        };
        RunHarness::new()
            .with_checkpoint_dir(&dir)
            .run_bp(&p, &short)
            .expect("first leg");

        // Second leg: a fingerprint-compatible resume needs the same
        // iteration budget, so the first leg's checkpoints are written
        // under the full config too.
        let resumed = RunHarness::new()
            .with_resume_from(&dir)
            .run_bp(&p, &cfg)
            .err();
        // iterations differs (6 vs 14) -> ConfigMismatch is correct.
        assert!(
            matches!(
                resumed,
                Some(HarnessError::Checkpoint(
                    CheckpointError::ConfigMismatch { .. }
                ))
            ),
            "config fingerprint must protect against budget drift, got {resumed:?}"
        );
        std::fs::remove_dir_all(&dir).ok();

        // Proper kill-and-resume: same config throughout, kill via a
        // fault at iteration 7.
        let dir = scratch_dir("resume2");
        faults::install(faults::FaultPlan {
            panic: Some(faults::StepTrigger::new("bp.step", 7)),
            ..Default::default()
        });
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            RunHarness::new()
                .with_checkpoint_dir(&dir)
                .run_bp(&p, &cfg)
                .expect("write leg")
        }));
        faults::clear();
        assert!(killed.is_err(), "the injected panic must surface");

        let resumed = RunHarness::new()
            .with_resume_from(&dir)
            .run_bp(&p, &cfg)
            .expect("resume leg")
            .result;
        assert_eq!(full.objective, resumed.objective);
        assert_eq!(full.matching, resumed.matching);
        assert_eq!(full.best_iteration, resumed.best_iteration);
        assert_eq!(full.history.len(), resumed.history.len());
        for (a, b) in full.history.iter().zip(&resumed.history) {
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_missing_file_is_hard_error() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let err = RunHarness::new()
            .with_resume_from("/definitely/not/a/checkpoint.bin")
            .run_bp(&p, &cfg)
            .err();
        assert!(matches!(
            err,
            Some(HarnessError::Checkpoint(CheckpointError::Io { .. }))
        ));
    }

    #[test]
    fn resume_from_empty_directory_starts_fresh() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 8,
            ..Default::default()
        };
        let dir = scratch_dir("empty");
        let direct = crate::bp::belief_propagation(&p, &cfg);
        let fresh = RunHarness::new()
            .with_resume_from(&dir)
            .run_bp(&p, &cfg)
            .expect("fresh start");
        assert_eq!(direct.objective, fresh.result.objective);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_deadline_stops_with_best_so_far() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 12,
            record_history: true,
            ..Default::default()
        };
        faults::install(faults::FaultPlan {
            deadline: Some(5),
            ..Default::default()
        });
        let outcome = RunHarness::new().run_bp(&p, &cfg).expect("budgeted run");
        faults::clear();
        assert_eq!(outcome.completion, Completion::DeadlineBestSoFar);
        assert_eq!(outcome.iterations_run, 5);
        assert_eq!(outcome.ladder_rung, 3);
        assert!(outcome.result.objective.is_finite());
        // The injected deadline must stop the run exactly where a short
        // iteration budget would.
        let short = crate::bp::belief_propagation(
            &p,
            &AlignConfig {
                iterations: 5,
                ..cfg
            },
        );
        assert_eq!(outcome.result.objective, short.objective);
        assert_eq!(outcome.result.matching, short.matching);
    }

    // Tests that actually *cancel* a registered token live in
    // tests/deadline.rs, alongside the concurrent-runs test showing a
    // latched token only stops its own scoped run.

    #[test]
    fn recorded_and_delta_runs_match_cold_solves() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 10,
            record_history: true,
            rounding: Some(netalign_matching::RoundingMatcher::Ld),
            warm_start: true,
            ..Default::default()
        };
        let harness = RunHarness::new();
        let (outcome, trajectory, engines) = harness
            .run_bp_recorded(&p, &cfg, Vec::new())
            .expect("recorded run");
        assert_eq!(outcome.completion, Completion::Completed);
        assert_eq!(trajectory.iterations(), 10);

        // Reweight one candidate and replay.
        let (a0, b0) = p.l.endpoints(4);
        let delta = ProblemDelta {
            l: crate::delta::CandidateDelta {
                reweight: vec![(a0, b0, 2.5)],
                ..Default::default()
            },
            ..Default::default()
        };
        let mut base = DeltaBase::from_parts(p.clone(), cfg, trajectory, engines);
        let (replayed, stats) = harness.run_bp_delta(&mut base, &delta).expect("delta run");
        assert!(stats.delta_reused_iterations >= 1);

        let (patched, _) = delta::patch_problem(&p, &delta).expect("patch");
        let cold = crate::bp::belief_propagation(&patched, &cfg);
        assert_eq!(replayed.result.matching, cold.matching);
        assert_eq!(
            replayed.result.objective.to_bits(),
            cold.objective.to_bits()
        );

        // MR delta: patched problem + warm re-solve ≡ cold on patched.
        let (mr_p, mr_outcome, _, _) = harness
            .run_mr_delta(&p, &cfg, &delta, Vec::new())
            .expect("mr delta");
        let mr_cold = crate::mr::matching_relaxation(&mr_p, &cfg);
        assert_eq!(mr_outcome.result.matching, mr_cold.matching);
        assert_eq!(
            mr_outcome.result.objective.to_bits(),
            mr_cold.objective.to_bits()
        );
    }

    #[test]
    fn expired_budget_with_error_policy_is_an_error() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig {
            iterations: 12,
            ..Default::default()
        };
        faults::install(faults::FaultPlan {
            deadline: Some(3),
            ..Default::default()
        });
        let err = RunHarness::new()
            .with_on_deadline(DeadlinePolicy::Error)
            .run_bp(&p, &cfg)
            .err();
        faults::clear();
        assert!(
            matches!(
                err,
                Some(HarnessError::DeadlineExceeded { iterations_run: 3 })
            ),
            "got {err:?}"
        );
    }
}
