//! Loop-invariant row-group decomposition of a CSR pattern.
//!
//! Both aligners sweep the fixed pattern of `S` row-by-row every
//! iteration (BP's fused `F`/`d` pass and `S⁽ᵏ⁾` update, MR's row
//! matchings and `U` update). The pattern never changes, so the
//! partition of rows into parallel work units is computed **once per
//! run** and reused: [`RowSpans`] groups consecutive rows so each
//! group carries roughly the same number of stored entries (the
//! paper's `schedule(dynamic, 1000)` balances the same way, but
//! re-derives it every `#pragma omp for`).
//!
//! A group's rows and entries are both contiguous, so value arrays
//! over the pattern (length `nnz`) and per-row arrays (length `nrows`)
//! can be handed to [`rayon::par_uneven_chunks_mut`] as disjoint
//! mutable chunks — row-parallel writes without per-iteration slice
//! vectors or any other allocation.

use crate::bp::CHUNK;

/// A partition of CSR rows into contiguous groups balanced by entry
/// count. Group `g` covers rows `row_bounds[g]..row_bounds[g + 1]` and
/// entries `entry_bounds[g]..entry_bounds[g + 1]`, with
/// `entry_bounds[g] == rowptr[row_bounds[g]]`.
#[derive(Clone, Debug)]
pub struct RowSpans {
    row_bounds: Vec<usize>,
    entry_bounds: Vec<usize>,
}

impl RowSpans {
    /// Partition the rows of `rowptr` greedily so every group (except
    /// possibly the last) holds at least `target_entries` entries.
    /// Rows are never split across groups.
    pub fn build(rowptr: &[usize], target_entries: usize) -> Self {
        let nrows = rowptr.len() - 1;
        let nnz = rowptr[nrows];
        let target = target_entries.max(1);
        let mut row_bounds = Vec::with_capacity(nnz / target + 2);
        let mut entry_bounds = Vec::with_capacity(nnz / target + 2);
        row_bounds.push(0);
        entry_bounds.push(0);
        let mut group_start_entry = 0usize;
        for r in 0..nrows {
            if rowptr[r + 1] - group_start_entry >= target && r + 1 < nrows {
                row_bounds.push(r + 1);
                entry_bounds.push(rowptr[r + 1]);
                group_start_entry = rowptr[r + 1];
            }
        }
        // Invariant: row_bounds starts as vec![0], so last() is Some.
        if *row_bounds.last().unwrap() != nrows {
            row_bounds.push(nrows);
            entry_bounds.push(nnz);
        }
        RowSpans {
            row_bounds,
            entry_bounds,
        }
    }

    /// Partition with the default target: `max(CHUNK, nnz / MAX_CHUNKS)`
    /// entries per group — at least the paper's dynamic-schedule chunk
    /// of 1000, and never more groups than the runtime will schedule.
    pub fn from_rowptr(rowptr: &[usize]) -> Self {
        let nnz = rowptr[rowptr.len() - 1];
        Self::build(rowptr, CHUNK.max(nnz.div_ceil(rayon::MAX_CHUNKS)))
    }

    /// Number of row groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.row_bounds.len() - 1
    }

    /// Row boundaries (`num_groups() + 1` entries), for chunking
    /// per-row arrays.
    #[inline]
    pub fn row_bounds(&self) -> &[usize] {
        &self.row_bounds
    }

    /// Entry boundaries (`num_groups() + 1` entries), for chunking
    /// value arrays over the pattern.
    #[inline]
    pub fn entry_bounds(&self) -> &[usize] {
        &self.entry_bounds
    }

    /// Rows of group `g`.
    #[inline]
    pub fn group_rows(&self, g: usize) -> std::ops::Range<usize> {
        self.row_bounds[g]..self.row_bounds[g + 1]
    }

    /// First entry index of group `g`.
    #[inline]
    pub fn group_entry_base(&self, g: usize) -> usize {
        self.entry_bounds[g]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_rows_and_entries() {
        // Rows with 3, 0, 5, 2, 7, 1 entries.
        let rowptr = [0usize, 3, 3, 8, 10, 17, 18];
        for target in [1, 2, 4, 100] {
            let s = RowSpans::build(&rowptr, target);
            assert_eq!(s.row_bounds()[0], 0);
            assert_eq!(*s.row_bounds().last().unwrap(), 6);
            assert_eq!(s.entry_bounds()[0], 0);
            assert_eq!(*s.entry_bounds().last().unwrap(), 18);
            for g in 0..s.num_groups() {
                assert_eq!(s.group_entry_base(g), rowptr[s.group_rows(g).start]);
            }
        }
    }

    #[test]
    fn groups_meet_target_except_last() {
        let rowptr: Vec<usize> = (0..=100).map(|r| 3 * r).collect();
        let s = RowSpans::build(&rowptr, 10);
        for g in 0..s.num_groups() - 1 {
            let entries = s.entry_bounds()[g + 1] - s.entry_bounds()[g];
            assert!(entries >= 10, "group {g} has {entries} entries");
        }
    }

    #[test]
    fn empty_pattern_gets_one_group() {
        let rowptr = [0usize, 0, 0, 0];
        let s = RowSpans::build(&rowptr, 5);
        assert_eq!(s.num_groups(), 1);
        assert_eq!(s.group_rows(0), 0..3);
        assert_eq!(s.entry_bounds(), &[0, 0]);
    }

    #[test]
    fn default_target_bounds_group_count() {
        let rowptr: Vec<usize> = (0..=10_000).map(|r| 40 * r).collect();
        let s = RowSpans::from_rowptr(&rowptr);
        assert!(s.num_groups() <= rayon::MAX_CHUNKS + 1);
        assert!(s.num_groups() > 1);
    }
}
