//! The squares matrix `S`.
//!
//! Rows and columns of `S` are indexed by the edges of `L` (in the
//! global edge order). `S[e, f] = 1` for `e = (i,i')`, `f = (j,j')`
//! exactly when `(i,j) ∈ E_A` and `(i',j') ∈ E_B` — matching both `e`
//! and `f` then *overlaps* that pair of edges. `S` is structurally and
//! numerically symmetric and has an empty diagonal (simple graphs have
//! no self-loops), so the number of overlapped edges for an indicator
//! `x` is `xᵀSx / 2`.
//!
//! `S`'s structure is fixed for the lifetime of a problem. Iteration
//! matrices over the same pattern (`S^{(k)}`, `U^{(k)}`, `F`, `S_L`)
//! are plain value arrays of length [`SquaresMatrix::nnz`], and the
//! transpose is realized by the precomputed value permutation
//! (the paper's §IV.A trick).

use netalign_graph::csr::CsrMatrix;
use netalign_graph::nacs::{CsrView, NacsError, NacsWriter, Section};
use netalign_graph::permutation::Permutation;
use netalign_graph::{BipartiteGraph, EdgeId, Graph, VertexId};
use rayon::prelude::*;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Physical storage of the squares pattern: fully in-core, or an
/// mmap-backed [`CsrView`] over a `NACS` file (out-of-core mode).
#[derive(Clone, Debug)]
enum Storage {
    InCore {
        pattern: CsrMatrix,
        transpose_perm: Permutation,
    },
    Mapped {
        view: CsrView,
    },
}

/// The squares matrix: fixed CSR pattern over `E_L × E_L` with the
/// transpose permutation precomputed.
///
/// The pattern either lives in core (the default) or is memory-mapped
/// from a `NACS` file built by [`SquaresMatrix::build_streaming`]. Both
/// forms expose identical `rowptr`/`colidx`/`transpose_perm_slice`
/// accessors, so the aligner kernels are storage-agnostic.
#[derive(Clone, Debug)]
pub struct SquaresMatrix {
    storage: Storage,
}

fn write_u32_stream<W: Write>(w: &mut W, vals: &[u32]) -> std::io::Result<()> {
    #[cfg(target_endian = "little")]
    {
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 4) };
        w.write_all(bytes)
    }
    #[cfg(not(target_endian = "little"))]
    {
        for &v in vals {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Read until `buf` is full or EOF; returns the bytes read.
fn fill_buf<R: Read>(rd: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = rd.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// What [`SquaresMatrix::patch`] did, for delta-solve reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct SquaresPatchStats {
    /// Rows re-enumerated from the patched graphs.
    pub rows_reenumerated: usize,
    /// Rows whose old column lists were carried over through the remap.
    pub rows_reused: usize,
    /// Entries carried over without re-enumeration.
    pub entries_reused: usize,
    /// Total entries in the patched matrix.
    pub nnz: usize,
}

impl SquaresMatrix {
    /// Enumerate all squares between `A`, `B`, `L` in parallel and
    /// assemble the CSR pattern.
    ///
    /// For each edge `e = (i,i')` of `L`, the candidate partners are
    /// pairs `(j, j')` with `j ∈ adj_A(i)`, `j' ∈ adj_B(i')` and
    /// `(j,j') ∈ E_L`. We iterate the smaller adjacency against the
    /// other side's `L` lookup.
    pub fn build(a: &Graph, b: &Graph, l: &BipartiteGraph) -> Self {
        assert!(
            l.num_edges() < u32::MAX as usize - 1,
            "edge ids must fit in u32"
        );
        // Parallel over rows (edges of L); each row's column list is
        // produced sorted because left_edges / neighbor lists are sorted.
        let rows: Vec<Vec<VertexId>> = (0..l.num_edges())
            .into_par_iter()
            .map(|e| {
                let (i, ip) = l.endpoints(e);
                let mut cols: Vec<VertexId> = Vec::new();
                for &j in a.neighbors(i) {
                    for &jp in b.neighbors(ip) {
                        if let Some(f) = l.edge_id(j, jp) {
                            debug_assert_ne!(f, e, "squares cannot be diagonal");
                            cols.push(f as VertexId);
                        }
                    }
                }
                cols.sort_unstable();
                cols
            })
            .collect();

        let m = l.num_edges();
        let mut rowptr = vec![0usize; m + 1];
        for (e, r) in rows.iter().enumerate() {
            rowptr[e + 1] = rowptr[e] + r.len();
        }
        let nnz = rowptr[m];
        let mut colidx = Vec::with_capacity(nnz);
        for r in &rows {
            colidx.extend_from_slice(r);
        }
        let vals = vec![1.0f64; nnz];
        let pattern = CsrMatrix::from_raw(m, m, rowptr, colidx, vals);
        debug_assert!(pattern.is_structurally_symmetric());
        let transpose_perm = pattern.transpose_permutation();
        Self {
            storage: Storage::InCore {
                pattern,
                transpose_perm,
            },
        }
    }

    /// Wrap a memory-mapped `NACS` view as a squares matrix.
    ///
    /// The file must be square and carry a transpose-permutation
    /// section (as written by [`SquaresMatrix::build_streaming`] or
    /// [`SquaresMatrix::write_nacs`]); values are implicitly 1.0.
    pub fn from_mapped(view: CsrView) -> Result<Self, NacsError> {
        if view.nrows() != view.ncols() {
            return Err(NacsError::Format(format!(
                "squares matrix must be square, got {}x{}",
                view.nrows(),
                view.ncols()
            )));
        }
        if view.perm().is_none() {
            return Err(NacsError::Format(
                "squares NACS file lacks the transpose permutation section".into(),
            ));
        }
        Ok(Self {
            storage: Storage::Mapped { view },
        })
    }

    /// True when the pattern is served from a memory-mapped file.
    pub fn is_mapped(&self) -> bool {
        matches!(self.storage, Storage::Mapped { .. })
    }

    /// The mapped view, when out-of-core.
    pub fn mapped_view(&self) -> Option<&CsrView> {
        match &self.storage {
            Storage::Mapped { view } => Some(view),
            Storage::InCore { .. } => None,
        }
    }

    /// Write this matrix to a `NACS` file (unit weights + transpose
    /// permutation), so it can be reopened with
    /// [`CsrView::open`] + [`SquaresMatrix::from_mapped`].
    pub fn write_nacs(&self, path: &Path) -> Result<(), NacsError> {
        match &self.storage {
            Storage::InCore {
                pattern,
                transpose_perm,
            } => pattern.write_nacs(path, true, Some(transpose_perm.as_slice())),
            Storage::Mapped { view } => view.to_csr().write_nacs(path, true, view.perm()),
        }
    }

    /// Enumerate the squares of `A`, `B`, `L` directly into a `NACS`
    /// file, holding at most `spill_buffer_bytes` of enumerated column
    /// indices in memory at a time, then reopen the file mapped.
    ///
    /// The per-row enumeration is byte-for-byte the same as
    /// [`SquaresMatrix::build`]; blocks of rows are enumerated in
    /// parallel and their (sorted) column lists are appended to a spill
    /// file whenever the buffer exceeds its budget. A second sequential
    /// pass over the spill emits the `indices` section, and a third
    /// emits the transpose permutation without materializing it: for a
    /// structurally symmetric pattern the transpose permutation is an
    /// involution, so `perm[k] = next[colidx[k]]++` (with `next`
    /// initialized from `rowptr`) produces, entry by entry in file
    /// order, exactly the permutation the in-core next-slot walk
    /// builds. Only `O(|E_L|)` state (row counts, `next`) stays
    /// resident.
    pub fn build_streaming(
        a: &Graph,
        b: &Graph,
        l: &BipartiteGraph,
        path: &Path,
        spill_buffer_bytes: usize,
    ) -> Result<Self, NacsError> {
        assert!(
            l.num_edges() < u32::MAX as usize - 1,
            "edge ids must fit in u32"
        );
        let m = l.num_edges();
        let mut spill_path = path.as_os_str().to_owned();
        spill_path.push(".spill");
        let spill_path = std::path::PathBuf::from(spill_path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }

        // Pass 1: enumerate row blocks in parallel, spill column lists.
        const ROWS_PER_CHUNK: usize = 2048;
        let cap_entries = (spill_buffer_bytes / 4).max(1 << 16);
        let mut rowcount = vec![0u32; m];
        let mut nnz = 0u64;
        {
            let spill = std::fs::File::create(&spill_path)?;
            let mut spill = BufWriter::with_capacity(1 << 20, spill);
            let mut buf: Vec<u32> = Vec::with_capacity(cap_entries.min(1 << 24));
            let mut base = 0usize;
            while base < m {
                let end = (base + ROWS_PER_CHUNK).min(m);
                let chunk_rows: Vec<Vec<VertexId>> = (base..end)
                    .into_par_iter()
                    .map(|e| {
                        let (i, ip) = l.endpoints(e);
                        let mut cols: Vec<VertexId> = Vec::new();
                        for &j in a.neighbors(i) {
                            for &jp in b.neighbors(ip) {
                                if let Some(f) = l.edge_id(j, jp) {
                                    debug_assert_ne!(f, e, "squares cannot be diagonal");
                                    cols.push(f as VertexId);
                                }
                            }
                        }
                        cols.sort_unstable();
                        cols
                    })
                    .collect();
                for (off, cols) in chunk_rows.iter().enumerate() {
                    rowcount[base + off] = cols.len() as u32;
                    nnz += cols.len() as u64;
                    buf.extend_from_slice(cols);
                    if buf.len() >= cap_entries {
                        write_u32_stream(&mut spill, &buf)?;
                        buf.clear();
                    }
                }
                base = end;
            }
            write_u32_stream(&mut spill, &buf)?;
            spill.flush()?;
        }

        // Header + indptr from the row counts.
        let mut w = NacsWriter::create(path, m, m, nnz as usize, true, true)?;
        w.begin_section(Section::Indptr)?;
        {
            let mut acc = 0u64;
            let mut out: Vec<u64> = Vec::with_capacity(1 << 16);
            out.push(0);
            for &c in &rowcount {
                acc += c as u64;
                out.push(acc);
                if out.len() == 1 << 16 {
                    w.write_u64s(&out)?;
                    out.clear();
                }
            }
            w.write_u64s(&out)?;
        }
        w.end_section()?;

        // Pass 2: stream the spill through as the indices section.
        w.begin_section(Section::Indices)?;
        {
            let mut rd = BufReader::with_capacity(1 << 20, std::fs::File::open(&spill_path)?);
            let mut chunk = vec![0u8; 1 << 20];
            loop {
                let n = rd.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                w.write(&chunk[..n])?;
            }
        }
        w.end_section()?;

        // Pass 3: stream the spill again, emitting the involution
        // transpose permutation entry by entry.
        w.begin_section(Section::Perm)?;
        {
            let mut next = vec![0u64; m];
            let mut acc = 0u64;
            for (e, &c) in rowcount.iter().enumerate() {
                next[e] = acc;
                acc += c as u64;
            }
            let mut rd = BufReader::with_capacity(1 << 20, std::fs::File::open(&spill_path)?);
            let mut chunk = vec![0u8; 1 << 20];
            let mut out: Vec<u64> = Vec::with_capacity(1 << 18);
            loop {
                let n = fill_buf(&mut rd, &mut chunk)?;
                if n == 0 {
                    break;
                }
                debug_assert_eq!(n % 4, 0, "spill size is a multiple of 4");
                for cb in chunk[..n].chunks_exact(4) {
                    let c = u32::from_le_bytes(cb.try_into().unwrap()) as usize;
                    out.push(next[c]);
                    next[c] += 1;
                    if out.len() == 1 << 18 {
                        w.write_u64s(&out)?;
                        out.clear();
                    }
                }
            }
            w.write_u64s(&out)?;
        }
        w.end_section()?;
        w.finish()?;
        let _ = std::fs::remove_file(&spill_path);

        Self::from_mapped(CsrView::open(path)?)
    }

    /// Patch this matrix after a structural delta instead of rebuilding
    /// it from scratch.
    ///
    /// `a2`/`b2`/`l2` are the *patched* graphs. `old_to_new` maps old
    /// `L` edge ids to new ones (`usize::MAX` = removed), `new_to_old`
    /// is its inverse (`usize::MAX` = brand-new edge). `core_rows` is
    /// the sorted set of new row ids whose square set may have changed
    /// — the caller derives it from the delta (new rows, rows touching
    /// A/B-delta vertices, partner rows of L-delta edges). Every other
    /// row's old column list is carried over through the id remap;
    /// only core rows are re-enumerated with [`SquaresMatrix::build`]'s
    /// algorithm, so the result is bit-identical to a full rebuild at a
    /// fraction of the work.
    ///
    /// Returns the patched matrix, one `shape_preserved` flag per core
    /// row (true when its column set is unchanged modulo renumbering —
    /// per-entry row state like `sk` can then be carried over 1:1), and
    /// patch statistics.
    pub fn patch(
        &self,
        a2: &Graph,
        b2: &Graph,
        l2: &BipartiteGraph,
        old_to_new: &[usize],
        new_to_old: &[usize],
        core_rows: &[EdgeId],
    ) -> (SquaresMatrix, Vec<bool>, SquaresPatchStats) {
        assert!(
            l2.num_edges() < u32::MAX as usize - 1,
            "edge ids must fit in u32"
        );
        let m2 = l2.num_edges();
        assert_eq!(old_to_new.len(), self.dim());
        assert_eq!(new_to_old.len(), m2);
        debug_assert!(core_rows.windows(2).all(|w| w[0] < w[1]));

        // Re-enumerate core rows with build()'s exact per-row algorithm.
        let core_cols: Vec<Vec<VertexId>> = core_rows
            .par_iter()
            .map(|&e| {
                let (i, ip) = l2.endpoints(e);
                let mut cols: Vec<VertexId> = Vec::new();
                for &j in a2.neighbors(i) {
                    for &jp in b2.neighbors(ip) {
                        if let Some(f) = l2.edge_id(j, jp) {
                            debug_assert_ne!(f, e, "squares cannot be diagonal");
                            cols.push(f as VertexId);
                        }
                    }
                }
                cols.sort_unstable();
                cols
            })
            .collect();

        // Assemble: core rows take their fresh lists; every other row
        // remaps its old column list (monotone map keeps it sorted).
        let mut rowptr = Vec::with_capacity(m2 + 1);
        rowptr.push(0usize);
        let mut colidx: Vec<VertexId> = Vec::with_capacity(self.nnz());
        let mut shape_preserved = vec![false; core_rows.len()];
        let mut entries_reused = 0usize;
        let mut core_iter = core_rows.iter().zip(core_cols.iter()).peekable();
        for e in 0..m2 {
            match core_iter.peek() {
                Some(&(&ce, cols)) if ce == e => {
                    // Shape is preserved when the old row exists and its
                    // surviving remapped columns equal the fresh list.
                    let old = new_to_old[e];
                    if old != usize::MAX {
                        let old_cols = self.row_cols(old);
                        shape_preserved[core_rows.binary_search(&e).unwrap()] = old_cols.len()
                            == cols.len()
                            && old_cols
                                .iter()
                                .zip(cols.iter())
                                .all(|(&oc, &nc)| old_to_new[oc as usize] == nc as usize);
                    }
                    colidx.extend_from_slice(cols);
                    core_iter.next();
                }
                _ => {
                    let old = new_to_old[e];
                    debug_assert_ne!(old, usize::MAX, "non-core rows must map to an old row");
                    for &oc in self.row_cols(old) {
                        let nc = old_to_new[oc as usize];
                        debug_assert_ne!(
                            nc,
                            usize::MAX,
                            "a non-core row referenced a removed column — its partner \
                             rows were not all marked core"
                        );
                        colidx.push(nc as VertexId);
                    }
                    entries_reused += colidx.len() - rowptr[e];
                }
            }
            rowptr.push(colidx.len());
        }
        let nnz = colidx.len();
        let vals = vec![1.0f64; nnz];
        let pattern = CsrMatrix::from_raw(m2, m2, rowptr, colidx, vals);
        debug_assert!(pattern.is_structurally_symmetric());

        // Transpose permutation via the same next-slot walk as
        // `CsrMatrix::transpose_permutation`, but without its O(nnz log)
        // symmetry assertion on the hot path (debug-checked above).
        let mut perm = vec![0usize; nnz];
        let mut next = pattern.rowptr().to_vec();
        for row in 0..m2 {
            for e in pattern.row_range(row) {
                let c = pattern.colidx()[e] as usize;
                let slot = next[c];
                next[c] += 1;
                perm[slot] = e;
            }
        }
        let transpose_perm = Permutation::from_vec(perm);
        let stats = SquaresPatchStats {
            rows_reenumerated: core_rows.len(),
            rows_reused: m2 - core_rows.len(),
            entries_reused,
            nnz,
        };
        (
            SquaresMatrix {
                storage: Storage::InCore {
                    pattern,
                    transpose_perm,
                },
            },
            shape_preserved,
            stats,
        )
    }

    /// Number of stored entries (each overlapping pair counts twice —
    /// the symmetric storage convention of the paper's Table II).
    #[inline]
    pub fn nnz(&self) -> usize {
        match &self.storage {
            Storage::InCore { pattern, .. } => pattern.nnz(),
            Storage::Mapped { view } => view.nnz(),
        }
    }

    /// Number of rows/columns (`|E_L|`).
    #[inline]
    pub fn dim(&self) -> usize {
        match &self.storage {
            Storage::InCore { pattern, .. } => pattern.nrows(),
            Storage::Mapped { view } => view.nrows(),
        }
    }

    /// The underlying in-core CSR pattern (values all 1.0).
    ///
    /// # Panics
    /// Panics for mapped storage — kernels should use the slice
    /// accessors, which work for both.
    #[inline]
    pub fn pattern(&self) -> &CsrMatrix {
        match &self.storage {
            Storage::InCore { pattern, .. } => pattern,
            Storage::Mapped { .. } => {
                panic!("pattern() requires in-core storage; use rowptr()/colidx()")
            }
        }
    }

    /// Row pointer array.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        match &self.storage {
            Storage::InCore { pattern, .. } => pattern.rowptr(),
            Storage::Mapped { view } => view.rowptr(),
        }
    }

    /// Column indices (edge ids of `L`).
    #[inline]
    pub fn colidx(&self) -> &[VertexId] {
        match &self.storage {
            Storage::InCore { pattern, .. } => pattern.colidx(),
            Storage::Mapped { view } => view.colidx(),
        }
    }

    /// Entry-index range of row `e`.
    #[inline]
    pub fn row_range(&self, e: EdgeId) -> std::ops::Range<usize> {
        let p = self.rowptr();
        p[e]..p[e + 1]
    }

    /// Column ids of row `e`.
    #[inline]
    pub fn row_cols(&self, e: EdgeId) -> &[VertexId] {
        &self.colidx()[self.row_range(e)]
    }

    /// The transpose value permutation as a typed [`Permutation`].
    ///
    /// # Panics
    /// Panics for mapped storage — use
    /// [`transpose_perm_slice`](SquaresMatrix::transpose_perm_slice).
    #[inline]
    pub fn transpose_perm(&self) -> &Permutation {
        match &self.storage {
            Storage::InCore { transpose_perm, .. } => transpose_perm,
            Storage::Mapped { .. } => {
                panic!("transpose_perm() requires in-core storage; use transpose_perm_slice()")
            }
        }
    }

    /// The transpose value permutation as a raw slice, for either
    /// storage: for a value array `v` over this pattern,
    /// `transpose(v)[k] = v[perm[k]]`.
    #[inline]
    pub fn transpose_perm_slice(&self) -> &[usize] {
        match &self.storage {
            Storage::InCore { transpose_perm, .. } => transpose_perm.as_slice(),
            Storage::Mapped { view } => view
                .perm()
                .expect("mapped squares matrices always carry a perm section"),
        }
    }

    /// Gather a transposed value array: `out[k] = vals[perm[k]]`
    /// (parallel).
    pub fn transpose_vals_into(&self, vals: &[f64], out: &mut [f64]) {
        assert_eq!(vals.len(), self.nnz());
        assert_eq!(out.len(), self.nnz());
        let perm = self.transpose_perm_slice();
        out.par_iter_mut()
            .zip(perm.par_iter())
            .for_each(|(o, &p)| *o = vals[p]);
    }

    /// Fresh value array over the pattern, filled with `init`.
    pub fn new_vals(&self, init: f64) -> Vec<f64> {
        vec![init; self.nnz()]
    }

    /// `xᵀ S x` for an indicator (or real) vector `x` over `E_L`,
    /// computed in parallel. The overlap count is half of this.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim());
        (0..self.dim())
            .into_par_iter()
            .map(|e| {
                if x[e] == 0.0 {
                    return 0.0;
                }
                let mut acc = 0.0;
                for &f in self.row_cols(e) {
                    acc += x[f as usize];
                }
                acc * x[e]
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles with identity L plus one extra candidate.
    fn triangle_problem() -> (Graph, Graph, BipartiteGraph) {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 1, 0.5)],
        );
        (a, b, l)
    }

    #[test]
    fn squares_of_triangles() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        assert_eq!(s.dim(), 4);
        // Identity pairs: ((0,0),(1,1)), ((0,0),(2,2)), ((1,1),(2,2))
        // each stored twice = 6. Extra edge (0,1): pairs with (j,j')
        // where j ∈ {1,2}, j' ∈ {0,2} and (j,j') ∈ L: (2,2) only -> 2 more.
        // Also (0,1) with (1,0)? (1,0) not in L. Total 8.
        assert_eq!(s.nnz(), 8);
        let e01 = l.edge_id(0, 1).unwrap();
        let e22 = l.edge_id(2, 2).unwrap();
        assert!(s.row_cols(e01).contains(&(e22 as u32)));
    }

    #[test]
    fn pattern_is_symmetric_with_empty_diagonal() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        assert!(s.pattern().is_structurally_symmetric());
        for e in 0..s.dim() {
            assert!(!s.row_cols(e).contains(&(e as u32)));
        }
    }

    #[test]
    fn quadratic_form_counts_overlaps_twice() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        // identity matching indicator
        let mut x = vec![0.0; 4];
        for i in 0..3 {
            x[l.edge_id(i, i).unwrap()] = 1.0;
        }
        // 3 overlapped edges -> x'Sx = 6
        assert_eq!(s.quadratic_form(&x), 6.0);
    }

    #[test]
    fn transpose_vals_roundtrip() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        let vals: Vec<f64> = (0..s.nnz()).map(|i| i as f64).collect();
        let mut t = vec![0.0; s.nnz()];
        s.transpose_vals_into(&vals, &mut t);
        let mut back = vec![0.0; s.nnz()];
        s.transpose_vals_into(&t, &mut back);
        assert_eq!(vals, back); // transpose is an involution
    }

    #[test]
    fn patch_with_all_core_rows_matches_rebuild() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        // Remove candidate (0,1), add (1,0); drop A edge (2,0).
        let d = netalign_graph::delta::CandidateDelta {
            insert: vec![(1, 0, 0.4)],
            remove: vec![(0, 1)],
            ..Default::default()
        };
        let applied = d.apply(&l).unwrap();
        let a2 = netalign_graph::delta::GraphDelta {
            remove: vec![(2, 0)],
            ..Default::default()
        }
        .apply(&a)
        .unwrap();
        let core: Vec<EdgeId> = (0..applied.graph.num_edges()).collect();
        let (patched, _, stats) = s.patch(
            &a2,
            &b,
            &applied.graph,
            &applied.old_to_new,
            &applied.new_to_old(),
            &core,
        );
        let rebuilt = SquaresMatrix::build(&a2, &b, &applied.graph);
        assert_eq!(patched.pattern(), rebuilt.pattern());
        assert_eq!(patched.transpose_perm(), rebuilt.transpose_perm());
        assert_eq!(stats.rows_reenumerated, core.len());
        assert_eq!(stats.rows_reused, 0);
    }

    #[test]
    fn patch_with_no_core_rows_keeps_the_pattern() {
        // A pure reweight never changes S: empty core set, identity map.
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        let ids: Vec<usize> = (0..l.num_edges()).collect();
        let (patched, flags, stats) = s.patch(&a, &b, &l, &ids, &ids, &[]);
        assert_eq!(patched.pattern(), s.pattern());
        assert_eq!(patched.transpose_perm(), s.transpose_perm());
        assert!(flags.is_empty());
        assert_eq!(stats.entries_reused, s.nnz());
    }

    #[test]
    fn streaming_build_matches_in_core() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        let dir = std::env::temp_dir().join(format!("netalign-squares-{}", std::process::id()));
        let path = dir.join("triangle.nacs");
        // A 64-byte buffer forces multiple spill flushes even here.
        let sm = SquaresMatrix::build_streaming(&a, &b, &l, &path, 64).unwrap();
        assert!(sm.is_mapped());
        assert!(!s.is_mapped());
        assert_eq!(sm.dim(), s.dim());
        assert_eq!(sm.nnz(), s.nnz());
        assert_eq!(sm.rowptr(), s.rowptr());
        assert_eq!(sm.colidx(), s.colidx());
        assert_eq!(sm.transpose_perm_slice(), s.transpose_perm().as_slice());
        for e in 0..s.dim() {
            assert_eq!(sm.row_cols(e), s.row_cols(e));
        }
        let x = [1.0, 0.5, 1.0, 0.0];
        assert_eq!(
            sm.quadratic_form(&x).to_bits(),
            s.quadratic_form(&x).to_bits()
        );
        // write_nacs of the in-core matrix reopens identically too.
        let path2 = dir.join("triangle2.nacs");
        s.write_nacs(&path2).unwrap();
        let sm2 = SquaresMatrix::from_mapped(netalign_graph::nacs::CsrView::open(&path2).unwrap())
            .unwrap();
        assert_eq!(sm2.colidx(), s.colidx());
        assert_eq!(sm2.transpose_perm_slice(), s.transpose_perm().as_slice());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    #[should_panic(expected = "in-core")]
    fn mapped_pattern_access_panics() {
        let (a, b, l) = triangle_problem();
        let dir = std::env::temp_dir().join(format!("netalign-squares-{}", std::process::id()));
        let path = dir.join("panic.nacs");
        let sm = SquaresMatrix::build_streaming(&a, &b, &l, &path, 1 << 20).unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = sm.pattern();
    }

    #[test]
    fn empty_graphs_give_empty_s() {
        let a = Graph::empty(2);
        let b = Graph::empty(2);
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]);
        let s = SquaresMatrix::build(&a, &b, &l);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.quadratic_form(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn square_needs_both_graph_edges() {
        // Edge only in A, not B: no squares.
        let a = Graph::from_edges(2, vec![(0, 1)]);
        let b = Graph::empty(2);
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]);
        let s = SquaresMatrix::build(&a, &b, &l);
        assert_eq!(s.nnz(), 0);
    }
}
