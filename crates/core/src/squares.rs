//! The squares matrix `S`.
//!
//! Rows and columns of `S` are indexed by the edges of `L` (in the
//! global edge order). `S[e, f] = 1` for `e = (i,i')`, `f = (j,j')`
//! exactly when `(i,j) ∈ E_A` and `(i',j') ∈ E_B` — matching both `e`
//! and `f` then *overlaps* that pair of edges. `S` is structurally and
//! numerically symmetric and has an empty diagonal (simple graphs have
//! no self-loops), so the number of overlapped edges for an indicator
//! `x` is `xᵀSx / 2`.
//!
//! `S`'s structure is fixed for the lifetime of a problem. Iteration
//! matrices over the same pattern (`S^{(k)}`, `U^{(k)}`, `F`, `S_L`)
//! are plain value arrays of length [`SquaresMatrix::nnz`], and the
//! transpose is realized by the precomputed value permutation
//! (the paper's §IV.A trick).

use netalign_graph::csr::CsrMatrix;
use netalign_graph::permutation::Permutation;
use netalign_graph::{BipartiteGraph, EdgeId, Graph, VertexId};
use rayon::prelude::*;

/// The squares matrix: fixed CSR pattern over `E_L × E_L` with the
/// transpose permutation precomputed.
#[derive(Clone, Debug)]
pub struct SquaresMatrix {
    pattern: CsrMatrix,
    transpose_perm: Permutation,
}

/// What [`SquaresMatrix::patch`] did, for delta-solve reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct SquaresPatchStats {
    /// Rows re-enumerated from the patched graphs.
    pub rows_reenumerated: usize,
    /// Rows whose old column lists were carried over through the remap.
    pub rows_reused: usize,
    /// Entries carried over without re-enumeration.
    pub entries_reused: usize,
    /// Total entries in the patched matrix.
    pub nnz: usize,
}

impl SquaresMatrix {
    /// Enumerate all squares between `A`, `B`, `L` in parallel and
    /// assemble the CSR pattern.
    ///
    /// For each edge `e = (i,i')` of `L`, the candidate partners are
    /// pairs `(j, j')` with `j ∈ adj_A(i)`, `j' ∈ adj_B(i')` and
    /// `(j,j') ∈ E_L`. We iterate the smaller adjacency against the
    /// other side's `L` lookup.
    pub fn build(a: &Graph, b: &Graph, l: &BipartiteGraph) -> Self {
        assert!(
            l.num_edges() < u32::MAX as usize - 1,
            "edge ids must fit in u32"
        );
        // Parallel over rows (edges of L); each row's column list is
        // produced sorted because left_edges / neighbor lists are sorted.
        let rows: Vec<Vec<VertexId>> = (0..l.num_edges())
            .into_par_iter()
            .map(|e| {
                let (i, ip) = l.endpoints(e);
                let mut cols: Vec<VertexId> = Vec::new();
                for &j in a.neighbors(i) {
                    for &jp in b.neighbors(ip) {
                        if let Some(f) = l.edge_id(j, jp) {
                            debug_assert_ne!(f, e, "squares cannot be diagonal");
                            cols.push(f as VertexId);
                        }
                    }
                }
                cols.sort_unstable();
                cols
            })
            .collect();

        let m = l.num_edges();
        let mut rowptr = vec![0usize; m + 1];
        for (e, r) in rows.iter().enumerate() {
            rowptr[e + 1] = rowptr[e] + r.len();
        }
        let nnz = rowptr[m];
        let mut colidx = Vec::with_capacity(nnz);
        for r in &rows {
            colidx.extend_from_slice(r);
        }
        let vals = vec![1.0f64; nnz];
        let pattern = CsrMatrix::from_raw(m, m, rowptr, colidx, vals);
        debug_assert!(pattern.is_structurally_symmetric());
        let transpose_perm = pattern.transpose_permutation();
        Self {
            pattern,
            transpose_perm,
        }
    }

    /// Patch this matrix after a structural delta instead of rebuilding
    /// it from scratch.
    ///
    /// `a2`/`b2`/`l2` are the *patched* graphs. `old_to_new` maps old
    /// `L` edge ids to new ones (`usize::MAX` = removed), `new_to_old`
    /// is its inverse (`usize::MAX` = brand-new edge). `core_rows` is
    /// the sorted set of new row ids whose square set may have changed
    /// — the caller derives it from the delta (new rows, rows touching
    /// A/B-delta vertices, partner rows of L-delta edges). Every other
    /// row's old column list is carried over through the id remap;
    /// only core rows are re-enumerated with [`SquaresMatrix::build`]'s
    /// algorithm, so the result is bit-identical to a full rebuild at a
    /// fraction of the work.
    ///
    /// Returns the patched matrix, one `shape_preserved` flag per core
    /// row (true when its column set is unchanged modulo renumbering —
    /// per-entry row state like `sk` can then be carried over 1:1), and
    /// patch statistics.
    pub fn patch(
        &self,
        a2: &Graph,
        b2: &Graph,
        l2: &BipartiteGraph,
        old_to_new: &[usize],
        new_to_old: &[usize],
        core_rows: &[EdgeId],
    ) -> (SquaresMatrix, Vec<bool>, SquaresPatchStats) {
        assert!(
            l2.num_edges() < u32::MAX as usize - 1,
            "edge ids must fit in u32"
        );
        let m2 = l2.num_edges();
        assert_eq!(old_to_new.len(), self.dim());
        assert_eq!(new_to_old.len(), m2);
        debug_assert!(core_rows.windows(2).all(|w| w[0] < w[1]));

        // Re-enumerate core rows with build()'s exact per-row algorithm.
        let core_cols: Vec<Vec<VertexId>> = core_rows
            .par_iter()
            .map(|&e| {
                let (i, ip) = l2.endpoints(e);
                let mut cols: Vec<VertexId> = Vec::new();
                for &j in a2.neighbors(i) {
                    for &jp in b2.neighbors(ip) {
                        if let Some(f) = l2.edge_id(j, jp) {
                            debug_assert_ne!(f, e, "squares cannot be diagonal");
                            cols.push(f as VertexId);
                        }
                    }
                }
                cols.sort_unstable();
                cols
            })
            .collect();

        // Assemble: core rows take their fresh lists; every other row
        // remaps its old column list (monotone map keeps it sorted).
        let mut rowptr = Vec::with_capacity(m2 + 1);
        rowptr.push(0usize);
        let mut colidx: Vec<VertexId> = Vec::with_capacity(self.nnz());
        let mut shape_preserved = vec![false; core_rows.len()];
        let mut entries_reused = 0usize;
        let mut core_iter = core_rows.iter().zip(core_cols.iter()).peekable();
        for e in 0..m2 {
            match core_iter.peek() {
                Some(&(&ce, cols)) if ce == e => {
                    // Shape is preserved when the old row exists and its
                    // surviving remapped columns equal the fresh list.
                    let old = new_to_old[e];
                    if old != usize::MAX {
                        let old_cols = self.row_cols(old);
                        shape_preserved[core_rows.binary_search(&e).unwrap()] = old_cols.len()
                            == cols.len()
                            && old_cols
                                .iter()
                                .zip(cols.iter())
                                .all(|(&oc, &nc)| old_to_new[oc as usize] == nc as usize);
                    }
                    colidx.extend_from_slice(cols);
                    core_iter.next();
                }
                _ => {
                    let old = new_to_old[e];
                    debug_assert_ne!(old, usize::MAX, "non-core rows must map to an old row");
                    for &oc in self.row_cols(old) {
                        let nc = old_to_new[oc as usize];
                        debug_assert_ne!(
                            nc,
                            usize::MAX,
                            "a non-core row referenced a removed column — its partner \
                             rows were not all marked core"
                        );
                        colidx.push(nc as VertexId);
                    }
                    entries_reused += colidx.len() - rowptr[e];
                }
            }
            rowptr.push(colidx.len());
        }
        let nnz = colidx.len();
        let vals = vec![1.0f64; nnz];
        let pattern = CsrMatrix::from_raw(m2, m2, rowptr, colidx, vals);
        debug_assert!(pattern.is_structurally_symmetric());

        // Transpose permutation via the same next-slot walk as
        // `CsrMatrix::transpose_permutation`, but without its O(nnz log)
        // symmetry assertion on the hot path (debug-checked above).
        let mut perm = vec![0usize; nnz];
        let mut next = pattern.rowptr().to_vec();
        for row in 0..m2 {
            for e in pattern.row_range(row) {
                let c = pattern.colidx()[e] as usize;
                let slot = next[c];
                next[c] += 1;
                perm[slot] = e;
            }
        }
        let transpose_perm = Permutation::from_vec(perm);
        let stats = SquaresPatchStats {
            rows_reenumerated: core_rows.len(),
            rows_reused: m2 - core_rows.len(),
            entries_reused,
            nnz,
        };
        (
            SquaresMatrix {
                pattern,
                transpose_perm,
            },
            shape_preserved,
            stats,
        )
    }

    /// Number of stored entries (each overlapping pair counts twice —
    /// the symmetric storage convention of the paper's Table II).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// Number of rows/columns (`|E_L|`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.pattern.nrows()
    }

    /// The underlying CSR pattern (values all 1.0).
    #[inline]
    pub fn pattern(&self) -> &CsrMatrix {
        &self.pattern
    }

    /// Row pointer array.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        self.pattern.rowptr()
    }

    /// Column indices (edge ids of `L`).
    #[inline]
    pub fn colidx(&self) -> &[VertexId] {
        self.pattern.colidx()
    }

    /// Entry-index range of row `e`.
    #[inline]
    pub fn row_range(&self, e: EdgeId) -> std::ops::Range<usize> {
        self.pattern.row_range(e)
    }

    /// Column ids of row `e`.
    #[inline]
    pub fn row_cols(&self, e: EdgeId) -> &[VertexId] {
        self.pattern.row_cols(e)
    }

    /// The transpose value permutation: for a value array `v` over this
    /// pattern, `transpose(v)[k] = v[perm[k]]`.
    #[inline]
    pub fn transpose_perm(&self) -> &Permutation {
        &self.transpose_perm
    }

    /// Gather a transposed value array: `out[k] = vals[perm[k]]`
    /// (parallel).
    pub fn transpose_vals_into(&self, vals: &[f64], out: &mut [f64]) {
        assert_eq!(vals.len(), self.nnz());
        assert_eq!(out.len(), self.nnz());
        let perm = self.transpose_perm.as_slice();
        out.par_iter_mut()
            .zip(perm.par_iter())
            .for_each(|(o, &p)| *o = vals[p]);
    }

    /// Fresh value array over the pattern, filled with `init`.
    pub fn new_vals(&self, init: f64) -> Vec<f64> {
        vec![init; self.nnz()]
    }

    /// `xᵀ S x` for an indicator (or real) vector `x` over `E_L`,
    /// computed in parallel. The overlap count is half of this.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim());
        (0..self.dim())
            .into_par_iter()
            .map(|e| {
                if x[e] == 0.0 {
                    return 0.0;
                }
                let mut acc = 0.0;
                for &f in self.row_cols(e) {
                    acc += x[f as usize];
                }
                acc * x[e]
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles with identity L plus one extra candidate.
    fn triangle_problem() -> (Graph, Graph, BipartiteGraph) {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 1, 0.5)],
        );
        (a, b, l)
    }

    #[test]
    fn squares_of_triangles() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        assert_eq!(s.dim(), 4);
        // Identity pairs: ((0,0),(1,1)), ((0,0),(2,2)), ((1,1),(2,2))
        // each stored twice = 6. Extra edge (0,1): pairs with (j,j')
        // where j ∈ {1,2}, j' ∈ {0,2} and (j,j') ∈ L: (2,2) only -> 2 more.
        // Also (0,1) with (1,0)? (1,0) not in L. Total 8.
        assert_eq!(s.nnz(), 8);
        let e01 = l.edge_id(0, 1).unwrap();
        let e22 = l.edge_id(2, 2).unwrap();
        assert!(s.row_cols(e01).contains(&(e22 as u32)));
    }

    #[test]
    fn pattern_is_symmetric_with_empty_diagonal() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        assert!(s.pattern().is_structurally_symmetric());
        for e in 0..s.dim() {
            assert!(!s.row_cols(e).contains(&(e as u32)));
        }
    }

    #[test]
    fn quadratic_form_counts_overlaps_twice() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        // identity matching indicator
        let mut x = vec![0.0; 4];
        for i in 0..3 {
            x[l.edge_id(i, i).unwrap()] = 1.0;
        }
        // 3 overlapped edges -> x'Sx = 6
        assert_eq!(s.quadratic_form(&x), 6.0);
    }

    #[test]
    fn transpose_vals_roundtrip() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        let vals: Vec<f64> = (0..s.nnz()).map(|i| i as f64).collect();
        let mut t = vec![0.0; s.nnz()];
        s.transpose_vals_into(&vals, &mut t);
        let mut back = vec![0.0; s.nnz()];
        s.transpose_vals_into(&t, &mut back);
        assert_eq!(vals, back); // transpose is an involution
    }

    #[test]
    fn patch_with_all_core_rows_matches_rebuild() {
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        // Remove candidate (0,1), add (1,0); drop A edge (2,0).
        let d = netalign_graph::delta::CandidateDelta {
            insert: vec![(1, 0, 0.4)],
            remove: vec![(0, 1)],
            ..Default::default()
        };
        let applied = d.apply(&l).unwrap();
        let a2 = netalign_graph::delta::GraphDelta {
            remove: vec![(2, 0)],
            ..Default::default()
        }
        .apply(&a)
        .unwrap();
        let core: Vec<EdgeId> = (0..applied.graph.num_edges()).collect();
        let (patched, _, stats) = s.patch(
            &a2,
            &b,
            &applied.graph,
            &applied.old_to_new,
            &applied.new_to_old(),
            &core,
        );
        let rebuilt = SquaresMatrix::build(&a2, &b, &applied.graph);
        assert_eq!(patched.pattern(), rebuilt.pattern());
        assert_eq!(patched.transpose_perm(), rebuilt.transpose_perm());
        assert_eq!(stats.rows_reenumerated, core.len());
        assert_eq!(stats.rows_reused, 0);
    }

    #[test]
    fn patch_with_no_core_rows_keeps_the_pattern() {
        // A pure reweight never changes S: empty core set, identity map.
        let (a, b, l) = triangle_problem();
        let s = SquaresMatrix::build(&a, &b, &l);
        let ids: Vec<usize> = (0..l.num_edges()).collect();
        let (patched, flags, stats) = s.patch(&a, &b, &l, &ids, &ids, &[]);
        assert_eq!(patched.pattern(), s.pattern());
        assert_eq!(patched.transpose_perm(), s.transpose_perm());
        assert!(flags.is_empty());
        assert_eq!(stats.entries_reused, s.nnz());
    }

    #[test]
    fn empty_graphs_give_empty_s() {
        let a = Graph::empty(2);
        let b = Graph::empty(2);
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]);
        let s = SquaresMatrix::build(&a, &b, &l);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.quadratic_form(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn square_needs_both_graph_edges() {
        // Edge only in A, not B: no squares.
        let a = Graph::from_edges(2, vec![(0, 1)]);
        let b = Graph::empty(2);
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]);
        let s = SquaresMatrix::build(&a, &b, &l);
        assert_eq!(s.nnz(), 0);
    }
}
