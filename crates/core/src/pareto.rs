//! Pareto-frontier extraction over (weight, overlap) points — the
//! analytical companion to the paper's Figure 3 scatter: for each
//! method, the frontier shows which (wᵀx, xᵀSx/2) trade-offs the
//! parameter sweep can actually reach.

/// A labelled scatter point.
#[derive(Clone, Debug, PartialEq)]
pub struct ScatterPoint {
    /// Matching weight `wᵀx`.
    pub weight: f64,
    /// Overlap count `xᵀSx/2`.
    pub overlap: f64,
    /// Free-form label (e.g. "BP α=1 β=2 γ=0.99").
    pub label: String,
}

/// The subset of points not dominated by any other point (maximizing
/// both coordinates), sorted by descending weight. Ties are kept.
pub fn pareto_frontier(points: &[ScatterPoint]) -> Vec<ScatterPoint> {
    let mut sorted: Vec<&ScatterPoint> = points.iter().collect();
    // Sort by weight desc, then overlap desc.
    sorted.sort_by(|a, b| {
        b.weight
            .total_cmp(&a.weight)
            .then(b.overlap.total_cmp(&a.overlap))
    });
    let mut frontier: Vec<ScatterPoint> = Vec::new();
    let mut best_overlap = f64::NEG_INFINITY;
    for p in sorted {
        if p.overlap > best_overlap {
            frontier.push(p.clone());
            best_overlap = p.overlap;
        } else if p.overlap == best_overlap && frontier.last().is_some_and(|l| l.weight == p.weight)
        {
            frontier.push(p.clone()); // keep exact ties
        }
    }
    frontier
}

/// True when `a` dominates `b` (at least as good in both coordinates,
/// strictly better in one).
pub fn dominates(a: &ScatterPoint, b: &ScatterPoint) -> bool {
    a.weight >= b.weight && a.overlap >= b.overlap && (a.weight > b.weight || a.overlap > b.overlap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(w: f64, o: f64) -> ScatterPoint {
        ScatterPoint {
            weight: w,
            overlap: o,
            label: String::new(),
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = vec![pt(3.0, 1.0), pt(2.0, 2.0), pt(1.0, 3.0), pt(1.5, 1.5)];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 3);
        assert!(!f.contains(&pt(1.5, 1.5)));
    }

    #[test]
    fn frontier_is_sorted_by_weight_desc() {
        let pts = vec![pt(1.0, 3.0), pt(3.0, 1.0), pt(2.0, 2.0)];
        let f = pareto_frontier(&pts);
        let ws: Vec<f64> = f.iter().map(|p| p.weight).collect();
        assert_eq!(ws, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn single_dominant_point_wins() {
        let pts = vec![pt(5.0, 5.0), pt(4.0, 4.0), pt(3.0, 1.0)];
        let f = pareto_frontier(&pts);
        assert_eq!(f, vec![pt(5.0, 5.0)]);
    }

    #[test]
    fn dominance_relation() {
        assert!(dominates(&pt(2.0, 2.0), &pt(1.0, 2.0)));
        assert!(!dominates(&pt(2.0, 1.0), &pt(1.0, 2.0)));
        assert!(!dominates(&pt(2.0, 2.0), &pt(2.0, 2.0)));
    }

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn frontier_members_are_mutually_non_dominating() {
        let pts: Vec<ScatterPoint> = (0..30)
            .map(|i| pt(((i * 7) % 13) as f64, ((i * 5) % 11) as f64))
            .collect();
        let f = pareto_frontier(&pts);
        for a in &f {
            for b in &f {
                assert!(!dominates(a, b) || a == b || !dominates(b, a));
            }
        }
        // And no input point dominates a frontier point.
        for p in &pts {
            for fp in &f {
                assert!(!dominates(p, fp), "{p:?} dominates frontier {fp:?}");
            }
        }
    }
}
