//! Objective evaluation: `α wᵀx + (β/2) xᵀSx`.

use crate::problem::NetAlignProblem;
use netalign_matching::Matching;

/// The three components of an evaluated alignment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectiveValue {
    /// `wᵀx` — total similarity weight of the matched pairs.
    pub weight: f64,
    /// `xᵀSx / 2` — number of overlapped edges.
    pub overlap: f64,
    /// `α·weight + β·overlap`.
    pub total: f64,
}

/// Evaluate an indicator vector `x` over `E_L`.
pub fn evaluate_indicator(p: &NetAlignProblem, x: &[f64], alpha: f64, beta: f64) -> ObjectiveValue {
    assert_eq!(x.len(), p.l.num_edges());
    let weight: f64 = x.iter().zip(p.l.weights()).map(|(&xi, &wi)| xi * wi).sum();
    let overlap = p.s.quadratic_form(x) / 2.0;
    ObjectiveValue {
        weight,
        overlap,
        total: alpha * weight + beta * overlap,
    }
}

/// Evaluate a matching without materializing the indicator when
/// counting overlaps: for each matched edge `e`, count matched partners
/// in row `e` of `S`.
pub fn evaluate_matching(
    p: &NetAlignProblem,
    m: &Matching,
    alpha: f64,
    beta: f64,
) -> ObjectiveValue {
    let mut x = vec![false; p.l.num_edges()];
    let mut weight = 0.0;
    for e in m.edge_ids(&p.l) {
        x[e] = true;
        weight += p.l.weight(e);
    }
    let mut twice_overlap = 0usize;
    for e in 0..p.l.num_edges() {
        if !x[e] {
            continue;
        }
        for &f in p.s.row_cols(e) {
            if x[f as usize] {
                twice_overlap += 1;
            }
        }
    }
    let overlap = twice_overlap as f64 / 2.0;
    ObjectiveValue {
        weight,
        overlap,
        total: alpha * weight + beta * overlap,
    }
}

/// [`evaluate_matching`] on a caller-owned scratch mark array, for
/// steady-state loops that must not allocate. `marks` must be all-false
/// of length `|E_L|` on entry and is restored to all-false on exit
/// (only the matched entries are touched, so no O(m) clear is paid).
/// Values are bit-identical to [`evaluate_matching`]: the matched edges
/// are visited in the same (left-vertex ascending) order.
pub fn evaluate_matching_with_scratch(
    p: &NetAlignProblem,
    m: &Matching,
    alpha: f64,
    beta: f64,
    marks: &mut [bool],
) -> ObjectiveValue {
    assert_eq!(marks.len(), p.l.num_edges());
    let mut weight = 0.0;
    for (a, b) in m.pairs() {
        let e = p.l.edge_id(a, b).expect("matched pair must be an L edge");
        marks[e] = true;
        weight += p.l.weight(e);
    }
    let mut twice_overlap = 0usize;
    for e in 0..p.l.num_edges() {
        if !marks[e] {
            continue;
        }
        for &f in p.s.row_cols(e) {
            if marks[f as usize] {
                twice_overlap += 1;
            }
        }
    }
    for (a, b) in m.pairs() {
        let e = p.l.edge_id(a, b).expect("matched pair must be an L edge");
        marks[e] = false;
    }
    let overlap = twice_overlap as f64 / 2.0;
    ObjectiveValue {
        weight,
        overlap,
        total: alpha * weight + beta * overlap,
    }
}

/// The paper's §III.A "terrible" upper bound obtained by ignoring the
/// matching constraints entirely: `α·eᵀw + (β/2)·eᵀSe`. MR's Lagrangian
/// bound is always at least this tight; exposed for comparison and
/// sanity checks.
pub fn trivial_upper_bound(p: &NetAlignProblem, alpha: f64, beta: f64) -> f64 {
    let wsum: f64 = p.l.weights().iter().filter(|w| **w > 0.0).sum();
    alpha * wsum + beta / 2.0 * p.s.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::{BipartiteGraph, Graph};

    fn problem() -> NetAlignProblem {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (0, 1, 0.5)],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn identity_matching_value() {
        let p = problem();
        let mut m = Matching::empty(3, 3);
        for i in 0..3 {
            m.add_pair(i, i);
        }
        let v = evaluate_matching(&p, &m, 1.0, 2.0);
        assert_eq!(v.weight, 6.0);
        assert_eq!(v.overlap, 3.0);
        assert_eq!(v.total, 12.0);
    }

    #[test]
    fn indicator_and_matching_paths_agree() {
        let p = problem();
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 1);
        m.add_pair(2, 2);
        let via_m = evaluate_matching(&p, &m, 0.5, 1.5);
        let via_x = evaluate_indicator(&p, &m.indicator(&p.l), 0.5, 1.5);
        assert_eq!(via_m, via_x);
    }

    #[test]
    fn scratch_path_is_bit_identical_and_restores_marks() {
        let p = problem();
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 1);
        m.add_pair(2, 2);
        let mut marks = vec![false; p.l.num_edges()];
        for (alpha, beta) in [(1.0, 2.0), (0.3, 1.7)] {
            let plain = evaluate_matching(&p, &m, alpha, beta);
            let scratch = evaluate_matching_with_scratch(&p, &m, alpha, beta, &mut marks);
            assert_eq!(plain.weight.to_bits(), scratch.weight.to_bits());
            assert_eq!(plain.overlap.to_bits(), scratch.overlap.to_bits());
            assert_eq!(plain.total.to_bits(), scratch.total.to_bits());
            assert!(marks.iter().all(|&b| !b), "marks must be restored");
        }
    }

    #[test]
    fn trivial_bound_dominates_any_matching() {
        let p = problem();
        let bound = trivial_upper_bound(&p, 1.0, 2.0);
        let mut m = Matching::empty(3, 3);
        for i in 0..3 {
            m.add_pair(i, i);
        }
        let v = evaluate_matching(&p, &m, 1.0, 2.0);
        assert!(bound >= v.total);
        // "terrible": it is the sum of everything
        assert_eq!(bound, 6.5 + p.s.nnz() as f64);
    }

    #[test]
    fn empty_matching_is_zero() {
        let p = problem();
        let m = Matching::empty(3, 3);
        let v = evaluate_matching(&p, &m, 1.0, 1.0);
        assert_eq!(v.total, 0.0);
    }

    #[test]
    fn partial_identity_has_partial_overlap() {
        let p = problem();
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 0);
        m.add_pair(1, 1);
        // one overlapping edge pair ((0,0),(1,1)) since (0,1) in both graphs
        let v = evaluate_matching(&p, &m, 1.0, 2.0);
        assert_eq!(v.overlap, 1.0);
        assert_eq!(v.weight, 3.0);
        assert_eq!(v.total, 5.0);
    }
}
