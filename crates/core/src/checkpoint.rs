//! Versioned, checksummed engine-state snapshots for crash recovery.
//!
//! A checkpoint captures everything a [`crate::bp::BpEngine`] /
//! [`crate::mr::MrEngine`] needs to continue a run *bit-identically*:
//! the damped messages or multipliers, the engine-local damping/step
//! state, the best-so-far iterate, the staged-but-unrounded BP batch,
//! the iteration history and the run counters. The runtime's
//! deterministic chunk decomposition (identical reductions at every
//! pool size) makes this a provable guarantee, asserted end-to-end by
//! the resilience suite: kill → resume equals the uninterrupted run.
//! Neither engine holds RNG state — every kernel is deterministic — so
//! nothing stochastic needs to be captured.
//!
//! # File format (version 2)
//!
//! Version 2 extends the matcher-counter block with the Suitor and
//! warm-start counters (`proposals`, `displacements`, `warm_hits`,
//! `reseeded_vertices`); version-1 files are rejected with
//! [`CheckpointError::VersionMismatch`]. Little-endian throughout:
//!
//! ```text
//! magic      4 bytes   b"NACP"
//! version    u32       2
//! engine     u8        0 = BP, 1 = MR
//! shape      4 × u64   (|V_A|, |V_B|, |E_L|, nnz(S))
//! config     u64       FNV-1a 64 of the canonical config string
//! payload_len u64
//! checksum   u64       FNV-1a 64 over the payload bytes
//! payload    payload_len bytes (engine-specific state)
//! ```
//!
//! Writes are atomic: serialize to `<file>.tmp` in the target
//! directory, `fsync`, rename over the final name, then best-effort
//! `fsync` the directory — a crash mid-write can leave a stale `.tmp`
//! but never a half-written checkpoint under the real name. Loads
//! validate magic, version, engine kind, problem shape, config
//! fingerprint and checksum, and reject failures with a typed
//! [`CheckpointError`] naming the cause; no `unwrap` anywhere on the
//! load path. Wall-clock step timings are intentionally *not*
//! checkpointed: the bit-identity contract covers objectives,
//! matchings, bounds and counters, not durations.

use crate::config::AlignConfig;
use crate::problem::NetAlignProblem;
use crate::result::IterationRecord;
use crate::trace::faults;
use netalign_trace::{AlgoCounters, MatcherCounterSnapshot};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Format version written by this build.
pub const CHECKPOINT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"NACP";
const HEADER_LEN: usize = 4 + 4 + 1 + 4 * 8 + 8 + 8 + 8;

/// Which engine a checkpoint belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Belief propagation ([`crate::bp::BpEngine`]).
    Bp,
    /// Matching relaxation ([`crate::mr::MrEngine`]).
    Mr,
}

impl EngineKind {
    /// Stable display name (also the checkpoint file-name infix).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Bp => "bp",
            EngineKind::Mr => "mr",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            EngineKind::Bp => 0,
            EngineKind::Mr => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<EngineKind> {
        match tag {
            0 => Some(EngineKind::Bp),
            1 => Some(EngineKind::Mr),
            _ => None,
        }
    }
}

/// Why a checkpoint could not be written or loaded. Every variant
/// names the offending file; loads distinguish structural damage
/// ([`CheckpointError::Corrupt`]) from honest mismatches (version,
/// engine, shape, config) so callers can tell "retry another file"
/// from "wrong file".
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io {
        /// File (or directory) involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// Written by an incompatible format version.
    VersionMismatch {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// Checkpoint belongs to the other engine.
    WrongEngine {
        /// Offending file.
        path: PathBuf,
        /// Engine named in the header.
        found: &'static str,
        /// Engine the caller is resuming.
        expected: &'static str,
    },
    /// Checkpoint was taken on a different problem instance.
    ShapeMismatch {
        /// Offending file.
        path: PathBuf,
        /// `(|V_A|, |V_B|, |E_L|, nnz(S))` in the header.
        found: (u64, u64, u64, u64),
        /// Shape of the problem being resumed.
        expected: (u64, u64, u64, u64),
    },
    /// Checkpoint was taken under a different [`AlignConfig`].
    ConfigMismatch {
        /// Offending file.
        path: PathBuf,
    },
    /// Truncated file, checksum failure, or malformed payload.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint I/O error on {}: {source}", path.display())
            }
            CheckpointError::BadMagic { path } => {
                write!(f, "{} is not a checkpoint file (bad magic)", path.display())
            }
            CheckpointError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: checkpoint version {found}, this build reads version {expected}",
                path.display()
            ),
            CheckpointError::WrongEngine {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: checkpoint is for the {found} engine, expected {expected}",
                path.display()
            ),
            CheckpointError::ShapeMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: checkpoint problem shape {found:?} does not match {expected:?}",
                path.display()
            ),
            CheckpointError::ConfigMismatch { path } => write!(
                f,
                "{}: checkpoint was taken under a different configuration",
                path.display()
            ),
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "{}: corrupt checkpoint ({detail})", path.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Engine state
// ---------------------------------------------------------------------

/// Serializable snapshot of a [`crate::bp::BpEngine`] at an iteration
/// boundary. Only the independent state is captured: after damping the
/// previous iterates equal the current ones and the guard's safe copy
/// equals the (verified finite) iterate, so `y`/`z`/`sk` reconstruct
/// all three buffer families on resume.
#[derive(Clone, Debug, PartialEq)]
pub struct BpState {
    /// Iterations completed.
    pub k: usize,
    /// Engine-local damping base (differs from the configured `γ` after
    /// a numeric recovery tightened it).
    pub gamma: f64,
    /// Damped `y` messages over `E_L`.
    pub y: Vec<f64>,
    /// Damped `z` messages over `E_L`.
    pub z: Vec<f64>,
    /// Damped `S⁽ᵏ⁾` values over the pattern of `S`.
    pub sk: Vec<f64>,
    /// Iteration numbers of the staged-but-unrounded batch.
    pub pending_iter: Vec<usize>,
    /// Staged heuristic vectors awaiting the next batched rounding.
    pub pending_bufs: Vec<Vec<f64>>,
    /// Best `(objective, iteration)` so far.
    pub best: Option<(f64, usize)>,
    /// Heuristic vector behind `best`.
    pub best_g: Vec<f64>,
    /// Per-rounding history records so far.
    pub history: Vec<IterationRecord>,
    /// Aligner counters so far.
    pub algo: AlgoCounters,
    /// Matcher counters so far.
    pub matcher: MatcherCounterSnapshot,
}

/// Serializable snapshot of a [`crate::mr::MrEngine`] at an iteration
/// boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct MrState {
    /// Iterations completed.
    pub k: usize,
    /// Engine-local subgradient step size (halved by `mstep` stalls and
    /// numeric recoveries).
    pub gamma: f64,
    /// Lagrange multipliers over the pattern of `S`.
    pub u_vals: Vec<f64>,
    /// Best `(objective, iteration)` so far.
    pub best: Option<(f64, usize)>,
    /// Heuristic vector behind `best`.
    pub best_g: Vec<f64>,
    /// Best (smallest) upper bound so far.
    pub best_upper: f64,
    /// Iterations since the upper bound last improved.
    pub stall: usize,
    /// Per-iteration history records so far.
    pub history: Vec<IterationRecord>,
    /// Aligner counters so far.
    pub algo: AlgoCounters,
    /// Matcher counters so far.
    pub matcher: MatcherCounterSnapshot,
}

/// A parsed checkpoint: the engine-specific state.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointState {
    /// BP engine state.
    Bp(BpState),
    /// MR engine state.
    Mr(MrState),
}

impl CheckpointState {
    /// Which engine this state belongs to.
    pub fn engine(&self) -> EngineKind {
        match self {
            CheckpointState::Bp(_) => EngineKind::Bp,
            CheckpointState::Mr(_) => EngineKind::Mr,
        }
    }

    /// Iterations completed at snapshot time.
    pub fn iteration(&self) -> usize {
        match self {
            CheckpointState::Bp(s) => s.k,
            CheckpointState::Mr(s) => s.k,
        }
    }
}

// ---------------------------------------------------------------------
// FNV-1a + config fingerprint
// ---------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit hash — the checksum used by every on-disk format in
/// the workspace (checkpoints, serve-layer spill files, the operations
/// journal), exported so they all agree on one implementation.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// Fingerprint of every config field that influences the iteration
/// trajectory. Observability toggles (`record_history`,
/// `trace_matcher`) and the checkpoint cadence itself are deliberately
/// excluded: they never change the numbers, so a resume may e.g. use a
/// different checkpoint interval than the original run.
pub fn config_fingerprint(config: &AlignConfig) -> u64 {
    let canonical = format!(
        "alpha={};beta={};gamma={};iterations={};mstep={};batch={};matcher={:?};damping={:?};enriched={};final_exact={};guards={};rounding={:?};warm={}",
        config.alpha.to_bits(),
        config.beta.to_bits(),
        config.gamma.to_bits(),
        config.iterations,
        config.mstep,
        config.batch,
        config.matcher,
        config.damping,
        config.enriched_rounding,
        config.final_exact_round,
        config.numeric_guards,
        config.rounding,
        config.warm_start,
    );
    fnv1a(canonical.as_bytes())
}

fn problem_shape(p: &NetAlignProblem) -> (u64, u64, u64, u64) {
    let (na, nb, m, nnz) = p.shape();
    (na as u64, nb as u64, m as u64, nnz as u64)
}

// ---------------------------------------------------------------------
// Payload serialization
// ---------------------------------------------------------------------

/// Little-endian payload builder shared by every on-disk format in the
/// workspace (checkpoint payloads, serve-layer spill files, journal
/// records). Pure in-memory appends; framing/checksums stay with the
/// caller.
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl Default for PayloadWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PayloadWriter {
    /// Empty buffer.
    pub fn new() -> Self {
        PayloadWriter { buf: Vec::new() }
    }

    /// Consume the writer, yielding the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` by bit pattern (exact round-trip, NaN-safe).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Append a length-prefixed `usize` slice.
    pub fn put_usize_slice(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    fn put_opt_best(&mut self, best: Option<(f64, usize)>) {
        match best {
            None => self.put_u8(0),
            Some((obj, iter)) => {
                self.put_u8(1);
                self.put_f64(obj);
                self.put_usize(iter);
            }
        }
    }

    fn put_history(&mut self, history: &[IterationRecord]) {
        self.put_usize(history.len());
        for rec in history {
            self.put_usize(rec.iteration);
            self.put_f64(rec.objective);
            self.put_f64(rec.weight);
            self.put_f64(rec.overlap);
            match rec.upper_bound {
                None => self.put_u8(0),
                Some(ub) => {
                    self.put_u8(1);
                    self.put_f64(ub);
                }
            }
        }
    }

    fn put_algo(&mut self, algo: &AlgoCounters) {
        self.put_u64(algo.messages_updated);
        self.put_u64(algo.rounding_invocations);
        self.put_u64(algo.best_improvements);
        self.put_u64(algo.numeric_recoveries);
        self.put_usize(algo.rounding_batch_sizes.len());
        for &s in &algo.rounding_batch_sizes {
            self.put_u64(s);
        }
    }

    fn put_matcher(&mut self, m: &MatcherCounterSnapshot) {
        self.put_u64(m.rounds);
        self.put_u64(m.find_mate_initial);
        self.put_u64(m.find_mate_reruns);
        self.put_u64(m.match_attempts);
        self.put_u64(m.matched_pairs);
        self.put_u64(m.cas_failures);
        self.put_u64(m.queue_peak);
        self.put_u64(m.proposals);
        self.put_u64(m.displacements);
        self.put_u64(m.warm_hits);
        self.put_u64(m.reseeded_vertices);
    }
}

/// Bounded cursor over the payload; every read is length-checked and
/// reports a descriptive corruption detail instead of panicking.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// Borrow the next `n` bytes, or a descriptive truncation error.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Next `u64` (little-endian).
    pub fn get_u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Next `u64`, converted to `usize`.
    pub fn get_usize(&mut self, what: &str) -> Result<usize, String> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| format!("{what}: value {v} exceeds usize"))
    }

    /// Next `f64` by bit pattern.
    pub fn get_f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Length-prefixed `f64` vector whose length must equal `expect`
    /// (a problem dimension), guarding against shape-coherent headers
    /// with incoherent payloads.
    pub fn get_f64_vec(&mut self, expect: usize, what: &str) -> Result<Vec<f64>, String> {
        let len = self.get_usize(what)?;
        if len != expect {
            return Err(format!("{what}: length {len}, expected {expect}"));
        }
        let bytes = self.take(len * 8, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(arr))
            })
            .collect())
    }

    /// Length-prefixed `usize` vector, capped at `max` entries.
    pub fn get_usize_vec(&mut self, max: usize, what: &str) -> Result<Vec<usize>, String> {
        let len = self.get_usize(what)?;
        if len > max {
            return Err(format!("{what}: implausible length {len} (cap {max})"));
        }
        (0..len).map(|_| self.get_usize(what)).collect()
    }

    fn get_opt_best(&mut self) -> Result<Option<(f64, usize)>, String> {
        match self.get_u8("best flag")? {
            0 => Ok(None),
            1 => {
                let obj = self.get_f64("best objective")?;
                let iter = self.get_usize("best iteration")?;
                Ok(Some((obj, iter)))
            }
            t => Err(format!("best flag: invalid tag {t}")),
        }
    }

    fn get_history(&mut self, max: usize) -> Result<Vec<IterationRecord>, String> {
        let len = self.get_usize("history length")?;
        if len > max {
            return Err(format!("history length {len} implausible (cap {max})"));
        }
        (0..len)
            .map(|_| {
                let iteration = self.get_usize("history iteration")?;
                let objective = self.get_f64("history objective")?;
                let weight = self.get_f64("history weight")?;
                let overlap = self.get_f64("history overlap")?;
                let upper_bound = match self.get_u8("history ub flag")? {
                    0 => None,
                    1 => Some(self.get_f64("history upper bound")?),
                    t => return Err(format!("history ub flag: invalid tag {t}")),
                };
                Ok(IterationRecord {
                    iteration,
                    objective,
                    weight,
                    overlap,
                    upper_bound,
                })
            })
            .collect()
    }

    fn get_algo(&mut self, max_batches: usize) -> Result<AlgoCounters, String> {
        let messages_updated = self.get_u64("algo.messages_updated")?;
        let rounding_invocations = self.get_u64("algo.rounding_invocations")?;
        let best_improvements = self.get_u64("algo.best_improvements")?;
        let numeric_recoveries = self.get_u64("algo.numeric_recoveries")?;
        let len = self.get_usize("algo.batch_sizes length")?;
        if len > max_batches {
            return Err(format!("algo.batch_sizes length {len} implausible"));
        }
        let rounding_batch_sizes = (0..len)
            .map(|_| self.get_u64("algo.batch_sizes entry"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AlgoCounters {
            messages_updated,
            rounding_invocations,
            rounding_batch_sizes,
            best_improvements,
            numeric_recoveries,
        })
    }

    fn get_matcher(&mut self) -> Result<MatcherCounterSnapshot, String> {
        Ok(MatcherCounterSnapshot {
            rounds: self.get_u64("matcher.rounds")?,
            find_mate_initial: self.get_u64("matcher.find_mate_initial")?,
            find_mate_reruns: self.get_u64("matcher.find_mate_reruns")?,
            match_attempts: self.get_u64("matcher.match_attempts")?,
            matched_pairs: self.get_u64("matcher.matched_pairs")?,
            cas_failures: self.get_u64("matcher.cas_failures")?,
            queue_peak: self.get_u64("matcher.queue_peak")?,
            proposals: self.get_u64("matcher.proposals")?,
            displacements: self.get_u64("matcher.displacements")?,
            warm_hits: self.get_u64("matcher.warm_hits")?,
            reseeded_vertices: self.get_u64("matcher.reseeded_vertices")?,
        })
    }

    /// Assert the cursor consumed the whole buffer.
    pub fn finish(&self, what: &str) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{what}: {} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn serialize_payload(state: &CheckpointState) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    match state {
        CheckpointState::Bp(s) => {
            w.put_usize(s.k);
            w.put_f64(s.gamma);
            w.put_f64_slice(&s.y);
            w.put_f64_slice(&s.z);
            w.put_f64_slice(&s.sk);
            w.put_usize_slice(&s.pending_iter);
            w.put_usize(s.pending_bufs.len());
            for buf in &s.pending_bufs {
                w.put_f64_slice(buf);
            }
            w.put_opt_best(s.best);
            w.put_f64_slice(&s.best_g);
            w.put_history(&s.history);
            w.put_algo(&s.algo);
            w.put_matcher(&s.matcher);
        }
        CheckpointState::Mr(s) => {
            w.put_usize(s.k);
            w.put_f64(s.gamma);
            w.put_f64_slice(&s.u_vals);
            w.put_opt_best(s.best);
            w.put_f64_slice(&s.best_g);
            w.put_f64(s.best_upper);
            w.put_usize(s.stall);
            w.put_history(&s.history);
            w.put_algo(&s.algo);
            w.put_matcher(&s.matcher);
        }
    }
    w.into_bytes()
}

/// Sanity cap for variable-length payload sections, derived from the
/// configured iteration budget (each iteration contributes at most a
/// handful of records).
fn plausibility_cap(config: &AlignConfig) -> usize {
    4 * config.iterations + 16
}

fn parse_payload(
    payload: &[u8],
    engine: EngineKind,
    p: &NetAlignProblem,
    config: &AlignConfig,
) -> Result<CheckpointState, String> {
    let (_, _, m, nnz) = p.shape();
    let cap = plausibility_cap(config);
    let mut r = PayloadReader::new(payload);
    let state = match engine {
        EngineKind::Bp => {
            let k = r.get_usize("bp.k")?;
            let gamma = r.get_f64("bp.gamma")?;
            let y = r.get_f64_vec(m, "bp.y")?;
            let z = r.get_f64_vec(m, "bp.z")?;
            let sk = r.get_f64_vec(nnz, "bp.sk")?;
            let pending_iter = r.get_usize_vec(cap, "bp.pending_iter")?;
            let n_bufs = r.get_usize("bp.pending_bufs length")?;
            if n_bufs != pending_iter.len() {
                return Err(format!(
                    "bp.pending_bufs length {n_bufs} != pending_iter length {}",
                    pending_iter.len()
                ));
            }
            let pending_bufs = (0..n_bufs)
                .map(|_| r.get_f64_vec(m, "bp.pending buffer"))
                .collect::<Result<Vec<_>, _>>()?;
            let best = r.get_opt_best()?;
            let best_g = r.get_f64_vec(m, "bp.best_g")?;
            let history = r.get_history(cap)?;
            let algo = r.get_algo(cap)?;
            let matcher = r.get_matcher()?;
            CheckpointState::Bp(BpState {
                k,
                gamma,
                y,
                z,
                sk,
                pending_iter,
                pending_bufs,
                best,
                best_g,
                history,
                algo,
                matcher,
            })
        }
        EngineKind::Mr => {
            let k = r.get_usize("mr.k")?;
            let gamma = r.get_f64("mr.gamma")?;
            let u_vals = r.get_f64_vec(nnz, "mr.u_vals")?;
            let best = r.get_opt_best()?;
            let best_g = r.get_f64_vec(m, "mr.best_g")?;
            let best_upper = r.get_f64("mr.best_upper")?;
            let stall = r.get_usize("mr.stall")?;
            let history = r.get_history(cap)?;
            let algo = r.get_algo(cap)?;
            let matcher = r.get_matcher()?;
            CheckpointState::Mr(MrState {
                k,
                gamma,
                u_vals,
                best,
                best_g,
                best_upper,
                stall,
                history,
                algo,
                matcher,
            })
        }
    };
    r.finish("payload")?;
    Ok(state)
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

fn io_err(path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Serialize `state` and write it atomically to `path`. The
/// fault-injection layer may damage the byte buffer on its way out
/// (that is the point: the *loader* must catch it).
pub fn write_checkpoint(
    path: &Path,
    p: &NetAlignProblem,
    config: &AlignConfig,
    state: &CheckpointState,
) -> Result<(), CheckpointError> {
    let payload = serialize_payload(state);
    let shape = problem_shape(p);
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    bytes.push(state.engine().tag());
    for dim in [shape.0, shape.1, shape.2, shape.3] {
        bytes.extend_from_slice(&dim.to_le_bytes());
    }
    bytes.extend_from_slice(&config_fingerprint(config).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    if let Some(damage) = faults::checkpoint_damage() {
        faults::damage_bytes(&mut bytes, damage);
    }

    write_atomic(path, &bytes)
}

/// Write `bytes` to `path` via a same-directory temp file + `fsync` +
/// rename, so a crash never leaves a partial file under `path`.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = dir {
        // Persist the rename itself; best-effort (not all platforms
        // support fsync on directories).
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load and fully validate a checkpoint for `expected` engine, problem
/// and configuration.
pub fn load_checkpoint(
    path: &Path,
    expected: EngineKind,
    p: &NetAlignProblem,
    config: &AlignConfig,
) -> Result<CheckpointState, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let corrupt = |detail: String| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < 4 || bytes[0..4] != MAGIC {
        return Err(CheckpointError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "file is {} bytes, header needs {HEADER_LEN}",
            bytes.len()
        )));
    }
    // Header reads cannot fail on length (checked above); map_err keeps
    // the load path unwrap-free regardless.
    let mut r = PayloadReader::new(&bytes[4..HEADER_LEN]);
    let version = {
        let b = r.take(4, "version").map_err(corrupt)?;
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    };
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let tag = r.get_u8("engine tag").map_err(corrupt)?;
    let engine = EngineKind::from_tag(tag).ok_or_else(|| corrupt(format!("engine tag {tag}")))?;
    if engine != expected {
        return Err(CheckpointError::WrongEngine {
            path: path.to_path_buf(),
            found: engine.name(),
            expected: expected.name(),
        });
    }
    let mut shape = [0u64; 4];
    for s in shape.iter_mut() {
        *s = r.get_u64("shape").map_err(corrupt)?;
    }
    let found = (shape[0], shape[1], shape[2], shape[3]);
    let expected_shape = problem_shape(p);
    if found != expected_shape {
        return Err(CheckpointError::ShapeMismatch {
            path: path.to_path_buf(),
            found,
            expected: expected_shape,
        });
    }
    let fingerprint = r.get_u64("config fingerprint").map_err(corrupt)?;
    if fingerprint != config_fingerprint(config) {
        return Err(CheckpointError::ConfigMismatch {
            path: path.to_path_buf(),
        });
    }
    let payload_len = r.get_usize("payload length").map_err(corrupt)?;
    let checksum = r.get_u64("checksum").map_err(corrupt)?;
    let payload = bytes
        .get(HEADER_LEN..)
        .filter(|pl| pl.len() == payload_len)
        .ok_or_else(|| {
            corrupt(format!(
                "payload is {} bytes, header says {payload_len}",
                bytes.len() - HEADER_LEN
            ))
        })?;
    let actual = fnv1a(payload);
    if actual != checksum {
        return Err(corrupt(format!(
            "checksum mismatch: stored {checksum:#018x}, computed {actual:#018x}"
        )));
    }
    parse_payload(payload, engine, p, config).map_err(corrupt)
}

// ---------------------------------------------------------------------
// Checkpoint directories
// ---------------------------------------------------------------------

/// File name for engine `engine` at iteration `k`:
/// `ckpt-<engine>-<k:06>.bin`. Zero-padding makes lexicographic order
/// equal iteration order, which the latest-first scan relies on.
pub fn checkpoint_file_name(engine: EngineKind, k: usize) -> String {
    format!("ckpt-{}-{k:06}.bin", engine.name())
}

/// Checkpoint files for `engine` in `dir`, newest (highest iteration)
/// first. Missing or unreadable directories yield an empty list.
pub fn list_checkpoints(dir: &Path, engine: EngineKind) -> Vec<PathBuf> {
    let prefix = format!("ckpt-{}-", engine.name());
    let mut found: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".bin"))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    found.sort();
    found.reverse();
    found
}

/// Load the newest checkpoint in `dir` that validates cleanly, skipping
/// damaged or mismatched files (each skip is recorded in the returned
/// attempts list). Returns `Ok(None)` when no file validates.
#[allow(clippy::type_complexity)]
pub fn load_latest_checkpoint(
    dir: &Path,
    expected: EngineKind,
    p: &NetAlignProblem,
    config: &AlignConfig,
) -> Result<Option<(PathBuf, CheckpointState)>, Vec<(PathBuf, CheckpointError)>> {
    let mut attempts = Vec::new();
    for path in list_checkpoints(dir, expected) {
        match load_checkpoint(&path, expected, p, config) {
            Ok(state) => return Ok(Some((path, state))),
            Err(e) => attempts.push((path, e)),
        }
    }
    if attempts.is_empty() {
        Ok(None)
    } else {
        Err(attempts)
    }
}

/// Delete all but the newest `keep` checkpoints for `engine` in `dir`
/// (best-effort; removal failures are ignored).
pub fn prune_checkpoints(dir: &Path, engine: EngineKind, keep: usize) {
    for stale in list_checkpoints(dir, engine).into_iter().skip(keep) {
        let _ = std::fs::remove_file(stale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::{BipartiteGraph, Graph};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_problem() -> NetAlignProblem {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let l = BipartiteGraph::from_entries(3, 3, vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        NetAlignProblem::new(a, b, l)
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "netalign-ckpt-test-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn sample_bp_state(p: &NetAlignProblem) -> CheckpointState {
        let (_, _, m, nnz) = p.shape();
        CheckpointState::Bp(BpState {
            k: 7,
            gamma: 0.495,
            y: (0..m).map(|i| i as f64 * 0.5).collect(),
            z: (0..m).map(|i| -(i as f64)).collect(),
            sk: (0..nnz).map(|i| i as f64 + 0.25).collect(),
            pending_iter: vec![6, 7],
            pending_bufs: vec![vec![1.0; m], vec![2.0; m]],
            best: Some((3.5, 4)),
            best_g: vec![0.5; m],
            history: vec![IterationRecord {
                iteration: 4,
                objective: 3.5,
                weight: 2.0,
                overlap: 0.75,
                upper_bound: None,
            }],
            algo: AlgoCounters {
                messages_updated: 123,
                rounding_invocations: 3,
                rounding_batch_sizes: vec![2, 2, 1],
                best_improvements: 2,
                numeric_recoveries: 1,
            },
            matcher: MatcherCounterSnapshot {
                rounds: 5,
                matched_pairs: 9,
                ..Default::default()
            },
        })
    }

    fn sample_mr_state(p: &NetAlignProblem) -> CheckpointState {
        let (_, _, m, nnz) = p.shape();
        CheckpointState::Mr(MrState {
            k: 11,
            gamma: 0.2,
            u_vals: (0..nnz).map(|i| (i as f64) * 0.125 - 1.0).collect(),
            best: Some((2.0, 9)),
            best_g: vec![0.25; m],
            best_upper: 2.5,
            stall: 3,
            history: vec![IterationRecord {
                iteration: 9,
                objective: 2.0,
                weight: 2.0,
                overlap: 0.0,
                upper_bound: Some(2.5),
            }],
            algo: AlgoCounters::default(),
            matcher: MatcherCounterSnapshot::default(),
        })
    }

    #[test]
    fn bp_state_round_trips() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("bp-rt");
        let path = dir.join(checkpoint_file_name(EngineKind::Bp, 7));
        let state = sample_bp_state(&p);
        write_checkpoint(&path, &p, &cfg, &state).expect("write");
        let loaded = load_checkpoint(&path, EngineKind::Bp, &p, &cfg).expect("load");
        assert_eq!(loaded, state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mr_state_round_trips() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("mr-rt");
        let path = dir.join(checkpoint_file_name(EngineKind::Mr, 11));
        let state = sample_mr_state(&p);
        write_checkpoint(&path, &p, &cfg, &state).expect("write");
        let loaded = load_checkpoint(&path, EngineKind::Mr, &p, &cfg).expect("load");
        assert_eq!(loaded, state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("magic");
        let path = dir.join("not-a-checkpoint.bin");
        std::fs::write(
            &path,
            b"definitely not NACP data, long enough to pass the header check",
        )
        .expect("write junk");
        match load_checkpoint(&path, EngineKind::Bp, &p, &cfg) {
            Err(CheckpointError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_version_mismatch() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("version");
        let path = dir.join("ckpt.bin");
        write_checkpoint(&path, &p, &cfg, &sample_bp_state(&p)).expect("write");
        let mut bytes = std::fs::read(&path).expect("read back");
        bytes[4] = 99; // bump the version field
        std::fs::write(&path, &bytes).expect("rewrite");
        match load_checkpoint(&path, EngineKind::Bp, &p, &cfg) {
            Err(CheckpointError::VersionMismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, CHECKPOINT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_wrong_engine() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("engine");
        let path = dir.join("ckpt.bin");
        write_checkpoint(&path, &p, &cfg, &sample_bp_state(&p)).expect("write");
        match load_checkpoint(&path, EngineKind::Mr, &p, &cfg) {
            Err(CheckpointError::WrongEngine {
                found, expected, ..
            }) => {
                assert_eq!(found, "bp");
                assert_eq!(expected, "mr");
            }
            other => panic!("expected WrongEngine, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_shape_mismatch() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("shape");
        let path = dir.join("ckpt.bin");
        write_checkpoint(&path, &p, &cfg, &sample_bp_state(&p)).expect("write");
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)],
        );
        let other = NetAlignProblem::new(a, b, l);
        match load_checkpoint(&path, EngineKind::Bp, &other, &cfg) {
            Err(CheckpointError::ShapeMismatch { .. }) => {}
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_config_mismatch() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("config");
        let path = dir.join("ckpt.bin");
        write_checkpoint(&path, &p, &cfg, &sample_bp_state(&p)).expect("write");
        let other = AlignConfig { gamma: 0.5, ..cfg };
        match load_checkpoint(&path, EngineKind::Bp, &p, &other) {
            Err(CheckpointError::ConfigMismatch { .. }) => {}
            got => panic!("expected ConfigMismatch, got {got:?}"),
        }
        // Observability toggles are excluded from the fingerprint.
        let still_fine = AlignConfig {
            record_history: true,
            ..cfg
        };
        load_checkpoint(&path, EngineKind::Bp, &p, &still_fine)
            .expect("history toggle must not invalidate checkpoints");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_corruption_and_truncation() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("corrupt");
        let path = dir.join("ckpt.bin");
        write_checkpoint(&path, &p, &cfg, &sample_bp_state(&p)).expect("write");
        let pristine = std::fs::read(&path).expect("read back");

        // Flip a payload byte -> checksum failure.
        let mut bytes = pristine.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        match load_checkpoint(&path, EngineKind::Bp, &p, &cfg) {
            Err(CheckpointError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncate the payload -> length failure.
        std::fs::write(&path, &pristine[..pristine.len() / 2]).expect("truncate");
        match load_checkpoint(&path, EngineKind::Bp, &p, &cfg) {
            Err(CheckpointError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncate into the header.
        std::fs::write(&path, &pristine[..10]).expect("truncate header");
        match load_checkpoint(&path, EngineKind::Bp, &p, &cfg) {
            Err(CheckpointError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let path = std::env::temp_dir().join("netalign-ckpt-test-definitely-missing.bin");
        match load_checkpoint(&path, EngineKind::Bp, &p, &cfg) {
            Err(CheckpointError::Io { .. }) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn latest_scan_skips_damaged_files() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("latest");
        let older = dir.join(checkpoint_file_name(EngineKind::Bp, 3));
        let newer = dir.join(checkpoint_file_name(EngineKind::Bp, 7));
        let old_state = CheckpointState::Bp(match sample_bp_state(&p) {
            CheckpointState::Bp(mut s) => {
                s.k = 3;
                s
            }
            _ => unreachable!(),
        });
        write_checkpoint(&older, &p, &cfg, &old_state).expect("write older");
        write_checkpoint(&newer, &p, &cfg, &sample_bp_state(&p)).expect("write newer");
        // Damage the newest file; the scan must fall back to iteration 3.
        let mut bytes = std::fs::read(&newer).expect("read newer");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newer, &bytes).expect("rewrite newer");
        let (path, state) = load_latest_checkpoint(&dir, EngineKind::Bp, &p, &cfg)
            .expect("scan")
            .expect("some checkpoint validates");
        assert_eq!(path, older);
        assert_eq!(state.iteration(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("prune");
        for k in [1usize, 2, 3, 4, 5] {
            let path = dir.join(checkpoint_file_name(EngineKind::Bp, k));
            let state = CheckpointState::Bp(match sample_bp_state(&p) {
                CheckpointState::Bp(mut s) => {
                    s.k = k;
                    s
                }
                _ => unreachable!(),
            });
            write_checkpoint(&path, &p, &cfg, &state).expect("write");
        }
        prune_checkpoints(&dir, EngineKind::Bp, 2);
        let left = list_checkpoints(&dir, EngineKind::Bp);
        assert_eq!(left.len(), 2);
        assert!(left[0].ends_with(checkpoint_file_name(EngineKind::Bp, 5)));
        assert!(left[1].ends_with(checkpoint_file_name(EngineKind::Bp, 4)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_damage_is_caught_by_loader() {
        let _guard = faults::test_lock();
        let p = tiny_problem();
        let cfg = AlignConfig::default();
        let dir = scratch_dir("fault");
        let path = dir.join("ckpt.bin");
        faults::install(faults::FaultPlan {
            checkpoint: Some(faults::CheckpointFault {
                damage: faults::CheckpointDamage::Corrupt,
                nth_write: 1,
            }),
            ..Default::default()
        });
        write_checkpoint(&path, &p, &cfg, &sample_bp_state(&p)).expect("write");
        faults::clear();
        assert!(
            load_checkpoint(&path, EngineKind::Bp, &p, &cfg).is_err(),
            "damaged write must not load"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
