//! The network alignment problem instance.

use crate::squares::SquaresMatrix;
use netalign_graph::{BipartiteGraph, Graph};

/// A network alignment instance: graphs `A` and `B` plus the weighted
/// bipartite candidate graph `L` between their vertex sets. The squares
/// matrix `S` is built eagerly (it is needed by every heuristic and its
/// structure never changes).
#[derive(Clone, Debug)]
pub struct NetAlignProblem {
    /// First input graph (`V_A` is the left side of `L`).
    pub a: Graph,
    /// Second input graph (`V_B` is the right side of `L`).
    pub b: Graph,
    /// Candidate matches with similarity weights `w`.
    pub l: BipartiteGraph,
    /// The squares matrix `S` over the edges of `L`.
    pub s: SquaresMatrix,
}

impl NetAlignProblem {
    /// Build a problem instance, constructing `S` in parallel.
    ///
    /// # Panics
    /// Panics if `L`'s sides don't match the vertex counts of `A`/`B`.
    pub fn new(a: Graph, b: Graph, l: BipartiteGraph) -> Self {
        assert_eq!(
            l.num_left(),
            a.num_vertices(),
            "L's left side must index V_A"
        );
        assert_eq!(
            l.num_right(),
            b.num_vertices(),
            "L's right side must index V_B"
        );
        let s = SquaresMatrix::build(&a, &b, &l);
        Self { a, b, l, s }
    }

    /// Assemble a problem from parts with a pre-built (e.g. patched)
    /// squares matrix, skipping the eager `S` construction.
    ///
    /// # Panics
    /// Panics if `L`'s sides don't match the vertex counts of `A`/`B`
    /// or `S`'s dimension doesn't match `|E_L|`.
    pub fn from_parts(a: Graph, b: Graph, l: BipartiteGraph, s: SquaresMatrix) -> Self {
        assert_eq!(
            l.num_left(),
            a.num_vertices(),
            "L's left side must index V_A"
        );
        assert_eq!(
            l.num_right(),
            b.num_vertices(),
            "L's right side must index V_B"
        );
        assert_eq!(s.dim(), l.num_edges(), "S must be indexed by E_L");
        Self { a, b, l, s }
    }

    /// Number of candidate matches `|E_L|`.
    pub fn num_candidates(&self) -> usize {
        self.l.num_edges()
    }

    /// Shape statistics in the format of the paper's Table II:
    /// `(|V_A|, |V_B|, |E_L|, nnz(S))`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (
            self.a.num_vertices(),
            self.b.num_vertices(),
            self.l.num_edges(),
            self.s.nnz(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_reports_table2_stats() {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let l = BipartiteGraph::from_entries(3, 3, vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let p = NetAlignProblem::new(a, b, l);
        let (na, nb, el, nnz) = p.shape();
        assert_eq!((na, nb, el), (3, 3, 3));
        // overlapping pairs: ((0,0),(1,1)) and ((1,1),(2,2)), stored
        // symmetrically -> 4 non-zeros.
        assert_eq!(nnz, 4);
    }

    #[test]
    #[should_panic(expected = "left side")]
    fn size_mismatch_panics() {
        let a = Graph::empty(2);
        let b = Graph::empty(3);
        let l = BipartiteGraph::from_entries(3, 3, vec![(0, 0, 1.0)]);
        let _ = NetAlignProblem::new(a, b, l);
    }
}
