//! Binary message codec for the coordinator ↔ worker protocol.
//!
//! Hand-rolled little-endian encoding over the length-prefixed frames
//! of [`crate::frame`]. Floating-point values travel as raw IEEE-754
//! bits (`to_bits`/`from_bits`), so a value round-trips *bit-exactly*
//! — the foundation of the distributed runs' bit-identity guarantee.
//! Decoding is total: torn or trailing bytes yield a typed
//! [`WireError`], never a panic or an over-read.

use crate::bp::distributed::ColStat;
use netalign_matching::distributed::DistMsg;

/// Decode failure. The transport treats any of these as a poisoned
/// peer (the frame arrived intact but its contents are nonsense).
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field being decoded.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// Bytes remained after the message was fully decoded.
    Trailing(usize),
    /// A declared length was absurd for the remaining buffer.
    BadLength(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadLength(n) => write!(f, "declared length {n} exceeds buffer"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    pub fn u32s(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u32(v);
        }
    }

    pub fn u64s(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }

    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor-based decoder; every getter checks bounds.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A declared element count, sanity-bounded by the bytes actually
    /// remaining so a corrupt length cannot trigger a huge allocation.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(elem_bytes as u64) > remaining {
            return Err(WireError::BadLength(n));
        }
        Ok(n as usize)
    }

    pub fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    pub fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Truncated)
    }

    pub fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::Trailing(left));
        }
        Ok(())
    }
}

/// Everything a worker needs to (re)build its rank state: the full
/// graph in edge-id order (`BipartiteGraph::from_entries` reproduces
/// the exact CSR layout), this rank's partition share and halo plans,
/// the solver constants, and — on recovery — the iterate blocks to
/// resume from.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SetupMsg {
    pub na: u32,
    pub nb: u32,
    /// All edges of `L` in edge-id order.
    pub edges: Vec<(u32, u32, f64)>,
    /// This worker's partition index and the total number of parts
    /// (distinct from its process slot, which never changes).
    pub part_index: u32,
    pub num_parts: u32,
    pub a_lo: u64,
    pub a_hi: u64,
    pub e_lo: u64,
    pub e_hi: u64,
    pub v_lo: u64,
    pub v_hi: u64,
    /// Global `rowptr[e_lo..=e_hi]`.
    pub rowptr: Vec<u64>,
    /// Per peer part: local `sk_prev` positions to ship.
    pub send_plan: Vec<Vec<u32>>,
    /// Per peer part: local `skt` positions arriving values land in.
    pub scatter_plan: Vec<Vec<u32>>,
    pub alpha: f64,
    pub beta: f64,
    /// Directory for per-iteration checkpoints (shared filesystem).
    pub state_dir: String,
    /// Iterations `1..=start_iter` are already done; the `*_prev`
    /// blocks below hold the state after `start_iter` (empty = fresh
    /// zeros).
    pub start_iter: u32,
    pub y_prev: Vec<f64>,
    pub z_prev: Vec<f64>,
    pub sk_prev: Vec<f64>,
}

/// Which matcher phase an exchange frame carries an inbox for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchPhase {
    Match,
    Invalidate,
}

/// Coordinator → worker RPC bodies.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Setup(Box<SetupMsg>),
    /// Superstep A, producer half: return this rank's halo payloads.
    ProduceHalo,
    /// Superstep A, consumer half: scatter routed payloads (indexed by
    /// source part) into `skt`.
    ScatterHalo {
        payloads: Vec<Vec<f64>>,
    },
    /// Superstep B: F/d kernels, othermaxrow, column partials.
    Solve {
        k: u32,
    },
    /// Superstep C+D: merged column stats in, finish the iteration
    /// (othermaxcol, y/z, S update, damping), checkpoint, return the
    /// damped y/z blocks for rounding.
    Finish {
        k: u32,
        gk: f64,
        stats: Vec<(u32, ColStat)>,
    },
    /// Initialize a matcher run over `weights` (a gathered iterate).
    MatchStart {
        weights: Vec<f64>,
        faulty: bool,
    },
    /// Matcher phase 1: return outgoing proposals as `(dest, msg)`.
    MatchPropose {
        round: u32,
    },
    /// Matcher phases 2/3: deliver an inbox; phase 2 returns outgoing
    /// announcements, phase 3 the rank's activity flag.
    MatchExchange {
        phase: MatchPhase,
        inbox: Vec<DistMsg>,
    },
    /// Collect the matched pairs this rank owns.
    MatchPairs,
    /// Clean exit.
    Shutdown,
}

/// Worker → coordinator RPC reply bodies.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    Ack,
    HaloPayloads(Vec<Vec<f64>>),
    Partials(Vec<(u32, ColStat)>),
    Blocks {
        y: Vec<f64>,
        z: Vec<f64>,
    },
    MatchOut(Vec<(u32, DistMsg)>),
    Progress(bool),
    Pairs(Vec<(u32, u32)>),
    /// The worker could not serve the request (e.g. no Setup yet).
    Err(String),
}

/// Envelope for every frame on a coordinator ↔ worker socket.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Worker → coordinator, first frame on every (re)connect.
    Hello { slot: u32 },
    /// Worker → coordinator, periodic liveness beacon.
    Heartbeat { slot: u32 },
    /// Coordinator → worker. `seq` numbers are monotone per slot; a
    /// worker answers a repeated `seq` from its reply cache without
    /// re-executing.
    Request { seq: u64, req: Request },
    /// Worker → coordinator.
    Reply { seq: u64, reply: Reply },
}

fn enc_dist_msg(e: &mut Enc, msg: &DistMsg) {
    match msg {
        DistMsg::Propose { from, to } => {
            e.u8(0);
            e.u32(*from);
            e.u32(*to);
        }
        DistMsg::Matched { v, mate } => {
            e.u8(1);
            e.u32(*v);
            e.u32(*mate);
        }
    }
}

fn dec_dist_msg(d: &mut Dec<'_>) -> Result<DistMsg, WireError> {
    match d.u8()? {
        0 => Ok(DistMsg::Propose {
            from: d.u32()?,
            to: d.u32()?,
        }),
        1 => Ok(DistMsg::Matched {
            v: d.u32()?,
            mate: d.u32()?,
        }),
        t => Err(WireError::BadTag(t)),
    }
}

fn enc_stats(e: &mut Enc, stats: &[(u32, ColStat)]) {
    e.u64(stats.len() as u64);
    for (b, s) in stats {
        e.u32(*b);
        e.f64(s.max1);
        e.f64(s.max2);
        e.u32(s.arg_eid);
    }
}

fn dec_stats(d: &mut Dec<'_>) -> Result<Vec<(u32, ColStat)>, WireError> {
    let n = d.len(24)?;
    (0..n)
        .map(|_| {
            Ok((
                d.u32()?,
                ColStat {
                    max1: d.f64()?,
                    max2: d.f64()?,
                    arg_eid: d.u32()?,
                },
            ))
        })
        .collect()
}

fn enc_vec_f64s(e: &mut Enc, vss: &[Vec<f64>]) {
    e.u64(vss.len() as u64);
    for vs in vss {
        e.f64s(vs);
    }
}

fn dec_vec_f64s(d: &mut Dec<'_>) -> Result<Vec<Vec<f64>>, WireError> {
    let n = d.len(8)?;
    (0..n).map(|_| d.f64s()).collect()
}

fn enc_request(e: &mut Enc, req: &Request) {
    match req {
        Request::Setup(s) => {
            e.u8(0);
            e.u32(s.na);
            e.u32(s.nb);
            e.u64(s.edges.len() as u64);
            for (a, b, w) in &s.edges {
                e.u32(*a);
                e.u32(*b);
                e.f64(*w);
            }
            e.u32(s.part_index);
            e.u32(s.num_parts);
            for v in [s.a_lo, s.a_hi, s.e_lo, s.e_hi, s.v_lo, s.v_hi] {
                e.u64(v);
            }
            e.u64s(&s.rowptr);
            e.u64(s.send_plan.len() as u64);
            for plan in &s.send_plan {
                e.u32s(plan);
            }
            e.u64(s.scatter_plan.len() as u64);
            for plan in &s.scatter_plan {
                e.u32s(plan);
            }
            e.f64(s.alpha);
            e.f64(s.beta);
            e.str(&s.state_dir);
            e.u32(s.start_iter);
            e.f64s(&s.y_prev);
            e.f64s(&s.z_prev);
            e.f64s(&s.sk_prev);
        }
        Request::ProduceHalo => e.u8(1),
        Request::ScatterHalo { payloads } => {
            e.u8(2);
            enc_vec_f64s(e, payloads);
        }
        Request::Solve { k } => {
            e.u8(3);
            e.u32(*k);
        }
        Request::Finish { k, gk, stats } => {
            e.u8(4);
            e.u32(*k);
            e.f64(*gk);
            enc_stats(e, stats);
        }
        Request::MatchStart { weights, faulty } => {
            e.u8(5);
            e.f64s(weights);
            e.u8(*faulty as u8);
        }
        Request::MatchPropose { round } => {
            e.u8(6);
            e.u32(*round);
        }
        Request::MatchExchange { phase, inbox } => {
            e.u8(7);
            e.u8(match phase {
                MatchPhase::Match => 0,
                MatchPhase::Invalidate => 1,
            });
            e.u64(inbox.len() as u64);
            for msg in inbox {
                enc_dist_msg(e, msg);
            }
        }
        Request::MatchPairs => e.u8(8),
        Request::Shutdown => e.u8(9),
    }
}

fn dec_request(d: &mut Dec<'_>) -> Result<Request, WireError> {
    match d.u8()? {
        0 => {
            let na = d.u32()?;
            let nb = d.u32()?;
            let ne = d.len(16)?;
            let edges = (0..ne)
                .map(|_| Ok((d.u32()?, d.u32()?, d.f64()?)))
                .collect::<Result<Vec<_>, WireError>>()?;
            let part_index = d.u32()?;
            let num_parts = d.u32()?;
            let a_lo = d.u64()?;
            let a_hi = d.u64()?;
            let e_lo = d.u64()?;
            let e_hi = d.u64()?;
            let v_lo = d.u64()?;
            let v_hi = d.u64()?;
            let rowptr = d.u64s()?;
            let np = d.len(8)?;
            let send_plan = (0..np).map(|_| d.u32s()).collect::<Result<Vec<_>, _>>()?;
            let np = d.len(8)?;
            let scatter_plan = (0..np).map(|_| d.u32s()).collect::<Result<Vec<_>, _>>()?;
            let alpha = d.f64()?;
            let beta = d.f64()?;
            let state_dir = d.str()?;
            let start_iter = d.u32()?;
            let y_prev = d.f64s()?;
            let z_prev = d.f64s()?;
            let sk_prev = d.f64s()?;
            Ok(Request::Setup(Box::new(SetupMsg {
                na,
                nb,
                edges,
                part_index,
                num_parts,
                a_lo,
                a_hi,
                e_lo,
                e_hi,
                v_lo,
                v_hi,
                rowptr,
                send_plan,
                scatter_plan,
                alpha,
                beta,
                state_dir,
                start_iter,
                y_prev,
                z_prev,
                sk_prev,
            })))
        }
        1 => Ok(Request::ProduceHalo),
        2 => Ok(Request::ScatterHalo {
            payloads: dec_vec_f64s(d)?,
        }),
        3 => Ok(Request::Solve { k: d.u32()? }),
        4 => Ok(Request::Finish {
            k: d.u32()?,
            gk: d.f64()?,
            stats: dec_stats(d)?,
        }),
        5 => Ok(Request::MatchStart {
            weights: d.f64s()?,
            faulty: d.u8()? != 0,
        }),
        6 => Ok(Request::MatchPropose { round: d.u32()? }),
        7 => {
            let phase = match d.u8()? {
                0 => MatchPhase::Match,
                1 => MatchPhase::Invalidate,
                t => return Err(WireError::BadTag(t)),
            };
            let n = d.len(9)?;
            let inbox = (0..n).map(|_| dec_dist_msg(d)).collect::<Result<_, _>>()?;
            Ok(Request::MatchExchange { phase, inbox })
        }
        8 => Ok(Request::MatchPairs),
        9 => Ok(Request::Shutdown),
        t => Err(WireError::BadTag(t)),
    }
}

fn enc_reply(e: &mut Enc, reply: &Reply) {
    match reply {
        Reply::Ack => e.u8(0),
        Reply::HaloPayloads(vss) => {
            e.u8(1);
            enc_vec_f64s(e, vss);
        }
        Reply::Partials(stats) => {
            e.u8(2);
            enc_stats(e, stats);
        }
        Reply::Blocks { y, z } => {
            e.u8(3);
            e.f64s(y);
            e.f64s(z);
        }
        Reply::MatchOut(out) => {
            e.u8(4);
            e.u64(out.len() as u64);
            for (dest, msg) in out {
                e.u32(*dest);
                enc_dist_msg(e, msg);
            }
        }
        Reply::Progress(p) => {
            e.u8(5);
            e.u8(*p as u8);
        }
        Reply::Pairs(pairs) => {
            e.u8(6);
            e.u64(pairs.len() as u64);
            for (v, m) in pairs {
                e.u32(*v);
                e.u32(*m);
            }
        }
        Reply::Err(msg) => {
            e.u8(7);
            e.str(msg);
        }
    }
}

fn dec_reply(d: &mut Dec<'_>) -> Result<Reply, WireError> {
    match d.u8()? {
        0 => Ok(Reply::Ack),
        1 => Ok(Reply::HaloPayloads(dec_vec_f64s(d)?)),
        2 => Ok(Reply::Partials(dec_stats(d)?)),
        3 => Ok(Reply::Blocks {
            y: d.f64s()?,
            z: d.f64s()?,
        }),
        4 => {
            let n = d.len(13)?;
            let out = (0..n)
                .map(|_| Ok((d.u32()?, dec_dist_msg(d)?)))
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(Reply::MatchOut(out))
        }
        5 => Ok(Reply::Progress(d.u8()? != 0)),
        6 => {
            let n = d.len(8)?;
            let pairs = (0..n)
                .map(|_| Ok((d.u32()?, d.u32()?)))
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(Reply::Pairs(pairs))
        }
        7 => Ok(Reply::Err(d.str()?)),
        t => Err(WireError::BadTag(t)),
    }
}

/// Encode one envelope frame to bytes (the payload of one transport
/// frame).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut e = Enc::new();
    match frame {
        Frame::Hello { slot } => {
            e.u8(0);
            e.u32(*slot);
        }
        Frame::Heartbeat { slot } => {
            e.u8(1);
            e.u32(*slot);
        }
        Frame::Request { seq, req } => {
            e.u8(2);
            e.u64(*seq);
            enc_request(&mut e, req);
        }
        Frame::Reply { seq, reply } => {
            e.u8(3);
            e.u64(*seq);
            enc_reply(&mut e, reply);
        }
    }
    e.into_bytes()
}

/// Decode one envelope frame; rejects trailing bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut d = Dec::new(bytes);
    let frame = match d.u8()? {
        0 => Frame::Hello { slot: d.u32()? },
        1 => Frame::Heartbeat { slot: d.u32()? },
        2 => Frame::Request {
            seq: d.u64()?,
            req: dec_request(&mut d)?,
        },
        3 => Frame::Reply {
            seq: d.u64()?,
            reply: dec_reply(&mut d)?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    d.finish()?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode_frame(&f);
        assert_eq!(decode_frame(&bytes).expect("decodes"), f);
    }

    #[test]
    fn frames_roundtrip_bit_exactly() {
        roundtrip(Frame::Hello { slot: 3 });
        roundtrip(Frame::Heartbeat { slot: 0 });
        roundtrip(Frame::Request {
            seq: 42,
            req: Request::Setup(Box::new(SetupMsg {
                na: 2,
                nb: 3,
                edges: vec![(0, 1, 0.25), (1, 2, -0.0)],
                part_index: 1,
                num_parts: 2,
                a_lo: 1,
                a_hi: 2,
                e_lo: 1,
                e_hi: 2,
                v_lo: 3,
                v_hi: 7,
                rowptr: vec![3, 7],
                send_plan: vec![vec![0, 1], vec![]],
                scatter_plan: vec![vec![2], vec![3]],
                alpha: 1.0,
                beta: 2.0,
                state_dir: "/tmp/x".into(),
                start_iter: 4,
                y_prev: vec![f64::NEG_INFINITY, 1.5e-300],
                z_prev: vec![],
                sk_prev: vec![0.1],
            })),
        });
        roundtrip(Frame::Request {
            seq: 7,
            req: Request::Finish {
                k: 9,
                gk: 0.5,
                stats: vec![(
                    4,
                    ColStat {
                        max1: 1.0,
                        max2: f64::NEG_INFINITY,
                        arg_eid: u32::MAX,
                    },
                )],
            },
        });
        roundtrip(Frame::Request {
            seq: 8,
            req: Request::MatchExchange {
                phase: MatchPhase::Invalidate,
                inbox: vec![
                    DistMsg::Propose { from: 1, to: 9 },
                    DistMsg::Matched { v: 9, mate: 1 },
                ],
            },
        });
        roundtrip(Frame::Reply {
            seq: 8,
            reply: Reply::MatchOut(vec![(2, DistMsg::Matched { v: 1, mate: 2 })]),
        });
        roundtrip(Frame::Reply {
            seq: 9,
            reply: Reply::Blocks {
                y: vec![1.0, -2.0],
                z: vec![f64::MIN_POSITIVE],
            },
        });
        roundtrip(Frame::Reply {
            seq: 10,
            reply: Reply::Err("no setup".into()),
        });
    }

    #[test]
    fn nan_payloads_survive_bit_exactly() {
        // NaN != NaN, so compare bits explicitly.
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = encode_frame(&Frame::Reply {
            seq: 1,
            reply: Reply::Blocks {
                y: vec![weird],
                z: vec![],
            },
        });
        match decode_frame(&bytes).unwrap() {
            Frame::Reply {
                reply: Reply::Blocks { y, .. },
                ..
            } => assert_eq!(y[0].to_bits(), weird.to_bits()),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let bytes = encode_frame(&Frame::Request {
            seq: 3,
            req: Request::Solve { k: 5 },
        });
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(err, WireError::Truncated | WireError::BadLength(_)),
                "cut {cut}: {err:?}"
            );
        }
        assert_eq!(decode_frame(&[99]), Err(WireError::BadTag(99)));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_frame(&trailing), Err(WireError::Trailing(1)));
    }

    #[test]
    fn huge_declared_lengths_are_rejected_without_allocating() {
        // A Reply::Blocks whose vector claims u64::MAX elements.
        let mut e = Enc::new();
        e.u8(3); // Frame::Reply
        e.u64(1); // seq
        e.u8(3); // Reply::Blocks
        e.u64(u64::MAX); // y length
        let err = decode_frame(&e.into_bytes()).expect_err("must reject");
        assert!(matches!(err, WireError::BadLength(_)), "{err:?}");
    }
}
