//! Per-worker iteration checkpoints (`NADC` files).
//!
//! Every worker writes its damped `y/z/sk` blocks to the shared state
//! directory at the end of each iteration (tmp + rename, so a crash
//! never leaves a half-written file visible), keeping the two newest
//! iterations. After a failure the coordinator scans the directory,
//! picks the newest iteration whose surviving blocks exactly tile the
//! edge range, and re-seeds every worker from that state — respawned
//! replacements and re-partitioned survivors alike.
//!
//! Layout (little-endian, [`crate::dist::wire`] primitives):
//!
//! ```text
//! "NADC" | version u32 | part u32 | iteration u32
//! e_lo u64 | e_hi u64 | v_lo u64 | v_hi u64
//! y_prev f64s | z_prev f64s | sk_prev f64s
//! fnv1a64(everything above) u64
//! ```

use super::wire::{Dec, Enc};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"NADC";
const VERSION: u32 = 1;

/// One decoded checkpoint block.
#[derive(Clone, Debug, PartialEq)]
pub struct CkptBlock {
    pub part: u32,
    pub iteration: u32,
    pub e_lo: u64,
    pub e_hi: u64,
    pub v_lo: u64,
    pub v_hi: u64,
    pub y_prev: Vec<f64>,
    pub z_prev: Vec<f64>,
    pub sk_prev: Vec<f64>,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// File name for `part`'s checkpoint at `iteration`.
pub fn file_name(part: u32, iteration: u32) -> String {
    format!("part{part}-k{iteration}.ckpt")
}

/// Parse a checkpoint file name back into `(part, iteration)`.
fn parse_name(name: &str) -> Option<(u32, u32)> {
    let rest = name.strip_prefix("part")?.strip_suffix(".ckpt")?;
    let (part, iter) = rest.split_once("-k")?;
    Some((part.parse().ok()?, iter.parse().ok()?))
}

/// Durably write `block` under `dir` (tmp + rename) and prune this
/// part's files older than the previous iteration.
pub fn write(dir: &Path, block: &CkptBlock) -> io::Result<PathBuf> {
    let mut e = Enc::new();
    e.u8(MAGIC[0]);
    e.u8(MAGIC[1]);
    e.u8(MAGIC[2]);
    e.u8(MAGIC[3]);
    e.u32(VERSION);
    e.u32(block.part);
    e.u32(block.iteration);
    for v in [block.e_lo, block.e_hi, block.v_lo, block.v_hi] {
        e.u64(v);
    }
    e.f64s(&block.y_prev);
    e.f64s(&block.z_prev);
    e.f64s(&block.sk_prev);
    let mut bytes = e.into_bytes();
    let sum = fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());

    fs::create_dir_all(dir)?;
    let path = dir.join(file_name(block.part, block.iteration));
    let tmp = dir.join(format!(".{}.tmp", file_name(block.part, block.iteration)));
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &path)?;

    // Keep this iteration and the previous one; recovery never reaches
    // further back because the coordinator's resume point trails the
    // newest complete iteration by at most one.
    for (p, k) in list(dir) {
        if p == block.part && k + 1 < block.iteration {
            let _ = fs::remove_file(dir.join(file_name(p, k)));
        }
    }
    Ok(path)
}

/// Read and validate one checkpoint file. Returns `None` for missing,
/// torn, corrupt, or version-mismatched files — recovery just falls
/// back to an older iteration.
pub fn read(path: &Path) -> Option<CkptBlock> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < 8 {
        return None;
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a64(body) != sum {
        return None;
    }
    let mut d = Dec::new(body);
    let magic = [d.u8().ok()?, d.u8().ok()?, d.u8().ok()?, d.u8().ok()?];
    if &magic != MAGIC || d.u32().ok()? != VERSION {
        return None;
    }
    let block = CkptBlock {
        part: d.u32().ok()?,
        iteration: d.u32().ok()?,
        e_lo: d.u64().ok()?,
        e_hi: d.u64().ok()?,
        v_lo: d.u64().ok()?,
        v_hi: d.u64().ok()?,
        y_prev: d.f64s().ok()?,
        z_prev: d.f64s().ok()?,
        sk_prev: d.f64s().ok()?,
    };
    d.finish().ok()?;
    Some(block)
}

/// `(part, iteration)` of every checkpoint-named file under `dir`.
pub fn list(dir: &Path) -> Vec<(u32, u32)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        if let Some(parsed) = entry.file_name().to_str().and_then(parse_name) {
            out.push(parsed);
        }
    }
    out
}

/// Delete every checkpoint at an iteration beyond `j` — those
/// iterations are about to be re-executed, and stale blocks from an
/// older partition epoch must not pollute a future tiling scan.
pub fn prune_beyond(dir: &Path, j: u32) {
    for (p, k) in list(dir) {
        if k > j {
            let _ = fs::remove_file(dir.join(file_name(p, k)));
        }
    }
}

/// Pick the newest iteration `≤ cap` whose valid blocks exactly tile
/// `[0, m)` edges, and return it with its blocks sorted by `e_lo`.
/// Returns `None` when no complete tiling survives (resume from
/// iteration 0 with zero state).
pub fn newest_tiling(dir: &Path, cap: u32, m: u64) -> Option<(u32, Vec<CkptBlock>)> {
    let mut iters: Vec<u32> = list(dir)
        .into_iter()
        .map(|(_, k)| k)
        .filter(|&k| k <= cap && k > 0)
        .collect();
    iters.sort_unstable();
    iters.dedup();
    for &k in iters.iter().rev() {
        let mut blocks: Vec<CkptBlock> = list(dir)
            .into_iter()
            .filter(|&(_, ik)| ik == k)
            .filter_map(|(p, ik)| read(&dir.join(file_name(p, ik))))
            .collect();
        blocks.sort_by_key(|b| b.e_lo);
        blocks.dedup_by_key(|b| b.e_lo);
        let tiles = !blocks.is_empty()
            && blocks[0].e_lo == 0
            && blocks.last().unwrap().e_hi == m
            && blocks.windows(2).all(|w| w[0].e_hi == w[1].e_lo)
            && blocks
                .iter()
                .all(|b| b.y_prev.len() == (b.e_hi - b.e_lo) as usize);
        if tiles {
            return Some((k, blocks));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(part: u32, k: u32, e_lo: u64, e_hi: u64) -> CkptBlock {
        let ne = (e_hi - e_lo) as usize;
        CkptBlock {
            part,
            iteration: k,
            e_lo,
            e_hi,
            v_lo: e_lo * 3,
            v_hi: e_hi * 3,
            y_prev: vec![0.5; ne],
            z_prev: vec![-0.5; ne],
            sk_prev: vec![0.25; ne * 3],
        }
    }

    #[test]
    fn roundtrip_and_pruning() {
        let dir = std::env::temp_dir().join(format!("nadc-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for k in 1..=4 {
            write(&dir, &block(0, k, 0, 10)).unwrap();
        }
        // Keep-2: only iterations 3 and 4 remain for part 0.
        let mut kept = list(&dir);
        kept.sort_unstable();
        assert_eq!(kept, vec![(0, 3), (0, 4)]);
        let back = read(&dir.join(file_name(0, 4))).expect("valid");
        assert_eq!(back, block(0, 4, 0, 10));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_skipped_and_tiling_falls_back() {
        let dir = std::env::temp_dir().join(format!("nadc-tile-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for k in [3u32, 4] {
            write(&dir, &block(0, k, 0, 6)).unwrap();
            write(&dir, &block(1, k, 6, 10)).unwrap();
        }
        // Corrupt part 1's iteration-4 block: flip one payload byte.
        let victim = dir.join(file_name(1, 4));
        let mut bytes = fs::read(&victim).unwrap();
        bytes[20] ^= 0xff;
        fs::write(&victim, bytes).unwrap();
        assert_eq!(read(&victim), None, "corrupt checkpoint must not parse");
        // Iteration 4 no longer tiles; 3 does.
        let (j, blocks) = newest_tiling(&dir, 10, 10).expect("tiling");
        assert_eq!(j, 3);
        assert_eq!(blocks.len(), 2);
        assert_eq!((blocks[0].e_lo, blocks[1].e_hi), (0, 10));
        // A cap below 3 forces a fresh start.
        assert!(newest_tiling(&dir, 2, 10).is_none());
        prune_beyond(&dir, 3);
        let mut kept = list(&dir);
        kept.sort_unstable();
        assert_eq!(kept, vec![(0, 3), (1, 3)]);
        let _ = fs::remove_dir_all(&dir);
    }
}
