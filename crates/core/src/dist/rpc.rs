//! Coordinator-side reliable RPC over worker links.
//!
//! The transport under this layer is lossy on purpose: the
//! deterministic fault injector may drop, duplicate, delay, or tear
//! any first transmission of a request frame. Reliability is restored
//! the same way the simulated distributed matcher restores it —
//! sequence numbers plus timeout-driven retransmission with bounded
//! exponential backoff:
//!
//! * every request carries a per-slot monotone `seq`; the worker
//!   deduplicates repeats and re-serves its cached reply,
//! * the coordinator resends the in-flight request whenever the reply
//!   is late (*resends are never fault-injected* — the fault models a
//!   wire that damaged the frame once, not a wire that eats every
//!   copy),
//! * a torn connection parks the link until the worker re-dials (the
//!   accept thread hands the fresh socket over a channel), then the
//!   in-flight request goes out again,
//! * reads are buffered incrementally in a [`FrameBuf`], so a poll
//!   timeout in the middle of a frame never loses the bytes already
//!   read.
//!
//! Liveness is heartbeat-based: any bytes from a worker refresh its
//! `last_seen`; a silent or disconnected worker past the configured
//! windows turns the wait into [`LinkDead`], which the coordinator's
//! supervision layer converts into a respawn or a repartition.

use super::wire::{decode_frame, encode_frame, Frame, Reply, Request};
use netalign_trace::faults::{NetFault, NetFaultKind};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Upper bound on a coordinator↔worker frame (the Setup frame carries
/// the whole graph; 1 GiB is far beyond any in-memory problem here).
pub const MAX_FRAME: u32 = 1 << 30;

/// The worker behind a slot is considered lost: it stayed silent past
/// the liveness window, stayed disconnected past the reconnect window,
/// or sent undecodable bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDead;

/// Transport timing knobs (defaults suit localhost chaos tests).
#[derive(Clone, Copy, Debug)]
pub struct Timeouts {
    /// Read-poll granularity while waiting for a reply.
    pub poll: Duration,
    /// First retransmission fires this long after a send.
    pub resend_after: Duration,
    /// Retransmission backoff cap.
    pub resend_cap: Duration,
    /// A connected worker silent this long is dead (heartbeats arrive
    /// every ~100 ms, so this tolerates ~30 missed beats).
    pub liveness: Duration,
    /// A disconnected worker that has not re-dialed within this window
    /// is dead (a live worker re-dials within milliseconds).
    pub reconnect_window: Duration,
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts {
            poll: Duration::from_millis(20),
            resend_after: Duration::from_millis(150),
            resend_cap: Duration::from_millis(1000),
            liveness: Duration::from_millis(3000),
            reconnect_window: Duration::from_millis(1000),
        }
    }
}

/// Incremental parser for the length-prefixed frame stream: bytes go
/// in as they arrive, complete frames come out. Unlike
/// [`crate::frame::read_frame`], a short read leaves the partial frame
/// buffered instead of lost — required because the coordinator reads
/// with poll timeouts.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop one complete frame payload, `Ok(None)` when more bytes are
    /// needed, `Err(())` when the declared length is absurd (the
    /// stream is poisoned and the link must be torn down).
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>, ()> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(());
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

struct Link {
    stream: Option<TcpStream>,
    buf: FrameBuf,
    last_seen: Instant,
    disconnected_at: Option<Instant>,
    next_seq: u64,
    /// Last request sent and not yet answered, as wire bytes ready to
    /// resend verbatim.
    inflight: Option<(u64, Vec<u8>)>,
    /// A fault-delayed first transmission, released alongside the next
    /// retransmission so the worker sees a late duplicate.
    delayed: Option<Vec<u8>>,
    dead: bool,
}

impl Link {
    fn new() -> Link {
        Link {
            stream: None,
            buf: FrameBuf::new(),
            last_seen: Instant::now(),
            disconnected_at: None,
            next_seq: 1,
            inflight: None,
            delayed: None,
            dead: false,
        }
    }

    fn drop_stream(&mut self) {
        if let Some(s) = self.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if self.disconnected_at.is_none() {
            self.disconnected_at = Some(Instant::now());
        }
    }
}

/// All coordinator↔worker links plus the reliability machinery.
pub struct Rpc {
    links: Vec<Link>,
    accept_rx: Receiver<(u32, TcpStream)>,
    timeouts: Timeouts,
    fault: Option<NetFault>,
    sent: u64,
}

impl Rpc {
    /// `accept_rx` delivers `(slot, stream)` pairs from the accept
    /// thread, which has already consumed each connection's `Hello`.
    pub fn new(
        slots: usize,
        accept_rx: Receiver<(u32, TcpStream)>,
        timeouts: Timeouts,
        fault: Option<NetFault>,
    ) -> Rpc {
        Rpc {
            links: (0..slots).map(|_| Link::new()).collect(),
            accept_rx,
            timeouts,
            fault,
            sent: 0,
        }
    }

    /// Adopt any freshly-accepted worker connections.
    fn drain_accepts(&mut self) {
        while let Ok((slot, stream)) = self.accept_rx.try_recv() {
            let Some(link) = self.links.get_mut(slot as usize) else {
                continue;
            };
            if link.dead {
                continue;
            }
            let _ = stream.set_nodelay(true);
            link.drop_stream();
            link.stream = Some(stream);
            link.buf = FrameBuf::new();
            link.last_seen = Instant::now();
            link.disconnected_at = None;
        }
    }

    /// Block until `slot` has a live connection (a worker said Hello),
    /// or the deadline passes.
    pub fn wait_attached(&mut self, slot: usize, deadline: Instant) -> bool {
        loop {
            self.drain_accepts();
            if self.links[slot].stream.is_some() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.timeouts.poll);
        }
    }

    /// Permanently retire a slot (respawn budget exhausted); later
    /// reconnect attempts from a zombie process are ignored.
    pub fn mark_dead(&mut self, slot: usize) {
        let link = &mut self.links[slot];
        link.dead = true;
        link.inflight = None;
        link.delayed = None;
        link.drop_stream();
    }

    /// Forget the in-flight request (the supervision layer is about to
    /// re-Setup this slot; the old request belongs to a dead epoch).
    pub fn clear_inflight(&mut self, slot: usize) {
        let link = &mut self.links[slot];
        link.inflight = None;
        link.delayed = None;
        link.last_seen = Instant::now();
    }

    /// Next fault decision for a first transmission.
    fn fault_tick(&mut self) -> Option<NetFaultKind> {
        let fault = self.fault?;
        self.sent += 1;
        self.sent.is_multiple_of(fault.every).then_some(fault.kind)
    }

    /// Send `req` to `slot` without waiting; returns the sequence
    /// number to [`Rpc::wait`] on. The first transmission passes
    /// through the fault injector; retransmissions do not.
    pub fn begin(&mut self, slot: usize, req: Request) -> u64 {
        let damage = self.fault_tick();
        let link = &mut self.links[slot];
        let seq = link.next_seq;
        link.next_seq += 1;
        let mut wire = Vec::new();
        crate::frame::write_frame(&mut wire, &encode_frame(&Frame::Request { seq, req }))
            .expect("in-memory frame write");
        link.inflight = Some((seq, wire.clone()));
        let Some(stream) = link.stream.as_mut() else {
            // Disconnected: the wait loop retransmits after reconnect.
            return seq;
        };
        match damage {
            None => {
                let _ = stream.write_all(&wire).and_then(|_| stream.flush());
            }
            Some(NetFaultKind::Drop) => {}
            Some(NetFaultKind::Dup) => {
                let _ = stream
                    .write_all(&wire)
                    .and_then(|_| stream.write_all(&wire))
                    .and_then(|_| stream.flush());
            }
            Some(NetFaultKind::Delay) => {
                // Held back until the retransmission fires, so the
                // worker sees the original arrive late, as a duplicate.
                link.delayed = Some(wire);
            }
            Some(NetFaultKind::Torn) => {
                let cut = (wire.len() / 2).clamp(1, wire.len() - 1);
                let _ = stream.write_all(&wire[..cut]).and_then(|_| stream.flush());
                link.drop_stream();
            }
        }
        seq
    }

    /// Wait for the reply to `(slot, seq)`, retransmitting as needed.
    pub fn wait(&mut self, slot: usize, seq: u64) -> Result<Reply, LinkDead> {
        let mut backoff = self.timeouts.resend_after;
        let mut next_resend = Instant::now() + backoff;
        loop {
            let had_stream = self.links[slot].stream.is_some();
            self.drain_accepts();
            let timeouts = self.timeouts;
            let link = &mut self.links[slot];
            if link.dead {
                return Err(LinkDead);
            }
            if !had_stream && link.stream.is_some() {
                // Just reconnected: retransmit immediately.
                next_resend = Instant::now();
            }
            if let Some(stream) = link.stream.as_mut() {
                let _ = stream.set_read_timeout(Some(timeouts.poll));
                let mut tmp = [0u8; 64 * 1024];
                match stream.read(&mut tmp) {
                    Ok(0) => link.drop_stream(),
                    Ok(n) => {
                        link.last_seen = Instant::now();
                        link.buf.extend(&tmp[..n]);
                    }
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => link.drop_stream(),
                }
                loop {
                    match link.buf.pop() {
                        Ok(Some(payload)) => match decode_frame(&payload) {
                            Ok(Frame::Reply { seq: s, reply }) if s == seq => {
                                link.inflight = None;
                                link.delayed = None;
                                return Ok(reply);
                            }
                            // Stale replies (late duplicates of already
                            // answered requests) and heartbeats just
                            // refresh liveness, which the read did.
                            Ok(_) => {}
                            Err(_) => {
                                link.drop_stream();
                                break;
                            }
                        },
                        Ok(None) => break,
                        Err(()) => {
                            link.drop_stream();
                            break;
                        }
                    }
                }
            } else {
                std::thread::sleep(timeouts.poll);
            }
            let now = Instant::now();
            let link = &mut self.links[slot];
            if now >= next_resend {
                if let Some(stream) = link.stream.as_mut() {
                    let mut wrote = false;
                    if let Some(d) = link.delayed.take() {
                        let _ = stream.write_all(&d);
                        wrote = true;
                    }
                    if let Some((s, wire)) = &link.inflight {
                        if *s == seq {
                            let _ = stream.write_all(wire).and_then(|_| stream.flush());
                            wrote = true;
                        }
                    }
                    if wrote {
                        netalign_trace::dist::global()
                            .retransmissions
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                backoff = (backoff * 2).min(self.timeouts.resend_cap);
                next_resend = now + backoff;
            }
            if let Some(t) = link.disconnected_at {
                if link.stream.is_none() && now.duration_since(t) > self.timeouts.reconnect_window {
                    return Err(LinkDead);
                }
            }
            if now.duration_since(link.last_seen) > self.timeouts.liveness {
                return Err(LinkDead);
            }
        }
    }

    /// Fire-and-forget (shutdown notifications): one clean write, no
    /// retransmission, no fault injection.
    pub fn send_best_effort(&mut self, slot: usize, req: Request) {
        let link = &mut self.links[slot];
        let seq = link.next_seq;
        link.next_seq += 1;
        let mut wire = Vec::new();
        let _ = crate::frame::write_frame(&mut wire, &encode_frame(&Frame::Request { seq, req }));
        if let Some(stream) = link.stream.as_mut() {
            let _ = stream.write_all(&wire).and_then(|_| stream.flush());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_buf_reassembles_across_arbitrary_splits() {
        let mut wire = Vec::new();
        crate::frame::write_frame(&mut wire, b"hello").unwrap();
        crate::frame::write_frame(&mut wire, b"").unwrap();
        crate::frame::write_frame(&mut wire, &[7u8; 300]).unwrap();
        // Feed one byte at a time; frames must pop exactly at their
        // boundaries.
        let mut buf = FrameBuf::new();
        let mut out = Vec::new();
        for b in wire {
            buf.extend(&[b]);
            while let Some(p) = buf.pop().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], b"hello");
        assert!(out[1].is_empty());
        assert_eq!(out[2], vec![7u8; 300]);
        assert_eq!(buf.pop().unwrap(), None);
    }

    #[test]
    fn frame_buf_rejects_absurd_lengths() {
        let mut buf = FrameBuf::new();
        buf.extend(&u32::MAX.to_be_bytes());
        assert_eq!(buf.pop(), Err(()));
    }
}
