//! The worker process: one rank of the distributed BP/matching run.
//!
//! A worker is the *same binary* as the coordinator, re-entered via the
//! `NETALIGN_DIST_WORKER=<addr>#<slot>` environment variable — every
//! distributed-capable binary calls [`maybe_run_worker`] first thing in
//! `main`. The worker dials the coordinator, says `Hello{slot}`, and
//! then serves requests forever:
//!
//! * BP supersteps run the **same kernels in the same order** as the
//!   simulated ranks in [`crate::bp::distributed`] (bit-identity),
//! * matcher phases delegate to the transport-agnostic
//!   [`RankCore`](netalign_matching::distributed::RankCore),
//! * every `Finish` writes an `NADC` checkpoint **before** replying, so
//!   the coordinator's last gathered iteration is always durable,
//! * requests are deduplicated by sequence number: a repeat of the last
//!   `seq` re-serves the cached reply without re-executing (the
//!   coordinator retransmits on timeout; execution must stay
//!   exactly-once).
//!
//! A torn or closed connection makes the worker re-dial and re-`Hello`;
//! if the coordinator is gone the worker exits cleanly. Deterministic
//! crash points (`NETALIGN_FAULT_KILL=dist-recv|dist-solve|dist-send`)
//! abort the process at exact protocol moments for the chaos suite.

use super::ckpt::{self, CkptBlock};
use super::rpc::MAX_FRAME;
use super::wire::{decode_frame, encode_frame, Frame, MatchPhase, Reply, Request, SetupMsg};
use crate::bp::distributed::ColStat;
use crate::frame::{self, FrameRead};
use netalign_graph::BipartiteGraph;
use netalign_matching::distributed::RankCore;
use netalign_trace::faults;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable that turns a process into a worker.
pub const WORKER_ENV: &str = "NETALIGN_DIST_WORKER";

/// If this process was spawned as a distributed worker, run the worker
/// loop and exit; otherwise return immediately. Call first in `main`.
pub fn maybe_run_worker() {
    if let Ok(spec) = std::env::var(WORKER_ENV) {
        faults::load_env();
        let code = worker_main(&spec);
        std::process::exit(code);
    }
}

/// One rank's solver state, mirroring the simulated `RankState`.
struct WorkerState {
    l: BipartiteGraph,
    part_index: usize,
    num_parts: usize,
    e_lo: usize,
    e_hi: usize,
    v_lo: usize,
    v_hi: usize,
    /// Global `rowptr[e_lo..=e_hi]` (indexed locally by `e - e_lo`).
    rowptr: Vec<usize>,
    send_plan: Vec<Vec<u32>>,
    scatter_plan: Vec<Vec<u32>>,
    alpha: f64,
    beta: f64,
    state_dir: PathBuf,
    y: Vec<f64>,
    z: Vec<f64>,
    y_prev: Vec<f64>,
    z_prev: Vec<f64>,
    d: Vec<f64>,
    sk: Vec<f64>,
    sk_prev: Vec<f64>,
    skt: Vec<f64>,
    fv: Vec<f64>,
    omr: Vec<f64>,
    omc: Vec<f64>,
    matcher: Option<(RankCore, Vec<f64>)>,
}

impl WorkerState {
    fn build(msg: SetupMsg) -> WorkerState {
        let l = BipartiteGraph::from_entries(
            msg.na as usize,
            msg.nb as usize,
            msg.edges.iter().map(|&(a, b, w)| (a, b, w)),
        );
        let (e_lo, e_hi) = (msg.e_lo as usize, msg.e_hi as usize);
        let (v_lo, v_hi) = (msg.v_lo as usize, msg.v_hi as usize);
        let ne = e_hi - e_lo;
        let nv = v_hi - v_lo;
        let or_zeros = |v: Vec<f64>, len: usize| if v.is_empty() { vec![0.0; len] } else { v };
        WorkerState {
            l,
            part_index: msg.part_index as usize,
            num_parts: msg.num_parts as usize,
            e_lo,
            e_hi,
            v_lo,
            v_hi,
            rowptr: msg.rowptr.iter().map(|&v| v as usize).collect(),
            send_plan: msg.send_plan,
            scatter_plan: msg.scatter_plan,
            alpha: msg.alpha,
            beta: msg.beta,
            state_dir: PathBuf::from(msg.state_dir),
            y: vec![0.0; ne],
            z: vec![0.0; ne],
            y_prev: or_zeros(msg.y_prev, ne),
            z_prev: or_zeros(msg.z_prev, ne),
            d: vec![0.0; ne],
            sk: vec![0.0; nv],
            sk_prev: or_zeros(msg.sk_prev, nv),
            skt: vec![0.0; nv],
            fv: vec![0.0; nv],
            omr: vec![0.0; ne],
            omc: vec![0.0; ne],
            matcher: None,
        }
    }

    /// Local rowptr access: the shipped slice is global values indexed
    /// by `e - e_lo`.
    #[inline]
    fn row(&self, e: usize) -> std::ops::Range<usize> {
        self.rowptr[e - self.e_lo]..self.rowptr[e - self.e_lo + 1]
    }

    /// Superstep A, producer half.
    fn produce_halo(&self) -> Vec<Vec<f64>> {
        self.send_plan
            .iter()
            .map(|plan| plan.iter().map(|&pos| self.sk_prev[pos as usize]).collect())
            .collect()
    }

    /// Superstep A, consumer half.
    fn scatter_halo(&mut self, payloads: &[Vec<f64>]) {
        for (src, vals) in payloads.iter().enumerate() {
            for (&pos, &v) in self.scatter_plan[src].iter().zip(vals.iter()) {
                self.skt[pos as usize] = v;
            }
        }
    }

    /// Superstep B: F/d kernels, othermaxrow, column partials — the
    /// simulated rank's closure, verbatim.
    fn solve(&mut self) -> Vec<(u32, ColStat)> {
        let w = self.l.weights();
        for i in 0..self.fv.len() {
            self.fv[i] = (self.beta + self.skt[i]).clamp(0.0, self.beta);
        }
        for e in self.e_lo..self.e_hi {
            let le = e - self.e_lo;
            let mut acc = 0.0;
            for idx in self.row(e) {
                acc += self.fv[idx - self.v_lo];
            }
            self.d[le] = self.alpha * w[e] + acc;
        }
        // othermaxrow on y_prev: rows are local.
        for a in 0..self.l.num_left() as u32 {
            let r = self.l.left_range(a);
            if r.start < self.e_lo || r.end > self.e_hi || r.is_empty() {
                continue;
            }
            let mut stat = ColStat::EMPTY;
            for e in r.clone() {
                stat.push(self.y_prev[e - self.e_lo], e as u32);
            }
            for e in r {
                let v = if e as u32 == stat.arg_eid {
                    stat.max2
                } else {
                    stat.max1
                };
                self.omr[e - self.e_lo] = v.max(0.0);
            }
        }
        // Column partials over z_prev.
        let mut partials: Vec<(u32, ColStat)> = Vec::new();
        let mut last: Option<usize> = None;
        for e in self.e_lo..self.e_hi {
            let b = self.l.endpoints(e).1;
            let v = self.z_prev[e - self.e_lo];
            match last {
                Some(i) if partials[i].0 == b => partials[i].1.push(v, e as u32),
                _ => {
                    if let Some(i) = partials.iter().position(|&(pb, _)| pb == b) {
                        partials[i].1.push(v, e as u32);
                        last = Some(i);
                        continue;
                    }
                    let mut s0 = ColStat::EMPTY;
                    s0.push(v, e as u32);
                    partials.push((b, s0));
                    last = Some(partials.len() - 1);
                }
            }
        }
        partials
    }

    /// Superstep D: finish othermax, S update, damping; then durably
    /// checkpoint the damped state for iteration `k` before the caller
    /// replies.
    fn finish(&mut self, k: u32, gk: f64, stats: &[(u32, ColStat)]) -> Reply {
        for e in self.e_lo..self.e_hi {
            let le = e - self.e_lo;
            let b = self.l.endpoints(e).1;
            let stat = stats
                .iter()
                .find(|&&(sb, _)| sb == b)
                .map(|&(_, s)| s)
                .unwrap_or(ColStat::EMPTY);
            let v = if e as u32 == stat.arg_eid {
                stat.max2
            } else {
                stat.max1
            };
            self.omc[le] = v.max(0.0);
        }
        for le in 0..self.y.len() {
            self.y[le] = self.d[le] - self.omc[le];
            self.z[le] = self.d[le] - self.omr[le];
        }
        // S^(k) = diag(y + z - d) S - F (local rows).
        for e in self.e_lo..self.e_hi {
            let le = e - self.e_lo;
            let scale = self.y[le] + self.z[le] - self.d[le];
            for idx in self.row(e) {
                self.sk[idx - self.v_lo] = scale - self.fv[idx - self.v_lo];
            }
        }
        for (c, pr) in self.y.iter_mut().zip(self.y_prev.iter_mut()) {
            *c = gk * *c + (1.0 - gk) * *pr;
            *pr = *c;
        }
        for (c, pr) in self.z.iter_mut().zip(self.z_prev.iter_mut()) {
            *c = gk * *c + (1.0 - gk) * *pr;
            *pr = *c;
        }
        for (c, pr) in self.sk.iter_mut().zip(self.sk_prev.iter_mut()) {
            *c = gk * *c + (1.0 - gk) * *pr;
            *pr = *c;
        }
        let block = CkptBlock {
            part: self.part_index as u32,
            iteration: k,
            e_lo: self.e_lo as u64,
            e_hi: self.e_hi as u64,
            v_lo: self.v_lo as u64,
            v_hi: self.v_hi as u64,
            y_prev: self.y_prev.clone(),
            z_prev: self.z_prev.clone(),
            sk_prev: self.sk_prev.clone(),
        };
        if let Err(e) = ckpt::write(&self.state_dir, &block) {
            return Reply::Err(format!("checkpoint write failed: {e}"));
        }
        Reply::Blocks {
            y: self.y.clone(),
            z: self.z.clone(),
        }
    }
}

fn handle(state: &mut Option<WorkerState>, req: Request) -> Reply {
    if let Request::Setup(msg) = req {
        *state = Some(WorkerState::build(*msg));
        return Reply::Ack;
    }
    let Some(st) = state.as_mut() else {
        return Reply::Err("request before Setup".to_string());
    };
    match req {
        Request::Setup(_) | Request::Shutdown => unreachable!("handled by caller"),
        Request::ProduceHalo => Reply::HaloPayloads(st.produce_halo()),
        Request::ScatterHalo { payloads } => {
            st.scatter_halo(&payloads);
            Reply::Ack
        }
        Request::Solve { .. } => {
            if faults::kill_due("dist-solve") {
                std::process::abort();
            }
            Reply::Partials(st.solve())
        }
        Request::Finish { k, gk, stats } => st.finish(k, gk, &stats),
        Request::MatchStart { weights, faulty } => {
            let core = RankCore::new(&st.l, st.part_index, st.num_parts, faulty);
            st.matcher = Some((core, weights));
            Reply::Ack
        }
        Request::MatchPropose { round } => {
            let WorkerState { l, matcher, .. } = st;
            let Some((core, weights)) = matcher.as_mut() else {
                return Reply::Err("MatchPropose before MatchStart".to_string());
            };
            let mut out = Vec::new();
            core.phase_propose(l, weights, round as usize, |dest, msg| {
                out.push((dest as u32, msg));
            });
            Reply::MatchOut(out)
        }
        Request::MatchExchange { phase, inbox } => {
            let WorkerState { l, matcher, .. } = st;
            let Some((core, weights)) = matcher.as_mut() else {
                return Reply::Err("MatchExchange before MatchStart".to_string());
            };
            match phase {
                MatchPhase::Match => {
                    let mut out = Vec::new();
                    core.phase_match(&inbox, |dest, msg| out.push((dest as u32, msg)));
                    Reply::MatchOut(out)
                }
                MatchPhase::Invalidate => {
                    Reply::Progress(core.phase_invalidate(l, weights, &inbox))
                }
            }
        }
        Request::MatchPairs => {
            let Some((core, _)) = st.matcher.as_ref() else {
                return Reply::Err("MatchPairs before MatchStart".to_string());
            };
            Reply::Pairs(core.pairs())
        }
    }
}

fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let mut wire = Vec::new();
    frame::write_frame(&mut wire, &encode_frame(frame)).expect("in-memory frame write");
    wire
}

/// Dial the coordinator, retrying briefly (it may be mid-accept-loop
/// or this may be a reconnect racing a supervisor decision).
fn dial(addr: &str) -> Option<TcpStream> {
    for _ in 0..60 {
        if let Ok(s) = TcpStream::connect(addr) {
            return Some(s);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

fn worker_main(spec: &str) -> i32 {
    let Some((addr, slot)) = spec.rsplit_once('#') else {
        eprintln!("netalign worker: bad {WORKER_ENV} spec {spec:?}");
        return 2;
    };
    let Ok(slot) = slot.parse::<u32>() else {
        eprintln!("netalign worker: bad slot in {spec:?}");
        return 2;
    };

    // Replies and heartbeats share one writer behind a mutex; the
    // reader is a cloned handle so blocking reads never hold the lock.
    let writer: Arc<Mutex<Option<TcpStream>>> = Arc::new(Mutex::new(None));
    {
        let writer = Arc::clone(&writer);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(100));
            let beat = frame_bytes(&Frame::Heartbeat { slot });
            let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = guard.as_mut() {
                // Write errors are left for the main loop's reader to
                // notice; the beat is best-effort by design.
                let _ = s.write_all(&beat).and_then(|_| s.flush());
            }
        });
    }

    let mut state: Option<WorkerState> = None;
    let mut cache: Option<(u64, Vec<u8>)> = None;
    'outer: loop {
        let Some(stream) = dial(addr) else {
            // Coordinator gone: a clean end of the run.
            return 0;
        };
        let _ = stream.set_nodelay(true);
        let Ok(mut reader) = stream.try_clone() else {
            continue 'outer;
        };
        {
            let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
            let mut s = stream;
            if s.write_all(&frame_bytes(&Frame::Hello { slot }))
                .and_then(|_| s.flush())
                .is_err()
            {
                continue 'outer;
            }
            *guard = Some(s);
        }
        loop {
            let payload = match frame::read_frame(&mut reader, MAX_FRAME) {
                Ok(FrameRead::Frame(p)) => p,
                Ok(FrameRead::Oversized(_)) => continue,
                Ok(FrameRead::Closed) | Err(_) => continue 'outer,
            };
            let Ok(Frame::Request { seq, req }) = decode_frame(&payload) else {
                // Undecodable or unexpected frame: resync by
                // reconnecting.
                continue 'outer;
            };
            if faults::kill_due("dist-recv") {
                std::process::abort();
            }
            if let Some((last, bytes)) = &cache {
                if seq == *last {
                    // Retransmitted request: re-serve the cached reply,
                    // do not re-execute.
                    let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(s) = guard.as_mut() {
                        let _ = s.write_all(bytes).and_then(|_| s.flush());
                    }
                    continue;
                }
                if seq < *last {
                    // A late duplicate of an older request; the
                    // coordinator no longer waits on it.
                    continue;
                }
            }
            if matches!(req, Request::Shutdown) {
                return 0;
            }
            let reply = handle(&mut state, req);
            let bytes = frame_bytes(&Frame::Reply { seq, reply });
            if faults::kill_due("dist-send") {
                std::process::abort();
            }
            cache = Some((seq, bytes.clone()));
            let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = guard.as_mut() {
                if s.write_all(&bytes).and_then(|_| s.flush()).is_err() {
                    continue 'outer;
                }
            }
        }
    }
}
