//! Real distributed execution: multi-process BP and matching over
//! localhost TCP with crash recovery.
//!
//! Where [`crate::bp::distributed`] *simulates* ranks with scoped
//! threads, this module runs them as actual worker **processes** wired
//! to a coordinator over length-prefixed frames ([`crate::frame`]):
//!
//! * [`wire`] — the bit-exact binary codec for coordinator↔worker
//!   messages;
//! * [`rpc`] — reliable request/response over a lossy transport
//!   (sequence numbers, retransmission, reconnect handling,
//!   deterministic fault injection on first transmissions);
//! * [`worker`] — the worker process loop: the BP superstep kernels
//!   and matcher phases, exactly-once execution via seq dedup, durable
//!   per-iteration checkpoints, deterministic crash points;
//! * [`ckpt`] — the `NADC` checkpoint files recovery resumes from;
//! * [`coordinator`] — supervision (heartbeats, bounded respawn,
//!   repartition onto survivors) and the BSP driver whose results are
//!   bit-identical to the single-process engine under every injected
//!   fault.
//!
//! Entry points: [`align_distributed`] from the coordinator side, and
//! [`maybe_run_worker`] — which every distributed-capable binary must
//! call first in `main` so spawned workers re-enter the worker loop.

pub(crate) mod ckpt;
pub(crate) mod coordinator;
pub(crate) mod rpc;
pub(crate) mod wire;
pub(crate) mod worker;

pub use coordinator::{align_distributed, match_distributed, DistConfig, DistError, DistReport};
pub use netalign_trace::faults::{parse_net_fault, NetFault, NetFaultKind};
pub use rpc::Timeouts;
pub use worker::{maybe_run_worker, WORKER_ENV};
