//! The coordinator: spawns worker processes, drives the BSP supersteps
//! over reliable RPC, supervises failures, and assembles the final
//! alignment.
//!
//! The driver is the simulated [`crate::bp::distributed`] loop with the
//! scoped threads replaced by RPC round-trips:
//!
//! * **A** — gather halo payloads (`ProduceHalo`), route them by the
//!   static plans, scatter (`ScatterHalo`);
//! * **B** — `Solve` runs F/d/othermaxrow and column partials on every
//!   worker concurrently;
//! * **C** — the coordinator merges column partials with the exact
//!   shared [`merge_col_partials`] kernel;
//! * **D** — `Finish` completes othermaxcol, the S update, and damping
//!   on the workers, which checkpoint durably *before* replying and
//!   return their damped `y`/`z` blocks;
//! * **E** — rounding runs the distributed locally-dominant matcher
//!   *over the same RPC transport*, the coordinator acting as the
//!   message router between rank phases.
//!
//! Failure handling is a single loop invariant: any slot failure at any
//! point unwinds to the epoch boundary, where [`recover`] respawns the
//! dead worker (bounded backoff) or — past its respawn budget —
//! repartitions its rows onto the survivors, and [`resync`] re-seeds
//! every worker from the newest complete checkpoint tiling. Because
//! checkpoints are written before `Finish` replies, the resume point
//! never trails what the coordinator has gathered, and deterministic
//! re-execution makes the final result **bit-identical** to the
//! single-process engine no matter which faults fired.

use super::ckpt;
use super::rpc::{LinkDead, Rpc, Timeouts, MAX_FRAME};
use super::wire::{decode_frame, Frame, MatchPhase, Reply, Request, SetupMsg};
use super::worker::WORKER_ENV;
use crate::bp::distributed::{merge_col_partials, ColStat, Partition};
use crate::config::AlignConfig;
use crate::frame::{self, FrameRead};
use crate::objective::evaluate_matching;
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::trace::RunTrace;
use netalign_matching::distributed::{pairs_to_matching, DistMsg, Quiescence};
use netalign_matching::Matching;
use netalign_trace::faults::{parse_net_fault, NetFault};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variables stripped from worker processes so a fault
/// plan armed on the coordinator never arms every worker (which would
/// crash respawned replacements forever). Kills are forwarded
/// explicitly — to slot 0's first spawn only.
const FAULT_VARS: [&str; 7] = [
    "NETALIGN_FAULT_NAN",
    "NETALIGN_FAULT_PANIC",
    "NETALIGN_FAULT_CHUNK_PANIC",
    "NETALIGN_FAULT_CKPT",
    "NETALIGN_FAULT_DEADLINE",
    "NETALIGN_FAULT_KILL",
    "NETALIGN_FAULT_NET",
];

/// How long a freshly spawned worker gets to dial back and say Hello.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);
/// Respawn backoff: `base * 2^attempt`, capped.
const BACKOFF_BASE: Duration = Duration::from_millis(50);
const BACKOFF_CAP: Duration = Duration::from_millis(1000);

/// Configuration of a distributed run.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Worker process count (the partition is additionally capped at
    /// the number of left vertices).
    pub workers: usize,
    /// Listening port for worker connections; 0 picks an ephemeral
    /// port.
    pub base_port: u16,
    /// Worker executable; defaults to the current executable (every
    /// distributed-capable binary re-enters via
    /// [`super::maybe_run_worker`]).
    pub worker_bin: Option<PathBuf>,
    /// Checkpoint directory; defaults to a fresh per-run temp dir,
    /// removed afterwards.
    pub state_dir: Option<PathBuf>,
    /// Respawns allowed per slot before its rows move to survivors.
    pub respawn_budget: u32,
    /// Transport timing knobs.
    pub timeouts: Timeouts,
    /// Deterministic transport fault injected on the coordinator's
    /// outgoing first transmissions.
    pub net_fault: Option<NetFault>,
    /// `NETALIGN_FAULT_KILL` value forwarded to slot 0's *first* spawn
    /// (respawned replacements never inherit it).
    pub worker_kill: Option<String>,
    /// Drop every Nth routed matcher message (the workers run the
    /// loss-tolerant matcher protocol when set).
    pub matcher_msg_drop: Option<u64>,
}

impl DistConfig {
    pub fn new(workers: usize) -> DistConfig {
        DistConfig {
            workers,
            base_port: 0,
            worker_bin: None,
            state_dir: None,
            respawn_budget: 2,
            timeouts: Timeouts::default(),
            net_fault: None,
            worker_kill: None,
            matcher_msg_drop: None,
        }
    }

    /// [`DistConfig::new`] plus the process environment: the
    /// `NETALIGN_FAULT_NET` / `NETALIGN_FAULT_KILL` grammars and a
    /// `NETALIGN_DIST_WORKER_BIN` override (the CLI path).
    pub fn from_env(workers: usize) -> DistConfig {
        let mut dc = DistConfig::new(workers);
        dc.net_fault = std::env::var("NETALIGN_FAULT_NET")
            .ok()
            .and_then(|v| parse_net_fault(&v));
        dc.worker_kill = std::env::var("NETALIGN_FAULT_KILL").ok();
        dc.worker_bin = std::env::var_os("NETALIGN_DIST_WORKER_BIN").map(PathBuf::from);
        dc
    }
}

/// Why a distributed run could not complete.
#[derive(Debug)]
pub enum DistError {
    /// A worker process (or the listening socket) could not be created.
    Spawn(std::io::Error),
    /// Every worker slot exhausted its respawn budget.
    NoSurvivors,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Spawn(e) => write!(f, "cannot start distributed run: {e}"),
            DistError::NoSurvivors => {
                write!(f, "all worker slots exhausted their respawn budgets")
            }
        }
    }
}

impl std::error::Error for DistError {}

/// A completed distributed run: the alignment plus the recovery
/// counters accumulated while producing it.
#[derive(Debug)]
pub struct DistReport {
    pub result: AlignmentResult,
    /// Worker processes at launch.
    pub workers: usize,
    /// Worker respawns during this run.
    pub worker_restarts: u64,
    /// RPC retransmissions during this run.
    pub retransmissions: u64,
    /// Permanent slot deaths re-partitioned onto survivors.
    pub repartitions: u64,
    /// Recovery rounds (respawn or repartition + checkpoint resync).
    pub recoveries: u64,
}

/// A slot failed mid-protocol; unwind to the epoch boundary.
struct DeadSlot(usize);

struct Cluster {
    rpc: Rpc,
    children: Vec<Option<Child>>,
    respawns: Vec<u32>,
    dead: Vec<bool>,
    worker_bin: PathBuf,
    addr: String,
    worker_kill: Option<String>,
    kill_forwarded: bool,
    accept_stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Cluster {
    fn alive_slots(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&s| !self.dead[s]).collect()
    }

    fn spawn(&mut self, slot: usize) -> Result<(), DistError> {
        let mut cmd = Command::new(&self.worker_bin);
        cmd.env(WORKER_ENV, format!("{}#{}", self.addr, slot));
        for var in FAULT_VARS {
            cmd.env_remove(var);
        }
        if slot == 0 && !self.kill_forwarded {
            if let Some(kill) = &self.worker_kill {
                cmd.env("NETALIGN_FAULT_KILL", kill);
            }
            self.kill_forwarded = true;
        }
        cmd.stdin(Stdio::null()).stdout(Stdio::null());
        let child = cmd.spawn().map_err(DistError::Spawn)?;
        self.children[slot] = Some(child);
        Ok(())
    }

    fn kill(&mut self, slot: usize) {
        if let Some(mut child) = self.children[slot].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn shutdown(&mut self) {
        for slot in self.alive_slots() {
            self.rpc.send_best_effort(slot, Request::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        for child in self.children.iter_mut().flatten() {
            while child.try_wait().map(|s| s.is_none()).unwrap_or(false)
                && Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        for slot in 0..self.children.len() {
            self.kill(slot);
        }
        self.accept_stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<(u32, TcpStream)>, stop: Arc<AtomicBool>) {
    let _ = listener.set_nonblocking(true);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Read the Hello synchronously on a helper thread so a
                // silent connection cannot stall the accept loop.
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    if let Ok(FrameRead::Frame(payload)) = frame::read_frame(&mut stream, MAX_FRAME)
                    {
                        if let Ok(Frame::Hello { slot }) = decode_frame(&payload) {
                            let _ = stream.set_read_timeout(None);
                            let _ = tx.send((slot, stream));
                        }
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// Run belief propagation + locally-dominant rounding across real
/// worker processes. The result is bit-identical to
/// [`crate::bp::belief_propagation`] with the parallel locally-dominant
/// matcher (and to [`crate::bp::distributed_belief_propagation`] at any
/// rank count), regardless of injected transport faults or worker
/// crashes — or the run fails with a typed [`DistError`].
pub fn align_distributed(
    problem: &NetAlignProblem,
    config: &AlignConfig,
    dc: &DistConfig,
) -> Result<DistReport, DistError> {
    config.validate();
    let stats = netalign_trace::dist::global();
    stats.solves.fetch_add(1, Ordering::Relaxed);
    let before = stats.snapshot();

    let (result, slots) = run_with_cluster(dc, |cluster, state_dir| {
        drive(cluster, problem, config, dc, state_dir)
    });

    let after = stats.snapshot();
    result.map(|result| DistReport {
        result,
        workers: slots,
        worker_restarts: after.worker_restarts - before.worker_restarts,
        retransmissions: after.retransmissions - before.retransmissions,
        repartitions: after.repartitions - before.repartitions,
        recoveries: after.recoveries - before.recoveries,
    })
}

/// Run **only** the distributed locally-dominant matcher over real
/// worker processes: every part gets the candidate graph, then the
/// propose/match/invalidate phases run with the coordinator routing
/// (and, when [`DistConfig::matcher_msg_drop`] is set, deterministically
/// dropping) the inter-rank messages. This is the real-transport
/// counterpart of
/// [`netalign_matching::distributed::distributed_local_dominant`] and
/// keeps its guarantees — validity, half-approximation, termination —
/// under message loss.
pub fn match_distributed(
    problem: &NetAlignProblem,
    weights: &[f64],
    dc: &DistConfig,
) -> Result<Matching, DistError> {
    assert_eq!(
        weights.len(),
        problem.l.num_edges(),
        "one weight per edge of L"
    );
    let config = AlignConfig::default();
    let (result, _slots) = run_with_cluster(dc, |cluster, state_dir| loop {
        let setup = resync(cluster, problem, &config, state_dir, 0).and_then(|(pt, assign, _)| {
            let np = pt.num_ranks();
            round_distributed(cluster, problem, weights, np, &assign, dc.matcher_msg_drop)
        });
        match setup {
            Ok(m) => return Ok(m),
            Err(DeadSlot(slot)) => recover(cluster, slot, dc)?,
        }
    });
    result
}

/// Shared lifecycle of every coordinator entry point: state dir,
/// listening socket, accept thread, worker spawn + attach (with
/// recovery), then `f`, then teardown. Returns `f`'s result plus the
/// launched slot count.
fn run_with_cluster<T>(
    dc: &DistConfig,
    f: impl FnOnce(&mut Cluster, &std::path::Path) -> Result<T, DistError>,
) -> (Result<T, DistError>, usize) {
    static RUN_ID: AtomicU64 = AtomicU64::new(0);
    let own_state_dir = dc.state_dir.is_none();
    let state_dir = dc.state_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "netalign-dist-{}-{}",
            std::process::id(),
            RUN_ID.fetch_add(1, Ordering::Relaxed)
        ))
    });
    let slots = dc.workers.max(1);

    let setup = (|| -> Result<Cluster, DistError> {
        std::fs::create_dir_all(&state_dir).map_err(DistError::Spawn)?;
        let listener = TcpListener::bind(("127.0.0.1", dc.base_port)).map_err(DistError::Spawn)?;
        let addr = listener.local_addr().map_err(DistError::Spawn)?.to_string();
        let (tx, rx) = std::sync::mpsc::channel();
        let accept_stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&accept_stop);
            std::thread::spawn(move || accept_loop(listener, tx, stop))
        };
        let worker_bin = dc
            .worker_bin
            .clone()
            .or_else(|| std::env::current_exe().ok())
            .ok_or_else(|| {
                DistError::Spawn(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "no worker binary",
                ))
            })?;
        Ok(Cluster {
            rpc: Rpc::new(slots, rx, dc.timeouts, dc.net_fault),
            children: (0..slots).map(|_| None).collect(),
            respawns: vec![0; slots],
            dead: vec![false; slots],
            worker_bin,
            addr,
            worker_kill: dc.worker_kill.clone(),
            kill_forwarded: false,
            accept_stop,
            accept_thread: Some(accept_thread),
        })
    })();
    let mut cluster = match setup {
        Ok(cluster) => cluster,
        Err(e) => return (Err(e), slots),
    };

    let launch = (|| -> Result<(), DistError> {
        for slot in 0..slots {
            cluster.spawn(slot)?;
        }
        Ok(())
    })();
    let result = launch.and_then(|_| {
        let deadline = Instant::now() + HELLO_TIMEOUT;
        for slot in 0..slots {
            if !cluster.rpc.wait_attached(slot, deadline) {
                recover(&mut cluster, slot, dc)?;
            }
        }
        f(&mut cluster, &state_dir)
    });

    cluster.shutdown();
    if own_state_dir {
        let _ = std::fs::remove_dir_all(&state_dir);
    }
    (result, slots)
}

/// Handle a failed slot: kill it, respawn with exponential backoff
/// while its budget lasts, otherwise retire it (its rows will be
/// re-partitioned by the next [`resync`]). Errors only when no worker
/// survives.
fn recover(cluster: &mut Cluster, slot: usize, dc: &DistConfig) -> Result<(), DistError> {
    let stats = netalign_trace::dist::global();
    stats.recoveries.fetch_add(1, Ordering::Relaxed);
    cluster.kill(slot);
    cluster.rpc.clear_inflight(slot);
    loop {
        if cluster.respawns[slot] < dc.respawn_budget {
            let attempt = cluster.respawns[slot];
            cluster.respawns[slot] += 1;
            stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
            let backoff = BACKOFF_BASE
                .saturating_mul(1u32 << attempt.min(10))
                .min(BACKOFF_CAP);
            std::thread::sleep(backoff);
            cluster.spawn(slot)?;
            if cluster
                .rpc
                .wait_attached(slot, Instant::now() + HELLO_TIMEOUT)
            {
                return Ok(());
            }
            // No Hello in time: burn another budget unit and retry.
            cluster.kill(slot);
        } else {
            cluster.dead[slot] = true;
            cluster.rpc.mark_dead(slot);
            stats.repartitions.fetch_add(1, Ordering::Relaxed);
            if cluster.alive_slots().is_empty() {
                return Err(DistError::NoSurvivors);
            }
            return Ok(());
        }
    }
}

/// Issue `reqs\[i\]` to `assign\[i\]` concurrently (begin-all, then
/// wait-all) and collect the replies in part order.
fn broadcast(
    cluster: &mut Cluster,
    assign: &[usize],
    reqs: Vec<Request>,
) -> Result<Vec<Reply>, DeadSlot> {
    debug_assert_eq!(assign.len(), reqs.len());
    let seqs: Vec<u64> = assign
        .iter()
        .zip(reqs)
        .map(|(&slot, req)| cluster.rpc.begin(slot, req))
        .collect();
    let mut replies = Vec::with_capacity(assign.len());
    for (&slot, seq) in assign.iter().zip(seqs) {
        match cluster.rpc.wait(slot, seq) {
            Ok(Reply::Err(_)) | Err(LinkDead) => return Err(DeadSlot(slot)),
            Ok(reply) => replies.push(reply),
        }
    }
    Ok(replies)
}

/// Re-seed every live worker: partition over the survivors, find the
/// newest complete checkpoint tiling at or before `completed`, delete
/// anything newer, and `Setup` all parts at that resume point. Returns
/// the partition, the part→slot assignment, and the resume iteration.
fn resync(
    cluster: &mut Cluster,
    p: &NetAlignProblem,
    config: &AlignConfig,
    state_dir: &std::path::Path,
    completed: u32,
) -> Result<(Partition, Vec<usize>, u32), DeadSlot> {
    let alive = cluster.alive_slots();
    let partition = Partition::new(p, alive.len());
    let np = partition.num_ranks();
    let assign: Vec<usize> = alive[..np].to_vec();

    let m = p.l.num_edges();
    let tiling = ckpt::newest_tiling(state_dir, completed, m as u64);
    let (j, gy, gz, gsk) = match tiling {
        Some((j, blocks)) => {
            let mut gy = Vec::with_capacity(m);
            let mut gz = Vec::with_capacity(m);
            let mut gsk = Vec::new();
            for b in &blocks {
                gy.extend_from_slice(&b.y_prev);
                gz.extend_from_slice(&b.z_prev);
                gsk.extend_from_slice(&b.sk_prev);
            }
            (j, gy, gz, gsk)
        }
        None => (0, Vec::new(), Vec::new(), Vec::new()),
    };
    ckpt::prune_beyond(state_dir, j);

    let rowptr = p.s.rowptr();
    let edges: Vec<(u32, u32, f64)> = (0..m)
        .map(|e| {
            let (a, b) = p.l.endpoints(e);
            (a, b, p.l.weights()[e])
        })
        .collect();
    let reqs: Vec<Request> = (0..np)
        .map(|i| {
            let pt = &partition.parts[i];
            Request::Setup(Box::new(SetupMsg {
                na: p.l.num_left() as u32,
                nb: p.l.num_right() as u32,
                edges: edges.clone(),
                part_index: i as u32,
                num_parts: np as u32,
                a_lo: pt.a_lo as u64,
                a_hi: pt.a_hi as u64,
                e_lo: pt.e_lo as u64,
                e_hi: pt.e_hi as u64,
                v_lo: pt.v_lo as u64,
                v_hi: pt.v_hi as u64,
                rowptr: rowptr[pt.e_lo..=pt.e_hi]
                    .iter()
                    .map(|&v| v as u64)
                    .collect(),
                send_plan: pt.send_plan.clone(),
                scatter_plan: pt.scatter_plan.clone(),
                alpha: config.alpha,
                beta: config.beta,
                state_dir: state_dir.display().to_string(),
                start_iter: j,
                y_prev: if j > 0 {
                    gy[pt.e_lo..pt.e_hi].to_vec()
                } else {
                    Vec::new()
                },
                z_prev: if j > 0 {
                    gz[pt.e_lo..pt.e_hi].to_vec()
                } else {
                    Vec::new()
                },
                sk_prev: if j > 0 {
                    gsk[pt.v_lo..pt.v_hi].to_vec()
                } else {
                    Vec::new()
                },
            }))
        })
        .collect();
    for reply in broadcast(cluster, &assign, reqs)? {
        debug_assert!(matches!(reply, Reply::Ack));
    }
    Ok((partition, assign, j))
}

/// One BP iteration across the cluster (supersteps A–D); returns the
/// gathered damped `y`/`z` iterates.
fn iterate_once(
    cluster: &mut Cluster,
    p: &NetAlignProblem,
    partition: &Partition,
    assign: &[usize],
    k: u32,
    gk: f64,
) -> Result<(Vec<f64>, Vec<f64>), DeadSlot> {
    let np = partition.num_ranks();

    // A: halo exchange through the coordinator.
    let produced = broadcast(cluster, assign, vec![Request::ProduceHalo; np])?;
    let payloads: Vec<Vec<Vec<f64>>> = produced
        .into_iter()
        .enumerate()
        .map(|(i, reply)| match reply {
            Reply::HaloPayloads(v) => Ok(v),
            _ => Err(DeadSlot(assign[i])),
        })
        .collect::<Result<_, _>>()?;
    let scatter_reqs: Vec<Request> = (0..np)
        .map(|r| Request::ScatterHalo {
            payloads: (0..np).map(|src| payloads[src][r].clone()).collect(),
        })
        .collect();
    broadcast(cluster, assign, scatter_reqs)?;

    // B: concurrent local solves.
    let solved = broadcast(cluster, assign, vec![Request::Solve { k }; np])?;
    let all_partials: Vec<Vec<(u32, ColStat)>> = solved
        .into_iter()
        .enumerate()
        .map(|(i, reply)| match reply {
            Reply::Partials(v) => Ok(v),
            _ => Err(DeadSlot(assign[i])),
        })
        .collect::<Result<_, _>>()?;

    // C: deterministic merge (the exact simulated kernel).
    let stats = merge_col_partials(&all_partials, p.l.num_right(), np);

    // D: finish + damping + durable checkpoint; gather damped blocks.
    let finish_reqs: Vec<Request> = (0..np)
        .map(|_| Request::Finish {
            k,
            gk,
            stats: stats.clone(),
        })
        .collect();
    let finished = broadcast(cluster, assign, finish_reqs)?;
    let m = p.l.num_edges();
    let mut gy = Vec::with_capacity(m);
    let mut gz = Vec::with_capacity(m);
    for (i, reply) in finished.into_iter().enumerate() {
        match reply {
            Reply::Blocks { y, z } => {
                gy.extend_from_slice(&y);
                gz.extend_from_slice(&z);
            }
            _ => return Err(DeadSlot(assign[i])),
        }
    }
    Ok((gy, gz))
}

/// Per-rank matcher output: `(rank, [(dest_rank, message)])`.
type RankOuts = Vec<(usize, Vec<(u32, DistMsg)>)>;

/// Round one gathered iterate with the distributed locally-dominant
/// matcher, the coordinator routing messages between rank phases
/// (dropping every Nth when the loss fault is armed).
fn round_distributed(
    cluster: &mut Cluster,
    p: &NetAlignProblem,
    weights: &[f64],
    np: usize,
    assign: &[usize],
    matcher_msg_drop: Option<u64>,
) -> Result<Matching, DeadSlot> {
    let faulty = matcher_msg_drop.is_some();
    let start_reqs: Vec<Request> = (0..np)
        .map(|_| Request::MatchStart {
            weights: weights.to_vec(),
            faulty,
        })
        .collect();
    broadcast(cluster, assign, start_reqs)?;

    let n = p.l.num_left() + p.l.num_right();
    let mut q = Quiescence::new(faulty, n);
    let mut drop_tick: u64 = 0;
    let mut route = |outs: RankOuts| -> Vec<Vec<DistMsg>> {
        let mut inboxes: Vec<Vec<DistMsg>> = vec![Vec::new(); np];
        for (_, msgs) in outs {
            for (dest, msg) in msgs {
                if let Some(every) = matcher_msg_drop {
                    drop_tick += 1;
                    if drop_tick.is_multiple_of(every) {
                        continue;
                    }
                }
                if let Some(inbox) = inboxes.get_mut(dest as usize) {
                    inbox.push(msg);
                }
            }
        }
        inboxes
    };
    let collect_outs = |replies: Vec<Reply>, assign: &[usize]| -> Result<RankOuts, DeadSlot> {
        replies
            .into_iter()
            .enumerate()
            .map(|(i, reply)| match reply {
                Reply::MatchOut(msgs) => Ok((i, msgs)),
                _ => Err(DeadSlot(assign[i])),
            })
            .collect()
    };

    loop {
        let round = q.round() as u32;
        let proposes = broadcast(cluster, assign, vec![Request::MatchPropose { round }; np])?;
        let inboxes = route(collect_outs(proposes, assign)?);

        let match_reqs: Vec<Request> = inboxes
            .into_iter()
            .map(|inbox| Request::MatchExchange {
                phase: MatchPhase::Match,
                inbox,
            })
            .collect();
        let matches = broadcast(cluster, assign, match_reqs)?;
        let inboxes = route(collect_outs(matches, assign)?);

        let inval_reqs: Vec<Request> = inboxes
            .into_iter()
            .map(|inbox| Request::MatchExchange {
                phase: MatchPhase::Invalidate,
                inbox,
            })
            .collect();
        let mut keep_going = false;
        for (i, reply) in broadcast(cluster, assign, inval_reqs)?
            .into_iter()
            .enumerate()
        {
            match reply {
                Reply::Progress(p) => keep_going |= p,
                _ => return Err(DeadSlot(assign[i])),
            }
        }
        if q.step(keep_going) {
            break;
        }
    }

    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (i, reply) in broadcast(cluster, assign, vec![Request::MatchPairs; np])?
        .into_iter()
        .enumerate()
    {
        match reply {
            Reply::Pairs(p) => pairs.extend(p),
            _ => return Err(DeadSlot(assign[i])),
        }
    }
    Ok(pairs_to_matching(&p.l, pairs))
}

/// The epoch loop: every slot failure unwinds here, recovery reseeds
/// the cluster from the newest durable checkpoint tiling, and the
/// deterministic re-execution continues where it left off.
fn drive(
    cluster: &mut Cluster,
    p: &NetAlignProblem,
    config: &AlignConfig,
    dc: &DistConfig,
    state_dir: &std::path::Path,
) -> Result<AlignmentResult, DistError> {
    let (alpha, beta, gamma) = (config.alpha, config.beta, config.gamma);
    let mut pending: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut history: Vec<IterationRecord> = Vec::new();
    let mut best: Option<(f64, Vec<f64>, usize)> = None;
    let mut trace = RunTrace::new();
    // Last iteration whose Finish replies were all gathered — its
    // checkpoints are durable on every worker.
    let mut completed: u32 = 0;

    'epoch: loop {
        let (partition, assign, j) = match resync(cluster, p, config, state_dir, completed) {
            Ok(sync) => sync,
            Err(DeadSlot(slot)) => {
                recover(cluster, slot, dc)?;
                continue 'epoch;
            }
        };
        let np = partition.num_ranks();
        // Roll coordinator state back to the resume point; anything
        // newer re-executes deterministically. `best` is a running
        // strict max, so dropping a post-`j` best regenerates it
        // identically.
        pending.retain(|(ik, _)| *ik as u32 <= j);
        history.retain(|r| r.iteration as u32 <= j);
        if best.as_ref().is_some_and(|&(_, _, bi)| bi as u32 > j) {
            best = None;
        }
        completed = j;
        let mut k = j as usize + 1;

        while k <= config.iterations {
            let gk = config.damping.fresh_weight(gamma, k);
            let (gy, gz) = match iterate_once(cluster, p, &partition, &assign, k as u32, gk) {
                Ok(v) => v,
                Err(DeadSlot(slot)) => {
                    recover(cluster, slot, dc)?;
                    continue 'epoch;
                }
            };
            completed = k as u32;
            pending.push((k, gy));
            pending.push((k, gz));
            if pending.len() >= config.batch.max(1) * 2 || k == config.iterations {
                trace.algo.rounding_invocations += 1;
                trace.algo.rounding_batch_sizes.push(pending.len() as u64);
                let mut failed: Option<usize> = None;
                while !pending.is_empty() {
                    let (ik, g) = pending[0].clone();
                    match round_distributed(cluster, p, &g, np, &assign, dc.matcher_msg_drop) {
                        Ok(matching) => {
                            let value = evaluate_matching(p, &matching, alpha, beta);
                            pending.remove(0);
                            if config.record_history {
                                history.push(IterationRecord {
                                    iteration: ik,
                                    objective: value.total,
                                    weight: value.weight,
                                    overlap: value.overlap,
                                    upper_bound: None,
                                });
                            }
                            if best.as_ref().is_none_or(|(b, _, _)| value.total > *b) {
                                best = Some((value.total, g, ik));
                                trace.algo.best_improvements += 1;
                            }
                        }
                        Err(DeadSlot(slot)) => {
                            failed = Some(slot);
                            break;
                        }
                    }
                }
                if let Some(slot) = failed {
                    recover(cluster, slot, dc)?;
                    continue 'epoch;
                }
            }
            k += 1;
        }

        // Crash-resume leftovers: a recovery at the final iteration can
        // land here with the unrounded tail of the last batch.
        if !pending.is_empty() {
            trace.algo.rounding_invocations += 1;
            trace.algo.rounding_batch_sizes.push(pending.len() as u64);
            let mut failed: Option<usize> = None;
            while !pending.is_empty() {
                let (ik, g) = pending[0].clone();
                match round_distributed(cluster, p, &g, np, &assign, dc.matcher_msg_drop) {
                    Ok(matching) => {
                        let value = evaluate_matching(p, &matching, alpha, beta);
                        pending.remove(0);
                        if config.record_history {
                            history.push(IterationRecord {
                                iteration: ik,
                                objective: value.total,
                                weight: value.weight,
                                overlap: value.overlap,
                                upper_bound: None,
                            });
                        }
                        if best.as_ref().is_none_or(|(b, _, _)| value.total > *b) {
                            best = Some((value.total, g, ik));
                            trace.algo.best_improvements += 1;
                        }
                    }
                    Err(DeadSlot(slot)) => {
                        failed = Some(slot);
                        break;
                    }
                }
            }
            if let Some(slot) = failed {
                recover(cluster, slot, dc)?;
                continue 'epoch;
            }
        }

        // Final re-rounding of the best iterate (the single-process
        // engine's closing step).
        let (best_obj, best_g, best_iter) = {
            let (b, g, bi) = best.as_ref().expect("at least one rounding happened");
            (*b, g.clone(), *bi)
        };
        let mut matching =
            match round_distributed(cluster, p, &best_g, np, &assign, dc.matcher_msg_drop) {
                Ok(m) => m,
                Err(DeadSlot(slot)) => {
                    recover(cluster, slot, dc)?;
                    continue 'epoch;
                }
            };
        // Same tail as the single-process `finalize`: the paper's
        // closing exact conversion of the best heuristic (§VII),
        // coordinator-local because the exact matcher is centralized.
        if config.final_exact_round && config.matcher != netalign_matching::MatcherKind::Exact {
            let exact = crate::rounding::round_heuristic(
                p,
                &best_g,
                alpha,
                beta,
                netalign_matching::MatcherKind::Exact,
            );
            if exact.value.total >= best_obj {
                matching = exact.matching;
            }
        }
        let value = evaluate_matching(p, &matching, alpha, beta);
        return Ok(AlignmentResult {
            matching,
            objective: value.total,
            weight: value.weight,
            overlap: value.overlap,
            best_iteration: best_iter,
            upper_bound: None,
            history,
            trace,
        });
    }
}
