//! IsoRank-style diffusion on the candidate set (Singh et al.,
//! restricted to sparse `L` as in Bayati et al. [13]).
//!
//! The heuristic vector `r` over `E_L` satisfies the PageRank-like
//! fixed point
//!
//! ```text
//!     r = c · (D⁻¹ S) r + (1 − c) · w / ‖w‖₁
//! ```
//!
//! where `S` is the squares matrix and `D` its row sums: an edge of `L`
//! is important when the edges it can overlap with are important. We
//! iterate to (approximate) convergence and round `r` with the chosen
//! matcher.

use crate::config::AlignConfig;
use crate::problem::NetAlignProblem;
use crate::result::{AlignmentResult, IterationRecord};
use crate::rounding::round_heuristic;
use crate::trace::RunTrace;
use rayon::prelude::*;

/// IsoRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct IsoRankConfig {
    /// Diffusion strength `c` (the PageRank damping factor).
    pub damping: f64,
    /// Power-iteration count.
    pub iterations: usize,
}

impl Default for IsoRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            iterations: 50,
        }
    }
}

/// Run IsoRank and round the final score vector.
pub fn isorank(p: &NetAlignProblem, iso: &IsoRankConfig, config: &AlignConfig) -> AlignmentResult {
    config.validate();
    assert!(
        (0.0..1.0).contains(&iso.damping),
        "damping must be in [0,1), got {}",
        iso.damping
    );
    let m = p.l.num_edges();
    let rowptr = p.s.rowptr();
    let colidx = p.s.colidx();

    // Teleportation distribution from the similarity weights (uniform
    // when w has no positive mass).
    let wsum: f64 = p.l.weights().iter().filter(|w| **w > 0.0).sum();
    let v: Vec<f64> = if wsum > 0.0 {
        p.l.weights().iter().map(|&w| w.max(0.0) / wsum).collect()
    } else {
        vec![1.0 / m.max(1) as f64; m]
    };
    // Row-stochastic scaling of S.
    let inv_rowsum: Vec<f64> = (0..m)
        .map(|e| {
            let len = rowptr[e + 1] - rowptr[e];
            if len > 0 {
                1.0 / len as f64
            } else {
                0.0
            }
        })
        .collect();

    let mut r = v.clone();
    let mut next = vec![0.0f64; m];
    for _ in 0..iso.iterations {
        next.par_iter_mut()
            .enumerate()
            .with_min_len(1000)
            .for_each(|(e, out)| {
                let mut acc = 0.0;
                for idx in rowptr[e]..rowptr[e + 1] {
                    let f = colidx[idx] as usize;
                    acc += r[f] * inv_rowsum[f];
                }
                *out = iso.damping * acc + (1.0 - iso.damping) * v[e];
            });
        std::mem::swap(&mut r, &mut next);
    }

    let rounded = round_heuristic(p, &r, config.alpha, config.beta, config.matcher);
    let history = vec![IterationRecord {
        iteration: iso.iterations,
        objective: rounded.value.total,
        weight: rounded.value.weight,
        overlap: rounded.value.overlap,
        upper_bound: None,
    }];
    AlignmentResult {
        matching: rounded.matching,
        objective: rounded.value.total,
        weight: rounded.value.weight,
        overlap: rounded.value.overlap,
        best_iteration: iso.iterations,
        upper_bound: None,
        history,
        trace: RunTrace::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::{BipartiteGraph, Graph};

    fn cycle_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn recovers_identity_on_cycle() {
        let p = cycle_problem();
        let r = isorank(&p, &IsoRankConfig::default(), &AlignConfig::default());
        assert_eq!(r.matching.cardinality(), 4);
        assert_eq!(r.overlap, 4.0);
    }

    #[test]
    fn zero_damping_is_naive_rounding() {
        let p = cycle_problem();
        let iso = IsoRankConfig {
            damping: 0.0,
            iterations: 5,
        };
        let r = isorank(&p, &iso, &AlignConfig::default());
        let naive = crate::baselines::naive_rounding(&p, &AlignConfig::default());
        assert_eq!(r.weight, naive.weight);
    }

    #[test]
    fn scores_remain_a_distribution() {
        // Row-stochastic diffusion plus teleportation keeps total mass
        // bounded; the rounded result must stay valid.
        let p = cycle_problem();
        let r = isorank(
            &p,
            &IsoRankConfig {
                damping: 0.95,
                iterations: 200,
            },
            &AlignConfig::default(),
        );
        assert!(r.matching.is_valid(&p.l));
        assert!(r.objective > 0.0);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let p = cycle_problem();
        let _ = isorank(
            &p,
            &IsoRankConfig {
                damping: 1.5,
                iterations: 5,
            },
            &AlignConfig::default(),
        );
    }
}
