//! Network Similarity Decomposition (Kollias, Mohammadi, Grama —
//! paper ref [11]).
//!
//! NSD approximates IsoRank's similarity matrix `X` without ever
//! forming it: starting from rank-one priors `u⁰ (over V_A)` and
//! `v⁰ (over V_B)`, it iterates the degree-normalized adjacency
//! operators, `uᵏ = Ã uᵏ⁻¹`, `vᵏ = B̃ vᵏ⁻¹`, and scores
//!
//! ```text
//!     X[i,i'] = (1−α) Σ_{k=0}^{K−1} αᵏ uᵏ[i] vᵏ[i']  +  α^K u^K[i] v^K[i']
//! ```
//!
//! Because the final score is a sum of outer products, evaluating it on
//! the sparse candidate set `E_L` costs `O(K (|E_A| + |E_B| + |E_L|))`.
//! The priors default to the normalized similarity mass of each vertex
//! in `L`.

use crate::config::AlignConfig;
use crate::problem::NetAlignProblem;
use crate::result::AlignmentResult;
use crate::rounding::round_heuristic;
use crate::trace::RunTrace;
use netalign_graph::Graph;
use rayon::prelude::*;

/// NSD parameters.
#[derive(Clone, Copy, Debug)]
pub struct NsdConfig {
    /// Geometric weight `α` of deeper terms.
    pub alpha: f64,
    /// Number of power iterations `K`.
    pub depth: usize,
}

impl Default for NsdConfig {
    fn default() -> Self {
        Self {
            alpha: 0.8,
            depth: 10,
        }
    }
}

/// One step of the degree-normalized adjacency operator:
/// `out[i] = Σ_{j ∈ adj(i)} x[j] / deg(j)`.
fn normalized_adjacency_step(g: &Graph, x: &[f64], out: &mut [f64]) {
    out.par_iter_mut().enumerate().for_each(|(i, o)| {
        let mut acc = 0.0;
        for &j in g.neighbors(i as u32) {
            let d = g.degree(j);
            if d > 0 {
                acc += x[j as usize] / d as f64;
            }
        }
        *o = acc;
    });
}

/// Run NSD and round the resulting `L`-restricted scores.
pub fn nsd(p: &NetAlignProblem, cfg: &NsdConfig, config: &AlignConfig) -> AlignmentResult {
    config.validate();
    assert!((0.0..=1.0).contains(&cfg.alpha), "alpha must be in [0,1]");
    let na = p.a.num_vertices();
    let nb = p.b.num_vertices();
    let m = p.l.num_edges();

    // Priors: per-vertex positive similarity mass in L, normalized.
    let mut u = vec![0.0f64; na];
    let mut v = vec![0.0f64; nb];
    for (a, b, e) in p.l.edge_iter() {
        let w = p.l.weight(e).max(0.0);
        u[a as usize] += w;
        v[b as usize] += w;
    }
    normalize(&mut u);
    normalize(&mut v);

    // Accumulate scores over E_L term by term.
    let mut scores = vec![0.0f64; m];
    let mut u_next = vec![0.0f64; na];
    let mut v_next = vec![0.0f64; nb];
    let mut coef = 1.0 - cfg.alpha;
    for k in 0..=cfg.depth {
        let c = if k == cfg.depth {
            cfg.alpha.powi(k as i32)
        } else {
            coef
        };
        scores
            .par_iter_mut()
            .enumerate()
            .with_min_len(1000)
            .for_each(|(e, s)| {
                let (a, b) = p.l.endpoints(e);
                *s += c * u[a as usize] * v[b as usize];
            });
        if k < cfg.depth {
            normalized_adjacency_step(&p.a, &u, &mut u_next);
            normalized_adjacency_step(&p.b, &v, &mut v_next);
            std::mem::swap(&mut u, &mut u_next);
            std::mem::swap(&mut v, &mut v_next);
            coef *= cfg.alpha;
        }
    }

    let rounded = round_heuristic(p, &scores, config.alpha, config.beta, config.matcher);
    AlignmentResult {
        matching: rounded.matching,
        objective: rounded.value.total,
        weight: rounded.value.weight,
        overlap: rounded.value.overlap,
        best_iteration: cfg.depth,
        upper_bound: None,
        history: Vec::new(),
        trace: RunTrace::new(),
    }
}

fn normalize(x: &mut [f64]) {
    let s: f64 = x.iter().sum();
    if s > 0.0 {
        for xi in x {
            *xi /= s;
        }
    } else if !x.is_empty() {
        let n = x.len() as f64;
        for xi in x {
            *xi = 1.0 / n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::BipartiteGraph;

    fn cycle_problem() -> NetAlignProblem {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = BipartiteGraph::from_entries(
            4,
            4,
            vec![
                (0, 0, 2.0),
                (1, 1, 2.0),
                (2, 2, 2.0),
                (3, 3, 2.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn produces_valid_full_matching_on_cycle() {
        let p = cycle_problem();
        let r = nsd(&p, &NsdConfig::default(), &AlignConfig::default());
        assert!(r.matching.is_valid(&p.l));
        assert_eq!(r.matching.cardinality(), 4);
    }

    #[test]
    fn depth_zero_scores_are_prior_outer_product() {
        let p = cycle_problem();
        let r = nsd(
            &p,
            &NsdConfig {
                alpha: 0.5,
                depth: 0,
            },
            &AlignConfig::default(),
        );
        assert!(r.matching.is_valid(&p.l));
    }

    #[test]
    fn normalization_handles_zero_mass() {
        let mut x = vec![0.0, 0.0];
        normalize(&mut x);
        assert_eq!(x, vec![0.5, 0.5]);
        let mut y = vec![1.0, 3.0];
        normalize(&mut y);
        assert_eq!(y, vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let p = cycle_problem();
        let _ = nsd(
            &p,
            &NsdConfig {
                alpha: 2.0,
                depth: 3,
            },
            &AlignConfig::default(),
        );
    }
}
