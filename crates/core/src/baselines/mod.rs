//! Baseline alignment heuristics from the literature the paper builds
//! on, for quality comparisons against BP and MR:
//!
//! * [`isorank`] — the PageRank-style diffusion of Singh et al.
//!   (paper refs [5], [6]), restricted to the sparse candidate set `L`
//!   as in Bayati et al. [13];
//! * [`nsd`] — network similarity decomposition of Kollias et al.
//!   (paper ref [11]): a low-rank iterated-power scoring evaluated
//!   lazily on the edges of `L`;
//! * [`naive_rounding`] — one matching on the raw similarity weights
//!   `w` (the paper's implicit zero-iteration baseline).

pub mod isorank;
pub mod nsd;

pub use isorank::{isorank, IsoRankConfig};
pub use nsd::{nsd, NsdConfig};

use crate::config::AlignConfig;
use crate::problem::NetAlignProblem;
use crate::result::AlignmentResult;
use crate::rounding::round_heuristic;
use crate::trace::RunTrace;

/// Round the raw similarity weights `w` once — what a user would get
/// without any alignment iteration at all.
pub fn naive_rounding(p: &NetAlignProblem, config: &AlignConfig) -> AlignmentResult {
    config.validate();
    let r = round_heuristic(p, p.l.weights(), config.alpha, config.beta, config.matcher);
    AlignmentResult {
        matching: r.matching,
        objective: r.value.total,
        weight: r.value.weight,
        overlap: r.value.overlap,
        best_iteration: 0,
        upper_bound: None,
        history: Vec::new(),
        trace: RunTrace::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::{BipartiteGraph, Graph};

    #[test]
    fn naive_rounding_matches_weight_objective() {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![(0, 0, 3.0), (1, 1, 2.0), (2, 2, 1.0), (0, 1, 2.5)],
        );
        let p = NetAlignProblem::new(a, b, l);
        let r = naive_rounding(&p, &AlignConfig::default());
        // Max-weight matching on w: identity (3 + 2 + 1 = 6) beats
        // (0,1)+... (2.5 + 1 = 3.5 with (2,2); (1,?) blocked).
        assert_eq!(r.weight, 6.0);
        assert_eq!(r.overlap, 2.0);
    }
}
