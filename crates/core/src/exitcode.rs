//! Process exit-code taxonomy shared by every binary in the workspace.
//!
//! A caller scripting `netalignmc` or the bench binaries (CI jobs, the
//! deadline matrix, batch experiment drivers) needs to distinguish
//! failure *classes* without parsing stderr. Each binary documents this
//! table in its `--help` text:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success (including `deadline-best-so-far` under the default policy — a valid result was produced) |
//! | 2    | usage / configuration error (bad flag, invalid parameter combination) |
//! | 3    | I/O error (unreadable or malformed input graph, unwritable output or checkpoint) |
//! | 4    | deadline expired without a usable result (`--on-deadline error`) |
//! | 5    | internal error (engine panic, checkpoint validation failure, invariant breach) |
//! | 6    | resident-memory budget violation (`--max-resident-mb` below the out-of-core baseline, or a measured peak RSS over budget) |
//! | 7    | transport failure (distributed run lost its workers past the respawn budget, or the coordinator socket failed) |
//!
//! Code 1 is deliberately unused: it is what an uncaught panic or a
//! generic `std::process::exit(1)` yields, so keeping it out of the
//! taxonomy means a `1` from one of our binaries always signals an
//! *unclassified* crash worth investigating.

/// Success; a usable result was produced (possibly best-so-far under a
/// deadline).
pub const OK: i32 = 0;

/// Usage or configuration error: unknown flag, malformed value, invalid
/// parameter combination.
pub const USAGE: i32 = 2;

/// I/O failure: input graph unreadable or malformed, output or
/// checkpoint path unwritable.
pub const IO: i32 = 3;

/// The time budget expired and the run was configured to treat that as
/// failure (`--on-deadline error`) rather than return best-so-far.
pub const DEADLINE: i32 = 4;

/// Internal failure: engine panic, checkpoint validation error, or a
/// broken invariant.
pub const INTERNAL: i32 = 5;

/// Resident-memory budget violation: the requested `--max-resident-mb`
/// is below the out-of-core working-set baseline (refused up front), or
/// a budget-gated run measured a peak RSS over its budget.
pub const BUDGET: i32 = 6;

/// Transport failure: a distributed run (`--dist-workers`) lost worker
/// processes past the respawn budget with no survivors to repartition
/// onto, or the coordinator's listening socket failed outright.
pub const TRANSPORT: i32 = 7;

/// One-line table for embedding in `--help` text.
pub const HELP_TABLE: &str = "exit codes: 0 ok (incl. deadline best-so-far), 2 usage/config, \
     3 I/O, 4 deadline without result, 5 internal, 6 memory budget, 7 transport failure";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_skip_one() {
        let codes = [OK, USAGE, IO, DEADLINE, INTERNAL, BUDGET, TRANSPORT];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(!codes.contains(&1), "1 is reserved for uncaught panics");
    }
}
