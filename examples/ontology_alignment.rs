//! Ontology alignment at (scaled) lcsh-wiki size, exercising the
//! multithreaded pipeline end to end: batched BP rounding with the
//! parallel approximate matcher, per-step timing, and the final exact
//! conversion step (§VI.C / §VIII of the paper).
//!
//! Run with: `cargo run --release --example ontology_alignment [-- scale]`

use netalignmc::core::trace::Step;
use netalignmc::data::standins::StandIn;
use netalignmc::prelude::*;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.01);

    println!("generating lcsh-wiki stand-in at scale {scale}...");
    let t0 = Instant::now();
    let inst = StandIn::LcshWiki.generate(scale, 7);
    let (va, vb, el, nnz) = inst.problem.shape();
    println!(
        "  |V_A|={va} |V_B|={vb} |E_L|={el} nnz(S)={nnz}  ({:.2}s)\n",
        t0.elapsed().as_secs_f64()
    );

    let cfg = AlignConfig {
        iterations: 20,
        batch: 20,
        matcher: MatcherKind::ParallelLocalDominant,
        final_exact_round: true,
        record_history: true,
        trace_matcher: true,
        ..Default::default()
    };
    let t0 = Instant::now();
    let r = belief_propagation(&inst.problem, &cfg);
    let total = t0.elapsed().as_secs_f64();

    println!("BP(batch=20) with parallel approximate rounding:");
    println!(
        "  objective {:.1}  weight {:.1}  overlap {:.0}",
        r.objective, r.weight, r.overlap
    );
    println!(
        "  matched {} of {} left vertices",
        r.matching.cardinality(),
        va
    );
    println!("  best iterate found at iteration {}", r.best_iteration);
    println!("  wall clock: {total:.2}s\n");

    println!("per-step breakdown (paper Figure 7's view):");
    for (name, secs, share) in r.trace.report() {
        println!("  {name:<12} {secs:>8.3}s  {:>5.1}%", share * 100.0);
    }

    // The matching step should dominate, as in the paper (50-75%).
    let match_share =
        r.trace.get(Step::Match).as_secs_f64() / r.trace.total().as_secs_f64().max(1e-12);
    println!(
        "\nmatching (rounding) share of iteration time: {:.0}%",
        match_share * 100.0
    );

    let m = &r.trace.matcher;
    println!(
        "parallel matcher: {} rounds, {} find-mate calls (+{} re-runs), {} pairs matched",
        m.rounds, m.find_mate_initial, m.find_mate_reruns, m.matched_pairs
    );
}
