//! Distributed-memory alignment, simulated (paper §IX future work):
//! run belief propagation with its state block-partitioned over
//! simulated ranks — halo exchange for the `Sᵀ` gather, a two-superstep
//! othermax merge, and the message-passing locally-dominant matcher for
//! rounding — and verify the result agrees with the shared-memory
//! implementation exactly.
//!
//! Run with: `cargo run --release --example distributed_alignment [-- ranks]`

use netalignmc::core::bp::distributed::distributed_belief_propagation;
use netalignmc::data::standins::StandIn;
use netalignmc::prelude::*;
use std::time::Instant;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("ranks must be an integer"))
        .unwrap_or(4);

    let inst = StandIn::DmelaScere.generate(0.1, 21);
    let (va, vb, el, nnz) = inst.problem.shape();
    println!("dmela-scere stand-in: |V_A|={va} |V_B|={vb} |E_L|={el} nnz(S)={nnz}");

    let cfg = AlignConfig {
        iterations: 15,
        batch: 5,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    };

    let t0 = Instant::now();
    let shared = belief_propagation(&inst.problem, &cfg);
    let t_shared = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let dist = distributed_belief_propagation(&inst.problem, &cfg, ranks);
    let t_dist = t0.elapsed().as_secs_f64();

    println!(
        "\nshared-memory BP : objective {:.1} ({t_shared:.2}s)",
        shared.objective
    );
    println!(
        "distributed  BP  : objective {:.1} ({t_dist:.2}s, {ranks} simulated ranks)",
        dist.objective
    );
    assert_eq!(
        shared.objective, dist.objective,
        "results must agree bit-for-bit"
    );
    assert_eq!(shared.matching, dist.matching);
    println!("\nresults are bit-identical: the BSP decomposition performs the same");
    println!("floating-point operations in the same order, and the distributed");
    println!("matcher returns the same (unique) locally-dominant matching.");
    println!("\n(The simulation pays message-routing overhead on one machine; the");
    println!("point is the communication structure an MPI port would use.)");
}
