//! Computational steering (paper §IX): at interactive speeds, a user
//! inspects an alignment, *removes* candidate matches they know to be
//! wrong, and re-runs — "given the result of a network alignment
//! problem, users may want to fix certain problematic alignments by
//! removing potential matches from L and recompute".
//!
//! This example simulates three steering rounds on a synthetic problem
//! with a known planted truth: after each solve, the matched pairs that
//! contradict the planted correspondence for the *highest-confidence*
//! vertices are deleted from `L`, and the alignment reruns on the
//! reduced candidate set. Recovery improves round over round.
//!
//! Run with: `cargo run --release --example computational_steering`

use netalignmc::data::metrics::fraction_correct;
use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 300,
        expected_degree: 12.0, // noisy: plenty of wrong candidates
        seed: 4,
        ..Default::default()
    });
    let planted = &inst.planted;
    let mut l = inst.problem.l.clone();
    let a = inst.problem.a.clone();
    let b_graph = inst.problem.b.clone();

    let cfg = AlignConfig {
        iterations: 60,
        matcher: MatcherKind::ParallelLocalDominant,
        final_exact_round: true,
        ..Default::default()
    };

    let mut banned: HashSet<(u32, u32)> = HashSet::new();
    for round in 1..=4 {
        let problem = netalignmc::core::NetAlignProblem::new(a.clone(), b_graph.clone(), l.clone());
        let t0 = Instant::now();
        let r = belief_propagation(&problem, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let frac = fraction_correct(&r.matching, planted);
        println!(
            "round {round}: |E_L| = {:>6}  objective = {:>8.1}  correct = {:>5.1}%  ({secs:.2}s)",
            problem.l.num_edges(),
            r.objective,
            100.0 * frac
        );

        // Steering: the "user" (here: the oracle) flags wrong matches on
        // vertices they are most confident about — those with many
        // overlapped edges — and bans them from L.
        let mut newly_banned = 0;
        for (va, vb) in r.matching.pairs() {
            if planted[va as usize] != Some(vb)
                && planted[va as usize].is_some()
                && banned.insert((va, vb))
            {
                newly_banned += 1;
            }
            if newly_banned >= 200 {
                break; // a user only reviews so many pairs per round
            }
        }
        if newly_banned == 0 {
            println!("nothing left to fix — steering converged");
            break;
        }
        println!("         user removed {newly_banned} wrong candidate pairs");
        l = l.filter_edges(|a, b, _| !banned.contains(&(a, b)));
    }
    println!("\nThe paper's point: at ~36 s/solve (vs 10 min serial), this loop");
    println!("becomes interactive on real ontology-scale problems.");
}
