//! Standalone tour of the matching algorithms (paper §V): run every
//! matcher on one weighted bipartite graph, verify the exact solver's
//! LP-duality certificate, and check the ½-approximation guarantee.
//!
//! Run with: `cargo run --release --example matching_playground`

use netalignmc::graph::BipartiteGraph;
use netalignmc::matching::exact::{max_weight_matching_ssp, verify_optimality};
use netalignmc::prelude::*;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // A random sparse bipartite graph.
    let (na, nb, p) = (2000usize, 1800usize, 0.004);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let mut entries = Vec::new();
    for a in 0..na as u32 {
        for b in 0..nb as u32 {
            if rng.gen_bool(p) {
                entries.push((a, b, rng.gen_range(0.01..1.0)));
            }
        }
    }
    let l = BipartiteGraph::from_entries(na, nb, entries);
    println!("graph: {na} x {nb}, {} edges\n", l.num_edges());

    // Exact solve with certificate.
    let t0 = Instant::now();
    let (opt, cert) = max_weight_matching_ssp(&l, l.weights());
    let opt_weight =
        verify_optimality(&l, l.weights(), &opt, &cert).expect("duality certificate must verify");
    println!(
        "exact SSP: weight {:.3}, cardinality {}, certificate OK ({:.3}s)",
        opt_weight,
        opt.cardinality(),
        t0.elapsed().as_secs_f64()
    );

    // Every other algorithm, with the half-approximation check.
    for kind in [
        MatcherKind::Greedy,
        MatcherKind::LocalDominant,
        MatcherKind::ParallelLocalDominant,
        MatcherKind::ParallelLocalDominantOneSide,
        MatcherKind::Auction { eps_rel: 1e-4 },
    ] {
        let t0 = Instant::now();
        let m = max_weight_matching(&l, l.weights(), kind);
        let secs = t0.elapsed().as_secs_f64();
        let w = m.weight_in(&l);
        assert!(m.is_valid(&l));
        assert!(
            w * 2.0 >= opt_weight - 1e-9 || !kind.is_approximate(),
            "half-approximation violated"
        );
        println!(
            "{:<18} weight {:.3} ({:.1}% of optimal), cardinality {}, {:.3}s",
            kind.name(),
            w,
            100.0 * w / opt_weight,
            m.cardinality(),
            secs
        );
    }

    println!("\nNote: the three locally-dominant variants return the *identical*");
    println!("matching — it is unique under the library's total edge order.");
}
