//! Quickstart: align two small related graphs and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use netalignmc::graph::{BipartiteGraph, Graph};
use netalignmc::prelude::*;

fn main() {
    // Two graphs that share structure: a 6-cycle with one chord, and the
    // same graph with the chord moved.
    let a = Graph::from_edges(
        6,
        vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
    );
    let b = Graph::from_edges(
        6,
        vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
    );

    // Candidate matches: every pair is allowed, identity pairs get a
    // small similarity bonus (as a sequence/text matcher would give).
    let mut entries = Vec::new();
    for i in 0..6u32 {
        for j in 0..6u32 {
            let w = if i == j { 1.0 } else { 0.4 };
            entries.push((i, j, w));
        }
    }
    let l = BipartiteGraph::from_entries(6, 6, entries);

    let problem = netalignmc::core::NetAlignProblem::new(a, b, l);
    let (va, vb, el, nnz) = problem.shape();
    println!("problem: |V_A|={va} |V_B|={vb} |E_L|={el} nnz(S)={nnz}");

    // Run both heuristics with exact rounding.
    let cfg = AlignConfig {
        iterations: 50,
        record_history: true,
        ..Default::default()
    };
    let bp = belief_propagation(&problem, &cfg);
    let mr = matching_relaxation(&problem, &cfg);

    println!(
        "\nBP : objective {:.1} (weight {:.1}, overlap {})",
        bp.objective, bp.weight, bp.overlap
    );
    println!(
        "MR : objective {:.1} (weight {:.1}, overlap {})",
        mr.objective, mr.weight, mr.overlap
    );
    if let Some(ratio) = mr.approximation_ratio() {
        println!("MR a-posteriori approximation ratio: {:.3}", ratio);
    }

    println!("\nBP alignment:");
    for (i, j) in bp.matching.pairs() {
        println!("  A:{i} <-> B:{j}");
    }

    // The same run with the paper's parallel approximate matcher.
    let cfg_approx = AlignConfig {
        matcher: MatcherKind::ParallelLocalDominant,
        ..cfg
    };
    let bp_approx = belief_propagation(&problem, &cfg_approx);
    println!(
        "\nBP with approximate matching: objective {:.1} (exact gave {:.1})",
        bp_approx.objective, bp.objective
    );
}
