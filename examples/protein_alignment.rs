//! Protein-protein interaction network alignment, in the style of the
//! paper's dmela-scere / homo-musm experiments (§VI.B).
//!
//! Uses the seeded stand-in generator (the original PPI data is not
//! redistributable) and compares BP and MR with exact vs approximate
//! rounding — the paper's §VII quality experiment at bio scale.
//!
//! Run with: `cargo run --release --example protein_alignment [-- scale]`

use netalignmc::data::metrics::fraction_correct;
use netalignmc::data::standins::StandIn;
use netalignmc::prelude::*;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.2);

    let inst = StandIn::DmelaScere.generate(scale, 42);
    let (va, vb, el, nnz) = inst.problem.shape();
    println!("dmela-scere stand-in at scale {scale}:");
    println!("  |V_A|={va} |V_B|={vb} |E_L|={el} nnz(S)={nnz}\n");

    let base = AlignConfig {
        iterations: 40,
        ..Default::default()
    };
    for (method_name, is_mr) in [("BP", false), ("MR", true)] {
        for matcher in [MatcherKind::Exact, MatcherKind::ParallelLocalDominant] {
            let cfg = AlignConfig { matcher, ..base };
            let start = Instant::now();
            let r = if is_mr {
                matching_relaxation(&inst.problem, &cfg)
            } else {
                belief_propagation(&inst.problem, &cfg)
            };
            let secs = start.elapsed().as_secs_f64();
            let correct = fraction_correct(&r.matching, &inst.planted);
            println!(
                "{method_name:>2} + {:<18} objective {:>9.1}  weight {:>8.1}  overlap {:>6.0}  correct {:>5.1}%  ({secs:.2}s)",
                matcher.name(),
                r.objective,
                r.weight,
                r.overlap,
                100.0 * correct,
            );
        }
    }
    println!("\nExpected (paper §VII): the two BP rows nearly identical; the MR row");
    println!("with approximate matching noticeably below its exact counterpart.");
}
