//! Determinism guarantees: same seed → identical instance; the
//! parallel matcher and full aligner runs are invariant to the rayon
//! pool size (the locally-dominant matching is unique under the
//! library's total edge order).

use netalignmc::data::standins::StandIn;
use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::matching::approx::{parallel_local_dominant, ParallelLdOptions};
use netalignmc::prelude::*;

fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

#[test]
fn parallel_matching_is_pool_size_invariant() {
    let inst = StandIn::DmelaScere.generate(0.1, 3);
    let l = &inst.problem.l;
    let reference = with_pool(1, || {
        parallel_local_dominant(l, l.weights(), ParallelLdOptions::default())
    });
    for threads in [2, 4, 8] {
        let m = with_pool(threads, || {
            parallel_local_dominant(l, l.weights(), ParallelLdOptions::default())
        });
        assert_eq!(reference, m, "pool size {threads} changed the matching");
    }
}

#[test]
fn bp_run_is_pool_size_invariant() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 80,
        expected_degree: 5.0,
        seed: 17,
        ..Default::default()
    });
    let cfg = AlignConfig {
        iterations: 10,
        batch: 5,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    };
    let problem = &inst.problem;
    let r1 = with_pool(1, || belief_propagation(problem, &cfg));
    for threads in [2, 4, 8] {
        let r = with_pool(threads, || belief_propagation(problem, &cfg));
        assert_eq!(
            r1.objective.to_bits(),
            r.objective.to_bits(),
            "pool {threads}"
        );
        assert_eq!(r1.matching, r.matching, "pool {threads}");
        assert_eq!(r1.best_iteration, r.best_iteration, "pool {threads}");
    }
}

#[test]
fn mr_run_is_pool_size_invariant() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 60,
        expected_degree: 4.0,
        seed: 23,
        ..Default::default()
    });
    let cfg = AlignConfig {
        iterations: 8,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    };
    let problem = &inst.problem;
    let r1 = with_pool(1, || matching_relaxation(problem, &cfg));
    for threads in [2, 4, 8] {
        let r = with_pool(threads, || matching_relaxation(problem, &cfg));
        assert_eq!(
            r1.objective.to_bits(),
            r.objective.to_bits(),
            "pool {threads}"
        );
        assert_eq!(
            r1.upper_bound.map(f64::to_bits),
            r.upper_bound.map(f64::to_bits),
            "pool {threads}"
        );
        assert_eq!(r1.matching, r.matching, "pool {threads}");
    }
}

#[test]
fn generators_are_reproducible_across_runs() {
    let a = StandIn::HomoMusm.generate(0.04, 9);
    let b = StandIn::HomoMusm.generate(0.04, 9);
    assert_eq!(a.problem.l, b.problem.l);
    assert_eq!(a.problem.a, b.problem.a);
    assert_eq!(a.problem.b, b.problem.b);
    assert_eq!(a.planted, b.planted);
    let c = StandIn::HomoMusm.generate(0.04, 10);
    assert_ne!(a.problem.l, c.problem.l);
}

#[test]
fn repeated_alignment_runs_are_bitwise_identical() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 70,
        expected_degree: 6.0,
        seed: 29,
        ..Default::default()
    });
    let cfg = AlignConfig {
        iterations: 12,
        matcher: MatcherKind::ParallelLocalDominant,
        record_history: true,
        ..Default::default()
    };
    let r1 = belief_propagation(&inst.problem, &cfg);
    let r2 = belief_propagation(&inst.problem, &cfg);
    assert_eq!(r1.objective, r2.objective);
    assert_eq!(r1.matching, r2.matching);
    let h1: Vec<f64> = r1.history.iter().map(|h| h.objective).collect();
    let h2: Vec<f64> = r2.history.iter().map(|h| h.objective).collect();
    assert_eq!(h1, h2);
}

#[test]
fn matcher_counters_are_deterministic_across_runs() {
    // ISSUE acceptance: two runs at the same thread count must report
    // identical matcher event counts — the counters count algorithmic
    // events fixed by the round-structured phase 2, not scheduling
    // accidents.
    let inst = power_law_alignment(&PowerLawParams {
        n: 80,
        expected_degree: 5.0,
        seed: 41,
        ..Default::default()
    });
    let cfg = AlignConfig {
        iterations: 8,
        batch: 4,
        matcher: MatcherKind::ParallelLocalDominant,
        trace_matcher: true,
        ..Default::default()
    };
    let problem = &inst.problem;
    for threads in [1, 4] {
        let r1 = with_pool(threads, || belief_propagation(problem, &cfg));
        let r2 = with_pool(threads, || belief_propagation(problem, &cfg));
        assert!(!r1.trace.matcher.is_zero(), "tracing produced no events");
        assert_eq!(
            r1.trace.matcher, r2.trace.matcher,
            "matcher counters diverged between runs at {threads} threads"
        );
    }
}

#[test]
fn matcher_counters_are_pool_size_invariant() {
    // Stronger than run-to-run determinism: the counted events are a
    // property of the instance, so the pool size must not change them
    // either (BothSides init; see the matcher's module docs).
    let inst = StandIn::DmelaScere.generate(0.1, 3);
    let l = &inst.problem.l;
    let count = |threads: usize| {
        with_pool(threads, || {
            let counters = netalignmc::matching::MatcherCounters::new(true);
            let m = netalignmc::matching::approx::parallel_local_dominant_traced(
                l,
                l.weights(),
                ParallelLdOptions::default(),
                &counters,
            );
            (m, counters.snapshot())
        })
    };
    let (m1, s1) = count(1);
    for threads in [2, 4, 8] {
        let (m, s) = count(threads);
        assert_eq!(m1, m, "matching changed at {threads} threads");
        assert_eq!(s1, s, "counters changed at {threads} threads");
    }
}
