//! Transport chaos suite for the multi-process distributed engine:
//! every injected fault — worker crashes at protocol-critical moments,
//! dropped / duplicated / delayed / torn frames — must leave the
//! distributed result **bit-identical** to the single-process engine,
//! with the recovery machinery (respawn, checkpoint resync,
//! repartition) visibly doing the work (counters > 0).
//!
//! Faults are injected deterministically: `NetFault` acts on the
//! coordinator's outgoing first transmissions, kill specs are
//! forwarded to worker slot 0's first spawn as `NETALIGN_FAULT_KILL`
//! (respawned replacements never inherit them).

use netalignmc::core::dist::{align_distributed, parse_net_fault, DistConfig, DistError};
use netalignmc::core::{AlignmentResult, NetAlignProblem};
use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::prelude::*;
use std::path::PathBuf;

fn instance(seed: u64) -> NetAlignProblem {
    power_law_alignment(&PowerLawParams {
        n: 80,
        expected_degree: 5.0,
        seed,
        ..Default::default()
    })
    .problem
}

fn cfg() -> AlignConfig {
    AlignConfig {
        iterations: 8,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    }
}

fn dist_config(workers: usize) -> DistConfig {
    let mut dc = DistConfig::new(workers);
    dc.worker_bin = Some(PathBuf::from(env!("CARGO_BIN_EXE_netalignmc")));
    // Production timeouts favor patience; the chaos matrix injects
    // faults on almost every exchange, so tighten the schedule to keep
    // the suite's wall clock sane without changing any semantics.
    dc.timeouts.resend_after = std::time::Duration::from_millis(40);
    dc.timeouts.resend_cap = std::time::Duration::from_millis(300);
    dc.timeouts.reconnect_window = std::time::Duration::from_millis(400);
    dc
}

fn assert_identical(dist: &AlignmentResult, shared: &AlignmentResult, what: &str) {
    assert_eq!(
        dist.objective.to_bits(),
        shared.objective.to_bits(),
        "{what}: objective"
    );
    assert_eq!(dist.matching, shared.matching, "{what}: matching");
    assert_eq!(
        dist.best_iteration, shared.best_iteration,
        "{what}: best iteration"
    );
}

/// Worker kills at each protocol-critical moment: right after a frame
/// is decoded, inside the Solve superstep, and just before a reply is
/// written (after the dedup cache was updated — the resume must not
/// double-execute). Each crash forces a respawn + checkpoint resync,
/// and the final answer must not move by one bit.
#[test]
fn worker_kill_at_every_point_recovers_bit_identical() {
    let p = instance(23);
    let config = cfg();
    let shared = belief_propagation(&p, &config);
    for kill in ["dist-recv@4", "dist-solve@3", "dist-send@2"] {
        for workers in [2, 4] {
            let mut dc = dist_config(workers);
            dc.worker_kill = Some(kill.to_string());
            let report = align_distributed(&p, &config, &dc).expect("run failed");
            assert_identical(&report.result, &shared, &format!("{kill} x{workers}"));
            assert!(
                report.worker_restarts > 0,
                "{kill} x{workers}: kill never fired"
            );
            assert!(report.recoveries > 0, "{kill} x{workers}: no recovery");
        }
    }
}

/// Deterministic frame faults on the coordinator's outgoing requests.
/// Losses force retransmission; duplicates and delayed late copies
/// must be absorbed by the workers' sequence dedup.
#[test]
fn transport_faults_recover_bit_identical() {
    let p = instance(29);
    let config = cfg();
    let shared = belief_propagation(&p, &config);
    for fault in ["drop@5", "dup@3", "delay@4", "torn@6"] {
        for workers in [1, 2, 4] {
            let mut dc = dist_config(workers);
            dc.net_fault = Some(parse_net_fault(fault).expect("fault spec"));
            let report = align_distributed(&p, &config, &dc).expect("run failed");
            assert_identical(&report.result, &shared, &format!("{fault} x{workers}"));
            // Dup needs no retransmission (the original still lands);
            // drop, delay, and torn all must exercise the resend path.
            if !fault.starts_with("dup") {
                assert!(
                    report.retransmissions > 0,
                    "{fault} x{workers}: resend path never exercised"
                );
            }
        }
    }
}

/// A crash with a zero respawn budget retires the slot: its rows are
/// re-partitioned onto the survivors, which re-seed from checkpoints
/// and still land on the exact single-process answer.
#[test]
fn repartition_onto_survivors_after_budget_exhausted() {
    let p = instance(31);
    let config = cfg();
    let shared = belief_propagation(&p, &config);
    let mut dc = dist_config(3);
    dc.worker_kill = Some("dist-solve@5".to_string());
    dc.respawn_budget = 0;
    let report = align_distributed(&p, &config, &dc).expect("run failed");
    assert_identical(&report.result, &shared, "repartition x3");
    assert_eq!(report.worker_restarts, 0, "budget 0 must never respawn");
    assert!(report.repartitions > 0, "slot was never retired");
    assert!(report.recoveries > 0);
}

/// With a single worker and no respawn budget, a crash leaves nobody
/// to repartition onto: the run must fail with the typed error (the
/// CLI maps it to exit code 7), not hang or panic.
#[test]
fn no_survivors_is_a_typed_error() {
    let p = instance(37);
    let config = cfg();
    let mut dc = dist_config(1);
    dc.worker_kill = Some("dist-solve@1".to_string());
    dc.respawn_budget = 0;
    match align_distributed(&p, &config, &dc) {
        Err(DistError::NoSurvivors) => {}
        other => panic!("expected NoSurvivors, got {other:?}"),
    }
}

/// Faults composed: a worker crash *and* frame loss in the same run.
#[test]
fn kill_composed_with_frame_loss_recovers_bit_identical() {
    let p = instance(41);
    let config = cfg();
    let shared = belief_propagation(&p, &config);
    let mut dc = dist_config(2);
    dc.worker_kill = Some("dist-solve@2".to_string());
    dc.net_fault = Some(parse_net_fault("drop@7").expect("fault spec"));
    let report = align_distributed(&p, &config, &dc).expect("run failed");
    assert_identical(&report.result, &shared, "kill+drop x2");
    assert!(report.worker_restarts > 0);
    assert!(report.retransmissions > 0);
}

mod cli {
    //! The `--dist-workers` surface: exit code 7 on transport failure
    //! and recovery counters in `--json-out` (what the CI chaos matrix
    //! gates on).

    use std::process::Command;

    fn bin() -> &'static str {
        env!("CARGO_BIN_EXE_netalignmc")
    }

    fn write_instance(dir: &std::path::Path) {
        let st = Command::new(bin())
            .args(["generate", "--dataset", "powerlaw", "--seed", "7"])
            .arg("--out-dir")
            .arg(dir)
            .status()
            .expect("generate");
        assert!(st.success());
    }

    #[test]
    fn occupied_port_exits_with_transport_code() {
        let dir = std::env::temp_dir().join(format!("na-dist-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_instance(&dir);
        // Squat on a port; the coordinator's bind must fail fast.
        let blocker = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = blocker.local_addr().unwrap().port();
        let out = Command::new(bin())
            .current_dir(&dir)
            .args(["align", "--a", "a.el", "--b", "b.el", "--l", "l.smat"])
            .args(["--method", "bp", "--iters", "2"])
            .args(["--dist-workers", "2", "--dist-base-port", &port.to_string()])
            .output()
            .expect("align");
        assert_eq!(
            out.status.code(),
            Some(7),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        drop(blocker);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_out_reports_recovery_counters() {
        let dir = std::env::temp_dir().join(format!("na-dist-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_instance(&dir);
        let out = Command::new(bin())
            .current_dir(&dir)
            .env("NETALIGN_FAULT_KILL", "dist-solve@2")
            .args(["align", "--a", "a.el", "--b", "b.el", "--l", "l.smat"])
            .args(["--method", "bp", "--matcher", "ld-parallel", "--iters", "4"])
            .args(["--dist-workers", "2", "--json-out", "out.json"])
            .output()
            .expect("align");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(dir.join("out.json")).unwrap();
        assert!(json.contains("\"dist\": {"), "json: {json}");
        assert!(json.contains("\"workers\": 2"), "json: {json}");
        assert!(json.contains("\"worker_restarts\": 1"), "json: {json}");
        assert!(json.contains("\"recoveries\": 1"), "json: {json}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
