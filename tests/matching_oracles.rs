//! Property-based cross-validation of the matching algorithms:
//! the exact solver against brute force and its own duality
//! certificate; the locally-dominant family against each other and the
//! ½-approximation bound.

use netalignmc::graph::BipartiteGraph;
use netalignmc::matching::approx::{
    greedy_matching, parallel_local_dominant, parallel_suitor, path_growing_matching,
    serial_local_dominant, serial_suitor, InitStrategy, ParallelLdOptions,
};
use netalignmc::matching::distributed::distributed_local_dominant;
use netalignmc::matching::exact::{
    auction_matching, brute_force_matching, hungarian_matching, max_weight_matching_ssp,
    verify_optimality, AuctionOptions,
};
use proptest::prelude::*;

/// Strategy: a random small weighted bipartite graph.
fn small_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (2usize..8, 2usize..8).prop_flat_map(|(na, nb)| {
        proptest::collection::vec((0..na as u32, 0..nb as u32, 0.0f64..10.0), 0..na * nb)
            .prop_map(move |entries| BipartiteGraph::from_entries(na, nb, entries))
    })
}

/// Strategy: weights that may be negative or tied.
fn rough_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (2usize..10, 2usize..10).prop_flat_map(|(na, nb)| {
        proptest::collection::vec((0..na as u32, 0..nb as u32, -2i32..8), 1..na * nb).prop_map(
            move |entries| {
                BipartiteGraph::from_entries(
                    na,
                    nb,
                    entries.into_iter().map(|(a, b, w)| (a, b, w as f64)),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ssp_matches_brute_force(l in small_bipartite()) {
        let (m, cert) = max_weight_matching_ssp(&l, l.weights());
        let val = verify_optimality(&l, l.weights(), &m, &cert).unwrap();
        let (brute_val, _) = brute_force_matching(&l, l.weights());
        prop_assert!((val - brute_val).abs() < 1e-9, "ssp {val} vs brute {brute_val}");
    }

    #[test]
    fn ssp_handles_negative_and_tied_weights(l in rough_bipartite()) {
        let (m, cert) = max_weight_matching_ssp(&l, l.weights());
        let val = verify_optimality(&l, l.weights(), &m, &cert).unwrap();
        let (brute_val, _) = brute_force_matching(&l, l.weights());
        prop_assert!((val - brute_val).abs() < 1e-9);
        // no matched edge has non-positive weight
        for (a, b) in m.pairs() {
            let e = l.edge_id(a, b).unwrap();
            prop_assert!(l.weight(e) > 0.0);
        }
    }

    #[test]
    fn locally_dominant_family_agrees(l in rough_bipartite()) {
        let gr = greedy_matching(&l, l.weights());
        let ser = serial_local_dominant(&l, l.weights());
        let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        let par1 = parallel_local_dominant(
            &l,
            l.weights(),
            ParallelLdOptions { init: InitStrategy::LeftSide },
        );
        prop_assert_eq!(&gr, &ser);
        prop_assert_eq!(&gr, &par);
        prop_assert_eq!(&gr, &par1);
        // The proposal-based and message-passing constructions land on
        // the same unique matching too.
        prop_assert_eq!(&gr, &serial_suitor(&l, l.weights()));
        prop_assert_eq!(&gr, &parallel_suitor(&l, l.weights()));
        prop_assert_eq!(&gr, &distributed_local_dominant(&l, l.weights(), 3));
    }

    #[test]
    fn hungarian_agrees_with_ssp(l in rough_bipartite()) {
        let (ssp, cert) = max_weight_matching_ssp(&l, l.weights());
        let ssp_val = verify_optimality(&l, l.weights(), &ssp, &cert).unwrap();
        let hung = hungarian_matching(&l, l.weights());
        prop_assert!((hung.weight_in(&l) - ssp_val).abs() < 1e-9);
    }

    #[test]
    fn path_growing_respects_half_bound(l in rough_bipartite()) {
        let m = path_growing_matching(&l, l.weights());
        prop_assert!(m.is_valid(&l));
        let (opt, _) = max_weight_matching_ssp(&l, l.weights());
        prop_assert!(m.weight_in(&l) * 2.0 >= opt.weight_in(&l) - 1e-9);
    }

    #[test]
    fn half_approximation_bound_holds(l in rough_bipartite()) {
        let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        prop_assert!(par.is_valid(&l));
        prop_assert!(par.is_maximal(&l, l.weights()));
        let (opt, _) = max_weight_matching_ssp(&l, l.weights());
        prop_assert!(par.weight_in(&l) * 2.0 >= opt.weight_in(&l) - 1e-9);
    }

    #[test]
    fn auction_respects_its_gap_bound(l in small_bipartite()) {
        let eps_rel = 1e-4;
        let m = auction_matching(&l, l.weights(), AuctionOptions { eps_rel });
        prop_assert!(m.is_valid(&l));
        let (opt, _) = max_weight_matching_ssp(&l, l.weights());
        let max_w = l.weights().iter().fold(0.0f64, |a, &w| a.max(w));
        let bound = m.cardinality().max(1) as f64 * eps_rel * max_w;
        prop_assert!(opt.weight_in(&l) - m.weight_in(&l) <= bound + 1e-9);
    }

    #[test]
    fn matchings_never_exceed_the_optimum(l in rough_bipartite()) {
        let (opt, cert) = max_weight_matching_ssp(&l, l.weights());
        let opt_w = verify_optimality(&l, l.weights(), &opt, &cert).unwrap();
        for m in [
            greedy_matching(&l, l.weights()),
            serial_local_dominant(&l, l.weights()),
            parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default()),
        ] {
            prop_assert!(m.weight_in(&l) <= opt_w + 1e-9);
        }
    }
}
