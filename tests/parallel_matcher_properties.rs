//! Property-based guarantees for the paper's parallel matcher
//! (§V): on any random weighted bipartite graph, the parallel
//! queue-based locally-dominant matching is *bit-identical* to the
//! serial pointer-based construction — at every pool size and under
//! both initialization strategies — and its weight respects the
//! ½-approximation bound against the exact (Hungarian) optimum.

use netalignmc::graph::BipartiteGraph;
use netalignmc::matching::approx::{
    parallel_local_dominant, serial_local_dominant, InitStrategy, ParallelLdOptions,
};
use netalignmc::matching::exact::hungarian_matching;
use proptest::prelude::*;

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

/// Strategy: a random weighted bipartite graph, including parallel
/// weight collisions and isolated vertices.
fn random_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (2usize..10, 2usize..10).prop_flat_map(|(na, nb)| {
        proptest::collection::vec((0..na as u32, 0..nb as u32, 0..12i32), 1..na * nb).prop_map(
            move |entries| {
                BipartiteGraph::from_entries(
                    na,
                    nb,
                    entries.into_iter().map(|(a, b, w)| (a, b, 0.5 + w as f64)),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central determinism claim behind reusing the serial matcher
    /// as an oracle: for every pool size and both §V initialization
    /// strategies, the parallel matcher lands on the one locally-
    /// dominant matching the serial algorithm constructs.
    #[test]
    fn parallel_matches_serial_at_every_pool_size(l in random_bipartite()) {
        let serial = serial_local_dominant(&l, l.weights());
        for init in [InitStrategy::BothSides, InitStrategy::LeftSide] {
            for threads in POOL_SIZES {
                let par = with_pool(threads, || {
                    parallel_local_dominant(&l, l.weights(), ParallelLdOptions { init })
                });
                prop_assert_eq!(
                    &serial, &par,
                    "init {:?} at {} threads diverged from serial", init, threads
                );
            }
        }
    }

    /// The ½-approximation guarantee (§IV) against the exact optimum.
    #[test]
    fn parallel_weight_is_at_least_half_of_optimum(l in random_bipartite()) {
        let opt = hungarian_matching(&l, l.weights()).weight_in(&l);
        for init in [InitStrategy::BothSides, InitStrategy::LeftSide] {
            let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions { init });
            prop_assert!(par.is_valid(&l));
            let w = par.weight_in(&l);
            prop_assert!(
                w * 2.0 >= opt - 1e-9,
                "init {:?}: weight {} below half of optimum {}", init, w, opt
            );
            prop_assert!(w <= opt + 1e-9);
        }
    }
}
