//! End-to-end integration: generators → problem → aligners → result,
//! across every matcher.

use netalignmc::data::metrics::{fraction_correct, reference_objective};
use netalignmc::data::standins::StandIn;
use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::prelude::*;

fn all_matchers() -> Vec<MatcherKind> {
    vec![
        MatcherKind::Exact,
        MatcherKind::Greedy,
        MatcherKind::LocalDominant,
        MatcherKind::ParallelLocalDominant,
        MatcherKind::ParallelLocalDominantOneSide,
        MatcherKind::Suitor,
        MatcherKind::ParallelSuitor,
        MatcherKind::PathGrowing,
        MatcherKind::Distributed { ranks: 3 },
        MatcherKind::Auction { eps_rel: 1e-4 },
    ]
}

#[test]
fn bp_and_mr_run_with_every_matcher() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 80,
        expected_degree: 4.0,
        seed: 3,
        ..Default::default()
    });
    for matcher in all_matchers() {
        let cfg = AlignConfig {
            iterations: 10,
            matcher,
            ..Default::default()
        };
        let bp = belief_propagation(&inst.problem, &cfg);
        assert!(bp.matching.is_valid(&inst.problem.l), "{}", matcher.name());
        assert!(bp.objective > 0.0);
        let mr = matching_relaxation(&inst.problem, &cfg);
        assert!(mr.matching.is_valid(&inst.problem.l), "{}", matcher.name());
        assert!(mr.objective > 0.0);
        assert!(mr.upper_bound.unwrap() + 1e-9 >= mr.objective);
    }
}

#[test]
fn easy_instances_recover_most_of_the_planted_alignment() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 150,
        expected_degree: 2.0,
        seed: 11,
        ..Default::default()
    });
    let cfg = AlignConfig {
        iterations: 60,
        ..Default::default()
    };
    let bp = belief_propagation(&inst.problem, &cfg);
    let frac = fraction_correct(&bp.matching, &inst.planted);
    assert!(frac > 0.8, "BP recovered only {frac}");
    let reference = reference_objective(&inst.problem, &inst.planted, 1.0, 2.0);
    assert!(bp.objective >= 0.9 * reference.total);
}

#[test]
fn standin_pipeline_works_at_small_scale() {
    for si in [StandIn::DmelaScere, StandIn::HomoMusm] {
        let inst = si.generate(0.05, 5);
        let cfg = AlignConfig {
            iterations: 8,
            batch: 4,
            matcher: MatcherKind::ParallelLocalDominant,
            final_exact_round: true,
            ..Default::default()
        };
        let r = belief_propagation(&inst.problem, &cfg);
        assert!(r.matching.is_valid(&inst.problem.l));
        assert!(
            r.objective > 0.0,
            "{}: objective {}",
            si.spec().name,
            r.objective
        );
    }
}

#[test]
fn objective_components_are_consistent() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 60,
        expected_degree: 5.0,
        seed: 21,
        ..Default::default()
    });
    let cfg = AlignConfig {
        alpha: 0.5,
        beta: 3.0,
        iterations: 12,
        ..Default::default()
    };
    let r = belief_propagation(&inst.problem, &cfg);
    assert!((r.objective - (0.5 * r.weight + 3.0 * r.overlap)).abs() < 1e-9);
}

#[test]
fn history_tracks_the_best_solution() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 60,
        expected_degree: 4.0,
        seed: 31,
        ..Default::default()
    });
    let cfg = AlignConfig {
        iterations: 15,
        record_history: true,
        ..Default::default()
    };
    let r = belief_propagation(&inst.problem, &cfg);
    let best_in_history = r
        .history
        .iter()
        .map(|h| h.objective)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!((best_in_history - r.objective).abs() < 1e-9);
    let mr = matching_relaxation(&inst.problem, &cfg);
    assert_eq!(mr.history.len(), 15);
}

#[test]
fn alpha_zero_maximizes_overlap_beta_zero_maximizes_weight() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 70,
        expected_degree: 6.0,
        seed: 41,
        ..Default::default()
    });
    let overlap_cfg = AlignConfig {
        alpha: 0.0,
        beta: 1.0,
        iterations: 30,
        ..Default::default()
    };
    let weight_cfg = AlignConfig {
        alpha: 1.0,
        beta: 0.0,
        iterations: 30,
        ..Default::default()
    };
    let r_overlap = belief_propagation(&inst.problem, &overlap_cfg);
    let r_weight = belief_propagation(&inst.problem, &weight_cfg);
    // The weight-only objective is just max-weight matching; BP's first
    // rounded iterate already achieves it.
    assert!(r_weight.weight >= r_overlap.weight - 1e-9);
    assert!(r_overlap.overlap >= r_weight.overlap * 0.9 - 1e-9);
}
