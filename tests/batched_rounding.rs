//! Regression tests for BP's deferred rounding (`BP(batch=r)`,
//! paper §VI.B): the trigger `pending.len() >= 2r || k == iterations`
//! must round every heuristic vector (y and z of every iteration)
//! exactly once — including the final partial batch — and batching
//! must not change the solution when the matcher is deterministic.
//!
//! The batch partition is observed through the
//! `rounding_batch_sizes` trace counter, so these tests pin the exact
//! flush schedule, not just the end result.

use netalignmc::core::bp::distributed::distributed_belief_propagation;
use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::prelude::*;

fn instance(seed: u64) -> netalignmc::core::NetAlignProblem {
    power_law_alignment(&PowerLawParams {
        n: 60,
        expected_degree: 5.0,
        seed,
        ..Default::default()
    })
    .problem
}

fn cfg(iterations: usize, batch: usize) -> AlignConfig {
    AlignConfig {
        iterations,
        batch,
        matcher: MatcherKind::Exact,
        ..Default::default()
    }
}

#[test]
fn batch_partition_covers_every_vector_exactly_once() {
    // 7 iterations at batch=3: y and z are deferred (2 vectors per
    // iteration, threshold 2*3 = 6), so the flush schedule is
    // [6, 6, 2] — the trailing 2 being the final partial batch that a
    // missing `k == iterations` arm would silently drop.
    let p = instance(31);
    let r = belief_propagation(&p, &cfg(7, 3));
    assert_eq!(r.trace.algo.rounding_batch_sizes, vec![6, 6, 2]);
    assert_eq!(r.trace.algo.rounding_invocations, 3);
    assert_eq!(r.trace.algo.vectors_rounded(), 2 * 7);
}

#[test]
fn batch_one_rounds_each_iteration_immediately() {
    let p = instance(31);
    let r = belief_propagation(&p, &cfg(7, 1));
    assert_eq!(r.trace.algo.rounding_batch_sizes, vec![2; 7]);
    assert_eq!(r.trace.algo.vectors_rounded(), 2 * 7);
}

#[test]
fn exact_divisor_batch_still_flushes_only_on_threshold() {
    // batch=7 over 7 iterations: one flush of all 14 vectors at the
    // final iteration (threshold and end-of-run coincide).
    let p = instance(31);
    let r = belief_propagation(&p, &cfg(7, 7));
    assert_eq!(r.trace.algo.rounding_batch_sizes, vec![14]);
}

#[test]
fn batching_matches_immediate_rounding_with_exact_matcher() {
    // With a deterministic matcher, deferring the roundings must not
    // change which iterate wins or what it rounds to.
    let p = instance(47);
    let immediate = belief_propagation(&p, &cfg(9, 1));
    for batch in [2, 3, 4, 9, 20] {
        let deferred = belief_propagation(&p, &cfg(9, batch));
        assert_eq!(immediate.objective, deferred.objective, "batch={batch}");
        assert_eq!(immediate.matching, deferred.matching, "batch={batch}");
        assert_eq!(
            immediate.best_iteration, deferred.best_iteration,
            "batch={batch}"
        );
    }
}

#[test]
fn distributed_bp_shares_the_batch_schedule() {
    // The distributed implementation carries the same trigger; its
    // flush schedule and solution must agree with the shared-memory
    // aligner (it always rounds with the parallel matcher).
    let p = instance(53);
    let config = AlignConfig {
        iterations: 7,
        batch: 3,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    };
    let shared = belief_propagation(&p, &config);
    let dist = distributed_belief_propagation(&p, &config, 3);
    assert_eq!(dist.trace.algo.rounding_batch_sizes, vec![6, 6, 2]);
    assert_eq!(shared.objective, dist.objective);
    assert_eq!(shared.matching, dist.matching);
}
