//! The paper's qualitative claims, asserted on seeded synthetic
//! instances (shape-level reproduction, per DESIGN.md):
//!
//! 1. §VII / Figure 2: BP's solution quality with approximate matching
//!    is (nearly) indistinguishable from exact; MR's degrades.
//! 2. §III.D: the approximate matcher makes the per-iteration matching
//!    cost `O(|E_L|)`-ish — empirically much cheaper than exact on
//!    larger instances.
//! 3. §VII: BP's *iterates* are independent of the matcher — only the
//!    rounding differs.

use netalignmc::data::metrics::fraction_correct;
use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::prelude::*;

/// Average metrics of a method over several seeds of the Figure-2
/// workload.
fn sweep(is_mr: bool, matcher: MatcherKind, dbar: f64, seeds: std::ops::Range<u64>) -> (f64, f64) {
    let mut obj = 0.0;
    let mut correct = 0.0;
    let n_seeds = seeds.end - seeds.start;
    for seed in seeds {
        let inst = power_law_alignment(&PowerLawParams {
            n: 150,
            expected_degree: dbar,
            seed,
            ..Default::default()
        });
        let cfg = AlignConfig {
            iterations: 40,
            matcher,
            ..Default::default()
        };
        let r = if is_mr {
            matching_relaxation(&inst.problem, &cfg)
        } else {
            belief_propagation(&inst.problem, &cfg)
        };
        obj += r.objective;
        correct += fraction_correct(&r.matching, &inst.planted);
    }
    (obj / n_seeds as f64, correct / n_seeds as f64)
}

#[test]
fn bp_is_insensitive_to_approximate_matching() {
    let (obj_exact, corr_exact) = sweep(false, MatcherKind::Exact, 8.0, 0..3);
    let (obj_approx, corr_approx) = sweep(false, MatcherKind::ParallelLocalDominant, 8.0, 0..3);
    // "only a marginal change in the solution quality"
    assert!(
        (obj_exact - obj_approx).abs() / obj_exact < 0.08,
        "BP exact {obj_exact} vs approx {obj_approx}"
    );
    assert!(
        (corr_exact - corr_approx).abs() < 0.15,
        "BP correct fraction moved too much: {corr_exact} vs {corr_approx}"
    );
}

#[test]
fn mr_is_more_sensitive_than_bp_to_approximate_matching() {
    // Figure 2's core contrast, averaged over seeds at a noisy d̄.
    let (mr_exact, _) = sweep(true, MatcherKind::Exact, 10.0, 10..14);
    let (mr_approx, _) = sweep(true, MatcherKind::ParallelLocalDominant, 10.0, 10..14);
    let (bp_exact, _) = sweep(false, MatcherKind::Exact, 10.0, 10..14);
    let (bp_approx, _) = sweep(false, MatcherKind::ParallelLocalDominant, 10.0, 10..14);

    let mr_loss = (mr_exact - mr_approx) / mr_exact;
    let bp_loss = (bp_exact - bp_approx).abs() / bp_exact;
    assert!(
        mr_loss > bp_loss - 0.02,
        "expected MR to lose at least as much as BP: MR loss {mr_loss}, BP loss {bp_loss}"
    );
    assert!(
        mr_loss > 0.0,
        "MR with approximate matching should lose quality ({mr_loss})"
    );
}

#[test]
fn approximate_matching_is_faster_than_exact_on_larger_instances() {
    use netalignmc::matching::{max_weight_matching, MatcherKind};
    let inst = netalignmc::data::standins::StandIn::LcshWiki.generate(0.008, 3);
    let l = &inst.problem.l;
    let t0 = std::time::Instant::now();
    let _ = max_weight_matching(l, l.weights(), MatcherKind::Exact);
    let exact_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let _ = max_weight_matching(l, l.weights(), MatcherKind::ParallelLocalDominant);
    let approx_time = t0.elapsed();
    assert!(
        approx_time < exact_time,
        "approximate ({approx_time:?}) should beat exact ({exact_time:?})"
    );
}

#[test]
fn bp_iterates_are_matcher_independent() {
    // §VII: "the set of iterates from the BP method is independent of
    // the choice of matching algorithm". Observable consequence: the
    // best-iteration histories under different matchers evaluate the
    // same heuristic vectors, so running exact rounding on the best
    // vector of an approx run reproduces the exact run's solution.
    let inst = power_law_alignment(&PowerLawParams {
        n: 100,
        expected_degree: 6.0,
        seed: 77,
        ..Default::default()
    });
    let exact = belief_propagation(
        &inst.problem,
        &AlignConfig {
            iterations: 20,
            ..Default::default()
        },
    );
    let approx_final_exact = belief_propagation(
        &inst.problem,
        &AlignConfig {
            iterations: 20,
            matcher: MatcherKind::ParallelLocalDominant,
            final_exact_round: true,
            ..Default::default()
        },
    );
    // With the final exact conversion, the approx run should land within
    // a whisker of the all-exact run.
    assert!(
        approx_final_exact.objective >= 0.95 * exact.objective,
        "approx+final-exact {} vs exact {}",
        approx_final_exact.objective,
        exact.objective
    );
}

#[test]
fn mr_upper_bound_certifies_near_optimality_on_clean_instances() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 100,
        expected_degree: 2.0,
        seed: 99,
        ..Default::default()
    });
    let r = matching_relaxation(
        &inst.problem,
        &AlignConfig {
            iterations: 80,
            ..Default::default()
        },
    );
    let ratio = r.approximation_ratio().unwrap();
    assert!(ratio > 0.85, "a-posteriori ratio only {ratio}");
}
