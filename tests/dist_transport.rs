//! Distributed execution over real sockets: the multi-process BP
//! engine (`netalign_core::dist`) must be **bit-identical** to the
//! in-process engine at every worker count, and the distributed LD
//! matcher must keep its guarantees (validity, half-approximation,
//! termination, maximality) when half its routed messages are dropped
//! on the wire — the real-transport counterparts of the simulated
//! `ChannelFaults` tests in `netalign_matching::distributed`.
//!
//! Every test here spawns actual worker *processes* (the `netalignmc`
//! binary re-entering through `maybe_run_worker`) and talks to them
//! over localhost TCP — nothing is simulated.

use netalignmc::core::dist::{align_distributed, match_distributed, DistConfig, DistReport};
use netalignmc::core::NetAlignProblem;
use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::prelude::*;
use std::path::PathBuf;

fn instance(seed: u64) -> NetAlignProblem {
    power_law_alignment(&PowerLawParams {
        n: 80,
        expected_degree: 5.0,
        seed,
        ..Default::default()
    })
    .problem
}

fn cfg(iterations: usize) -> AlignConfig {
    AlignConfig {
        iterations,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    }
}

/// The worker executable: the test harness itself is not
/// distributed-capable, so point every run at the real CLI binary.
fn dist_config(workers: usize) -> DistConfig {
    let mut dc = DistConfig::new(workers);
    dc.worker_bin = Some(PathBuf::from(env!("CARGO_BIN_EXE_netalignmc")));
    dc
}

fn run(p: &NetAlignProblem, config: &AlignConfig, dc: &DistConfig) -> DistReport {
    align_distributed(p, config, dc).expect("distributed run failed")
}

#[test]
fn bit_identical_to_in_process_engine_at_every_worker_count() {
    let p = instance(3);
    let config = cfg(10);
    let shared = belief_propagation(&p, &config);
    for workers in [1, 2, 4] {
        let report = run(&p, &config, &dist_config(workers));
        let dist = report.result;
        assert_eq!(
            dist.objective.to_bits(),
            shared.objective.to_bits(),
            "workers {workers}"
        );
        assert_eq!(dist.matching, shared.matching, "workers {workers}");
        assert_eq!(
            dist.best_iteration, shared.best_iteration,
            "workers {workers}"
        );
        assert_eq!(
            dist.weight.to_bits(),
            shared.weight.to_bits(),
            "workers {workers}"
        );
        assert_eq!(
            dist.overlap.to_bits(),
            shared.overlap.to_bits(),
            "workers {workers}"
        );
    }
}

#[test]
fn history_and_final_exact_round_match_in_process() {
    let p = instance(7);
    let config = AlignConfig {
        iterations: 6,
        batch: 3,
        record_history: true,
        final_exact_round: true,
        ..cfg(6)
    };
    let shared = belief_propagation(&p, &config);
    let report = run(&p, &config, &dist_config(2));
    let dist = report.result;
    assert_eq!(dist.objective.to_bits(), shared.objective.to_bits());
    assert_eq!(dist.matching, shared.matching);
    assert_eq!(shared.history.len(), dist.history.len());
    for (a, b) in shared.history.iter().zip(dist.history.iter()) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }
}

#[test]
fn more_workers_than_left_vertices_still_valid() {
    let p = instance(9);
    let config = cfg(3);
    // The partition caps ranks at |V_A|; asking for an absurd worker
    // count must degrade to that cap, not wedge or crash.
    let report = run(&p, &config, &dist_config(64));
    assert!(report.result.matching.is_valid(&p.l));
}

/// Exact optimum for the half-approximation bound.
fn exact_weight(p: &NetAlignProblem) -> f64 {
    max_weight_matching(&p.l, p.l.weights(), MatcherKind::Exact).weight(&p.l, p.l.weights())
}

/// 50% injected loss on real sockets: the coordinator discards every
/// 2nd routed matcher message, flipping the workers into the
/// loss-tolerant retransmission protocol. Completing at all proves
/// termination (a wedged protocol hangs the test); the matching must
/// be valid, maximal, and within the ½-approximation bound.
#[test]
fn matcher_survives_fifty_percent_message_loss_over_sockets() {
    for seed in [5, 11] {
        let p = instance(seed);
        let half = exact_weight(&p) / 2.0;
        for workers in [2, 4] {
            let mut dc = dist_config(workers);
            dc.matcher_msg_drop = Some(2);
            let m = match_distributed(&p, p.l.weights(), &dc).expect("lossy matcher run failed");
            assert!(m.is_valid(&p.l), "seed {seed} workers {workers}");
            assert!(
                m.is_maximal(&p.l, p.l.weights()),
                "seed {seed} workers {workers}"
            );
            let w = m.weight(&p.l, p.l.weights());
            assert!(
                w + 1e-9 >= half,
                "half-approximation violated over sockets: {w} < {half} \
                 (seed {seed} workers {workers})"
            );
        }
    }
}

/// Lighter loss rates must also converge — and because the
/// locally-dominant fixed point is unique, every loss rate (including
/// none) lands on the same matching.
#[test]
fn message_loss_does_not_change_the_fixed_point() {
    let p = instance(13);
    let clean =
        match_distributed(&p, p.l.weights(), &dist_config(2)).expect("clean matcher run failed");
    assert!(clean.is_valid(&p.l));
    for drop_every in [2, 3, 7] {
        let mut dc = dist_config(3);
        dc.matcher_msg_drop = Some(drop_every);
        let lossy = match_distributed(&p, p.l.weights(), &dc).expect("lossy matcher run failed");
        assert_eq!(lossy, clean, "drop_every {drop_every}");
    }
}

/// A full BP run whose every per-iteration rounding goes through the
/// lossy matcher path still reproduces the fault-free result exactly.
#[test]
fn full_run_under_matcher_loss_is_bit_identical() {
    let p = instance(17);
    let config = cfg(8);
    let clean = run(&p, &config, &dist_config(2)).result;
    let mut dc = dist_config(2);
    dc.matcher_msg_drop = Some(2);
    let lossy = run(&p, &config, &dc).result;
    assert_eq!(lossy.objective.to_bits(), clean.objective.to_bits());
    assert_eq!(lossy.matching, clean.matching);
}
