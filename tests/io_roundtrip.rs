//! Persistence: write a problem to SMAT/edge-list files, read it back,
//! and verify alignment results are unchanged.

use netalignmc::data::synthetic::{power_law_alignment, PowerLawParams};
use netalignmc::graph::io::{
    read_bipartite_smat_file, read_edge_list_file, write_bipartite_smat_file, write_edge_list_file,
};
use netalignmc::prelude::*;

#[test]
fn problem_roundtrips_through_files() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 60,
        expected_degree: 4.0,
        seed: 12,
        ..Default::default()
    });
    let dir = std::env::temp_dir().join(format!("netalignmc-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let pa = dir.join("a.el");
    let pb = dir.join("b.el");
    let pl = dir.join("l.smat");
    write_edge_list_file(&inst.problem.a, &pa).unwrap();
    write_edge_list_file(&inst.problem.b, &pb).unwrap();
    write_bipartite_smat_file(&inst.problem.l, &pl).unwrap();

    let a = read_edge_list_file(&pa).unwrap();
    let b = read_edge_list_file(&pb).unwrap();
    let l = read_bipartite_smat_file(&pl).unwrap();
    assert_eq!(a, inst.problem.a);
    assert_eq!(b, inst.problem.b);
    assert_eq!(l, inst.problem.l);

    // The reloaded problem aligns identically.
    let reloaded = netalignmc::core::NetAlignProblem::new(a, b, l);
    assert_eq!(reloaded.shape(), inst.problem.shape());
    let cfg = AlignConfig {
        iterations: 10,
        ..Default::default()
    };
    let r1 = belief_propagation(&inst.problem, &cfg);
    let r2 = belief_propagation(&reloaded, &cfg);
    assert_eq!(r1.objective, r2.objective);
    assert_eq!(r1.matching, r2.matching);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn smat_preserves_weights_exactly() {
    let inst = power_law_alignment(&PowerLawParams {
        n: 40,
        expected_degree: 3.0,
        id_weight: 1.25,
        noise_weight: 0.375,
        seed: 8,
        ..Default::default()
    });
    let dir = std::env::temp_dir().join(format!("netalignmc-io2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pl = dir.join("l.smat");
    write_bipartite_smat_file(&inst.problem.l, &pl).unwrap();
    let l = read_bipartite_smat_file(&pl).unwrap();
    assert_eq!(l.weights(), inst.problem.l.weights());
    std::fs::remove_dir_all(&dir).ok();
}
