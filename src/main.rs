//! `netalignmc` — command-line network alignment.
//!
//! ```text
//! netalignmc stats    --a A.el --b B.el --l L.smat
//! netalignmc align    --a A.el --b B.el --l L.smat --method bp
//!                     [--matcher ld-parallel] [--warm-start true]
//!                     [--alpha 1] [--beta 2]
//!                     [--gamma 0.99] [--iters 100] [--batch 1]
//!                     [--out matching.txt] [--json-out result.json]
//!                     [--checkpoint DIR] [--resume PATH]
//!
//! The `--matcher` shorthands `ld` and `suitor` route the
//! per-iteration rounding through the preallocated matcher engine
//! (queue-based parallel LD or lock-free parallel Suitor); adding
//! `--warm-start true` seeds each rounding from the previous
//! iteration's mate state. Results are bit-identical to the legacy
//! one-shot matchers of the same family.
//! netalignmc generate --dataset dmela-scere [--scale 0.1] [--seed 42]
//!                     --out-dir data/
//! ```
//!
//! Graphs are edge lists with an `n m` header; `L` is SMAT (see
//! `netalign_graph::io`). The matching output has one `a b` line per
//! aligned pair.

use netalignmc::core::baselines::{isorank, naive_rounding, nsd, IsoRankConfig, NsdConfig};
use netalignmc::core::NetAlignProblem;
use netalignmc::data::standins::StandIn;
use netalignmc::graph::io;
use netalignmc::graph::stats::{degree_summary, left_degree_summary};
use netalignmc::prelude::*;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: netalignmc <stats|align|generate> [--flag value]...");
    eprintln!("run with a subcommand; see the crate docs for flags");
    exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut flags: HashMap<String, String> = HashMap::new();
    let rest: Vec<String> = args.collect();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("expected --flag, got '{a}'");
            usage()
        };
        let Some(val) = it.next() else {
            eprintln!("flag --{key} needs a value");
            usage()
        };
        flags.insert(key.to_string(), val);
    }

    match cmd.as_str() {
        "stats" => cmd_stats(&flags),
        "align" => cmd_align(&flags),
        "generate" => cmd_generate(&flags),
        other => {
            eprintln!("unknown subcommand '{other}'");
            usage()
        }
    }
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{key}");
        exit(2)
    })
}

fn get_or<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what}: '{s}'");
        exit(2)
    })
}

fn load_problem(flags: &HashMap<String, String>) -> NetAlignProblem {
    let a = io::read_edge_list_file(get(flags, "a")).unwrap_or_else(|e| {
        eprintln!("failed to read A: {e}");
        exit(1)
    });
    let b = io::read_edge_list_file(get(flags, "b")).unwrap_or_else(|e| {
        eprintln!("failed to read B: {e}");
        exit(1)
    });
    let l = io::read_bipartite_smat_file(get(flags, "l")).unwrap_or_else(|e| {
        eprintln!("failed to read L: {e}");
        exit(1)
    });
    NetAlignProblem::new(a, b, l)
}

/// Map a `--matcher` value to the one-shot matcher kind plus, for the
/// `ld`/`suitor` shorthands, the preallocated rounding engine backing
/// the per-iteration matchings.
fn parse_matcher(name: &str) -> (MatcherKind, Option<RoundingMatcher>) {
    match name {
        "exact" => (MatcherKind::Exact, None),
        "greedy" => (MatcherKind::Greedy, None),
        "ld-serial" => (MatcherKind::LocalDominant, None),
        "ld-parallel" => (MatcherKind::ParallelLocalDominant, None),
        "ld-parallel-1side" => (MatcherKind::ParallelLocalDominantOneSide, None),
        "suitor-serial" => (MatcherKind::Suitor, None),
        "suitor-parallel" => (MatcherKind::ParallelSuitor, None),
        "path-growing" => (MatcherKind::PathGrowing, None),
        "auction" => (MatcherKind::Auction { eps_rel: 1e-4 }, None),
        "ld" => (
            MatcherKind::ParallelLocalDominant,
            Some(RoundingMatcher::Ld),
        ),
        "suitor" => (MatcherKind::ParallelSuitor, Some(RoundingMatcher::Suitor)),
        other => {
            eprintln!("unknown matcher '{other}'");
            exit(2)
        }
    }
}

fn cmd_stats(flags: &HashMap<String, String>) {
    let p = load_problem(flags);
    let (va, vb, el, nnz) = p.shape();
    println!("|V_A| = {va}");
    println!("|V_B| = {vb}");
    println!("|E_A| = {}", p.a.num_edges());
    println!("|E_B| = {}", p.b.num_edges());
    println!("|E_L| = {el}");
    println!("nnz(S) = {nnz}");
    let da = degree_summary(&p.a);
    let dl = left_degree_summary(&p.l);
    println!(
        "deg(A): min {} max {} mean {:.2} cv {:.2}",
        da.min, da.max, da.mean, da.cv
    );
    println!(
        "deg(L): min {} max {} mean {:.2} cv {:.2}",
        dl.min, dl.max, dl.mean, dl.cv
    );
    let srows = netalignmc::graph::stats::summarize((0..el).map(|e| p.s.row_range(e).len()));
    println!(
        "nnz/row(S): min {} max {} mean {:.2} cv {:.2}",
        srows.min, srows.max, srows.mean, srows.cv
    );
}

fn cmd_align(flags: &HashMap<String, String>) {
    let p = load_problem(flags);
    let method = get_or(flags, "method", "bp");
    let (matcher, rounding) = parse_matcher(get_or(flags, "matcher", "exact"));
    let warm_start = get_or(flags, "warm-start", "false") == "true";
    if warm_start && rounding.is_none() {
        eprintln!("--warm-start true requires --matcher ld or suitor (the engine shorthands)");
        exit(2)
    }
    let cfg = AlignConfig {
        alpha: parse_num(get_or(flags, "alpha", "1.0"), "alpha"),
        beta: parse_num(get_or(flags, "beta", "2.0"), "beta"),
        gamma: parse_num(get_or(flags, "gamma", "0.99"), "gamma"),
        iterations: parse_num(get_or(flags, "iters", "100"), "iters"),
        mstep: parse_num(get_or(flags, "mstep", "10"), "mstep"),
        batch: parse_num(get_or(flags, "batch", "1"), "batch"),
        matcher,
        rounding,
        warm_start,
        final_exact_round: get_or(flags, "final-exact", "true") == "true",
        ..Default::default()
    };
    // --checkpoint DIR snapshots the run into DIR (a rerun of the same
    // command auto-resumes from the newest valid snapshot); --resume
    // PATH resumes from an explicit snapshot file or directory. Only
    // the iterative bp/mr engines have checkpointable state.
    let checkpoint = flags.get("checkpoint").map(std::path::PathBuf::from);
    let resume = flags.get("resume").map(std::path::PathBuf::from);
    let harness = if checkpoint.is_some() || resume.is_some() {
        if method != "bp" && method != "mr" {
            eprintln!("--checkpoint/--resume only apply to --method bp or mr");
            exit(2)
        }
        let mut h = RunHarness::new();
        if let Some(dir) = &checkpoint {
            if resume.is_none() && dir.is_dir() {
                h = h.with_resume_from(dir);
            }
            h = h.with_checkpoint_dir(dir);
        }
        if let Some(src) = &resume {
            h = h.with_resume_from(src);
        }
        Some(h)
    } else {
        None
    };
    let run_checkpointed = |r: Result<AlignmentResult, CheckpointError>| {
        r.unwrap_or_else(|e| {
            eprintln!("checkpoint/resume failed: {e}");
            exit(1)
        })
    };
    let start = std::time::Instant::now();
    let r = match (method, &harness) {
        ("bp", None) => belief_propagation(&p, &cfg),
        ("bp", Some(h)) => run_checkpointed(h.run_bp(&p, &cfg)),
        ("mr", None) => matching_relaxation(&p, &cfg),
        ("mr", Some(h)) => run_checkpointed(h.run_mr(&p, &cfg)),
        ("isorank", _) => isorank(&p, &IsoRankConfig::default(), &cfg),
        ("nsd", _) => nsd(&p, &NsdConfig::default(), &cfg),
        ("naive", _) => naive_rounding(&p, &cfg),
        (other, _) => {
            eprintln!("unknown method '{other}' (bp|mr|isorank|nsd|naive)");
            exit(2)
        }
    };
    let secs = start.elapsed().as_secs_f64();
    println!("method    : {method}");
    println!("matcher   : {}", cfg.matcher.name());
    if let Some(kind) = cfg.rounding {
        println!(
            "rounding  : {:?} engine{}",
            kind,
            if cfg.warm_start {
                " (warm-started)"
            } else {
                ""
            }
        );
    }
    println!("objective : {:.4}", r.objective);
    println!("weight    : {:.4}", r.weight);
    println!("overlap   : {:.1}", r.overlap);
    println!("matched   : {}", r.matching.cardinality());
    if let Some(ub) = r.upper_bound {
        println!("upper     : {ub:.4}");
    }
    println!("time      : {secs:.3}s");

    if let Some(out) = flags.get("out") {
        let mut body = String::new();
        for (a, b) in r.matching.pairs() {
            body.push_str(&format!("{a} {b}\n"));
        }
        write_output_file(out, &body, "--out");
        println!("matching written to {out}");
    }
    if let Some(out) = flags.get("json-out") {
        let json = format!(
            "{{\n  \"method\": \"{}\",\n  \"matcher\": \"{}\",\n  \"objective\": {},\n  \"weight\": {},\n  \"overlap\": {},\n  \"matched\": {},\n  \"seconds\": {}\n}}\n",
            method,
            cfg.matcher.name(),
            r.objective,
            r.weight,
            r.overlap,
            r.matching.cardinality(),
            secs
        );
        write_output_file(out, &json, "--json-out");
        println!("summary written to {out}");
    }
}

/// Write a user-requested output file, creating missing parent
/// directories; report failures on stderr and exit(1) instead of
/// panicking with a backtrace.
fn write_output_file(path: &str, body: &str, flag: &str) {
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {flag} directory {}: {e}", dir.display());
                exit(1)
            }
        }
    }
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("cannot write {flag} file {}: {e}", path.display());
        exit(1)
    }
}

fn cmd_generate(flags: &HashMap<String, String>) {
    let name = get(flags, "dataset");
    let scale: f64 = parse_num(get_or(flags, "scale", "0.05"), "scale");
    let seed: u64 = parse_num(get_or(flags, "seed", "42"), "seed");
    let out_dir = std::path::PathBuf::from(get(flags, "out-dir"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create --out-dir {}: {e}", out_dir.display());
        exit(1)
    }

    let inst = match name {
        "dmela-scere" => StandIn::DmelaScere.generate(scale, seed),
        "homo-musm" => StandIn::HomoMusm.generate(scale, seed),
        "lcsh-wiki" => StandIn::LcshWiki.generate(scale, seed),
        "lcsh-rameau" => StandIn::LcshRameau.generate(scale, seed),
        "powerlaw" => netalignmc::data::synthetic::power_law_alignment(
            &netalignmc::data::synthetic::PowerLawParams {
                seed,
                ..Default::default()
            },
        ),
        other => {
            eprintln!("unknown dataset '{other}'");
            exit(2)
        }
    };
    fn fail(out_dir: &std::path::Path, what: &str, e: impl std::fmt::Display) -> ! {
        eprintln!("cannot write {what} under {}: {e}", out_dir.display());
        exit(1)
    }
    io::write_edge_list_file(&inst.problem.a, out_dir.join("a.el"))
        .unwrap_or_else(|e| fail(&out_dir, "a.el", e));
    io::write_edge_list_file(&inst.problem.b, out_dir.join("b.el"))
        .unwrap_or_else(|e| fail(&out_dir, "b.el", e));
    io::write_bipartite_smat_file(&inst.problem.l, out_dir.join("l.smat"))
        .unwrap_or_else(|e| fail(&out_dir, "l.smat", e));
    let mut planted = String::new();
    for (a, pb) in inst.planted.iter().enumerate() {
        if let Some(b) = pb {
            planted.push_str(&format!("{a} {b}\n"));
        }
    }
    std::fs::write(out_dir.join("planted.txt"), planted)
        .unwrap_or_else(|e| fail(&out_dir, "planted.txt", e));
    let (va, vb, el, nnz) = inst.problem.shape();
    println!(
        "wrote {name} (scale {scale}, seed {seed}) to {}",
        out_dir.display()
    );
    println!("|V_A|={va} |V_B|={vb} |E_L|={el} nnz(S)={nnz}");
}
