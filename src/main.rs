//! `netalignmc` — command-line network alignment.
//!
//! ```text
//! netalignmc stats    --a A.el --b B.el --l L.smat
//! netalignmc align    --a A.el --b B.el --l L.smat --method bp
//!                     [--matcher ld-parallel] [--warm-start true]
//!                     [--alpha 1] [--beta 2]
//!                     [--gamma 0.99] [--iters 100] [--batch 1]
//!                     [--out matching.txt] [--json-out result.json]
//!                     [--checkpoint DIR] [--resume PATH]
//!
//! The `--matcher` shorthands `ld` and `suitor` route the
//! per-iteration rounding through the preallocated matcher engine
//! (queue-based parallel LD or lock-free parallel Suitor); adding
//! `--warm-start true` seeds each rounding from the previous
//! iteration's mate state. Results are bit-identical to the legacy
//! one-shot matchers of the same family.
//! netalignmc generate --dataset dmela-scere [--scale 0.1] [--seed 42]
//!                     --out-dir data/
//! ```
//!
//! `--dist-workers N` executes the BP run across `N` worker processes
//! over localhost TCP (`--dist-base-port P` pins the coordinator port).
//! Workers that crash are respawned and resumed from per-iteration
//! checkpoints; past the respawn budget their rows are re-partitioned
//! onto survivors. The result is bit-identical to the in-process
//! engine. Unrecoverable transport failure exits with code 7.
//!
//! A `--deadline-ms` turns an `align` run into a deadline-aware anytime
//! run: at expiry the best-so-far matching is returned (completion
//! `deadline-best-so-far`), with `--on-deadline` selecting best-so-far
//! (default), checkpoint-and-return, or treat-as-error.
//!
//! Graphs are edge lists with an `n m` header; `L` is SMAT (see
//! `netalign_graph::io`). The matching output has one `a b` line per
//! aligned pair.

use netalignmc::core::baselines::{isorank, naive_rounding, nsd, IsoRankConfig, NsdConfig};
use netalignmc::core::exitcode;
use netalignmc::core::NetAlignProblem;
use netalignmc::data::standins::StandIn;
use netalignmc::graph::io;
use netalignmc::graph::stats::{degree_summary, left_degree_summary};
use netalignmc::prelude::*;
use std::collections::HashMap;
use std::process::exit;

fn help_text() -> String {
    format!(
        "usage: netalignmc <stats|align|generate|serve> [--flag value]...\n\
         \n\
         align flags (see the crate docs for the full list):\n\
         \x20 --a A.el --b B.el --l L.smat   input graphs\n\
         \x20 --method bp|mr|isorank|nsd|naive\n\
         \x20 --matcher exact|ld|suitor|...  [--warm-start true]\n\
         \x20 --mmap DIR                     out-of-core BP: stream S to DIR, mmap sweeps\n\
         \x20 --max-resident-mb N            resident budget for --mmap (exit 6 if infeasible)\n\
         \x20 --dist-workers N               run BP across N worker processes over localhost TCP\n\
         \x20 --dist-base-port P             coordinator listen port for --dist-workers (0 = ephemeral)\n\
         \x20 --checkpoint DIR [--resume PATH]\n\
         \x20 --deadline-ms N                total wall-clock budget (anytime run)\n\
         \x20 --soft-iter-ms N               per-iteration soft budget (degradation only)\n\
         \x20 --watchdog-ms N                cancel cleanly when no progress for N ms\n\
         \x20 --on-deadline best-so-far|checkpoint|error   (default best-so-far)\n\
         \n\
         serve flags (alignment-as-a-service daemon; see netalignd --help):\n\
         \x20 --addr HOST:PORT               bind address (default 127.0.0.1:7464)\n\
         \x20 --cache-capacity N             warm problems kept resident (default 8)\n\
         \x20 --queue-capacity N             admission bound; overflow answers 429\n\
         \x20 --watchdog-ms N                per-solve stall watchdog (0 disables)\n\
         \x20 --threads N                    solver worker threads\n\
         \x20 --state-dir PATH               durable state dir (journal + spills)\n\
         \x20 --journal-max-bytes N          journal rotation threshold\n\
         \x20 --conn-timeout-ms N            per-frame receive timeout (0 = none)\n\
         \n\
         {}",
        exitcode::HELP_TABLE
    )
}

fn usage() -> ! {
    eprintln!("{}", help_text());
    exit(exitcode::USAGE)
}

fn main() {
    // Distributed worker re-entry: when spawned by a coordinator this
    // process runs the worker loop and exits before any CLI parsing.
    netalignmc::core::dist::maybe_run_worker();
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        println!("{}", help_text());
        exit(exitcode::OK)
    }
    let mut flags: HashMap<String, String> = HashMap::new();
    let rest: Vec<String> = args.collect();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        if a == "--help" || a == "-h" {
            println!("{}", help_text());
            exit(exitcode::OK)
        }
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("expected --flag, got '{a}'");
            usage()
        };
        let Some(val) = it.next() else {
            eprintln!("flag --{key} needs a value");
            usage()
        };
        flags.insert(key.to_string(), val);
    }

    // Exit-code discipline: anything that unwinds out of a subcommand
    // is an internal error (code 5), distinct from the generic 1 of an
    // uncaught panic so scripted callers can classify it.
    let ran = std::panic::catch_unwind(|| match cmd.as_str() {
        "stats" => cmd_stats(&flags),
        "align" => cmd_align(&flags),
        "generate" => cmd_generate(&flags),
        "serve" => cmd_serve(&flags),
        other => {
            eprintln!("unknown subcommand '{other}'");
            usage()
        }
    });
    if ran.is_err() {
        eprintln!("internal error: the run panicked (details above)");
        exit(exitcode::INTERNAL)
    }
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{key}");
        exit(exitcode::USAGE)
    })
}

fn get_or<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what}: '{s}'");
        exit(exitcode::USAGE)
    })
}

/// `netalignmc serve`: run the alignment daemon in-process (same
/// runtime as the standalone `netalignd` binary).
fn cmd_serve(flags: &HashMap<String, String>) {
    use netalignmc::serve::{ServerHandle, ServerOptions};
    let defaults = ServerOptions::default();
    let opts = ServerOptions {
        addr: get_or(flags, "addr", "127.0.0.1:7464").to_string(),
        cache_capacity: parse_num(
            get_or(
                flags,
                "cache-capacity",
                &defaults.cache_capacity.to_string(),
            ),
            "--cache-capacity",
        ),
        queue_capacity: parse_num(
            get_or(
                flags,
                "queue-capacity",
                &defaults.queue_capacity.to_string(),
            ),
            "--queue-capacity",
        ),
        max_frame_bytes: parse_num(
            get_or(
                flags,
                "max-frame-bytes",
                &defaults.max_frame_bytes.to_string(),
            ),
            "--max-frame-bytes",
        ),
        watchdog_ms: match parse_num::<u64>(get_or(flags, "watchdog-ms", "30000"), "--watchdog-ms")
        {
            0 => None,
            ms => Some(ms),
        },
        threads: flags.get("threads").map(|t| parse_num(t, "--threads")),
        state_dir: flags.get("state-dir").map(Into::into),
        journal_max_bytes: parse_num(
            get_or(
                flags,
                "journal-max-bytes",
                &defaults.journal_max_bytes.to_string(),
            ),
            "--journal-max-bytes",
        ),
        conn_timeout_ms: match parse_num::<u64>(
            get_or(flags, "conn-timeout-ms", "0"),
            "--conn-timeout-ms",
        ) {
            0 => None,
            ms => Some(ms),
        },
        // The `crash` op is a chaos-harness affordance of the
        // standalone `netalignd`; the in-process daemon always 422s it.
        allow_crash_op: false,
    };
    let handle = ServerHandle::start(opts).unwrap_or_else(|e| {
        eprintln!("serve: bind failed: {e}");
        exit(exitcode::IO)
    });
    println!("netalignd listening on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    handle.wait();
    exit(exitcode::OK)
}

fn load_graphs(
    flags: &HashMap<String, String>,
) -> (
    netalignmc::graph::Graph,
    netalignmc::graph::Graph,
    netalignmc::graph::BipartiteGraph,
) {
    let a = io::read_edge_list_file(get(flags, "a")).unwrap_or_else(|e| {
        eprintln!("failed to read A: {e}");
        exit(exitcode::IO)
    });
    let b = io::read_edge_list_file(get(flags, "b")).unwrap_or_else(|e| {
        eprintln!("failed to read B: {e}");
        exit(exitcode::IO)
    });
    let l = io::read_bipartite_smat_file(get(flags, "l")).unwrap_or_else(|e| {
        eprintln!("failed to read L: {e}");
        exit(exitcode::IO)
    });
    (a, b, l)
}

fn load_problem(flags: &HashMap<String, String>) -> NetAlignProblem {
    let (a, b, l) = load_graphs(flags);
    NetAlignProblem::new(a, b, l)
}

/// Map a `--matcher` value to the one-shot matcher kind plus, for the
/// `ld`/`suitor` shorthands, the preallocated rounding engine backing
/// the per-iteration matchings.
fn parse_matcher(name: &str) -> (MatcherKind, Option<RoundingMatcher>) {
    match name {
        "exact" => (MatcherKind::Exact, None),
        "greedy" => (MatcherKind::Greedy, None),
        "ld-serial" => (MatcherKind::LocalDominant, None),
        "ld-parallel" => (MatcherKind::ParallelLocalDominant, None),
        "ld-parallel-1side" => (MatcherKind::ParallelLocalDominantOneSide, None),
        "suitor-serial" => (MatcherKind::Suitor, None),
        "suitor-parallel" => (MatcherKind::ParallelSuitor, None),
        "suitor-external" => (MatcherKind::ExternalSuitor, None),
        "path-growing" => (MatcherKind::PathGrowing, None),
        "auction" => (MatcherKind::Auction { eps_rel: 1e-4 }, None),
        "ld" => (
            MatcherKind::ParallelLocalDominant,
            Some(RoundingMatcher::Ld),
        ),
        "suitor" => (MatcherKind::ParallelSuitor, Some(RoundingMatcher::Suitor)),
        other => {
            eprintln!("unknown matcher '{other}'");
            exit(exitcode::USAGE)
        }
    }
}

fn cmd_stats(flags: &HashMap<String, String>) {
    let p = load_problem(flags);
    let (va, vb, el, nnz) = p.shape();
    println!("|V_A| = {va}");
    println!("|V_B| = {vb}");
    println!("|E_A| = {}", p.a.num_edges());
    println!("|E_B| = {}", p.b.num_edges());
    println!("|E_L| = {el}");
    println!("nnz(S) = {nnz}");
    let da = degree_summary(&p.a);
    let dl = left_degree_summary(&p.l);
    println!(
        "deg(A): min {} max {} mean {:.2} cv {:.2}",
        da.min, da.max, da.mean, da.cv
    );
    println!(
        "deg(L): min {} max {} mean {:.2} cv {:.2}",
        dl.min, dl.max, dl.mean, dl.cv
    );
    let srows = netalignmc::graph::stats::summarize((0..el).map(|e| p.s.row_range(e).len()));
    println!(
        "nnz/row(S): min {} max {} mean {:.2} cv {:.2}",
        srows.min, srows.max, srows.mean, srows.cv
    );
}

fn cmd_align(flags: &HashMap<String, String>) {
    let method = get_or(flags, "method", "bp");
    let (matcher, rounding) = parse_matcher(get_or(flags, "matcher", "exact"));
    let warm_start = get_or(flags, "warm-start", "false") == "true";
    if warm_start && rounding.is_none() {
        eprintln!("--warm-start true requires --matcher ld or suitor (the engine shorthands)");
        exit(exitcode::USAGE)
    }
    let cfg = AlignConfig {
        alpha: parse_num(get_or(flags, "alpha", "1.0"), "alpha"),
        beta: parse_num(get_or(flags, "beta", "2.0"), "beta"),
        gamma: parse_num(get_or(flags, "gamma", "0.99"), "gamma"),
        iterations: parse_num(get_or(flags, "iters", "100"), "iters"),
        mstep: parse_num(get_or(flags, "mstep", "10"), "mstep"),
        batch: parse_num(get_or(flags, "batch", "1"), "batch"),
        matcher,
        rounding,
        warm_start,
        final_exact_round: get_or(flags, "final-exact", "true") == "true",
        ..Default::default()
    };
    // --checkpoint DIR snapshots the run into DIR (a rerun of the same
    // command auto-resumes from the newest valid snapshot); --resume
    // PATH resumes from an explicit snapshot file or directory.
    // --deadline-ms / --soft-iter-ms / --watchdog-ms bound the run in
    // wall-clock time (anytime execution). Only the iterative bp/mr
    // engines support these.
    let checkpoint = flags.get("checkpoint").map(std::path::PathBuf::from);
    let resume = flags.get("resume").map(std::path::PathBuf::from);
    let deadline_ms: Option<u64> = flags
        .get("deadline-ms")
        .map(|s| parse_num(s, "deadline-ms"));
    let soft_iter_ms: Option<u64> = flags
        .get("soft-iter-ms")
        .map(|s| parse_num(s, "soft-iter-ms"));
    let watchdog_ms: Option<u64> = flags
        .get("watchdog-ms")
        .map(|s| parse_num(s, "watchdog-ms"));
    let on_deadline = match get_or(flags, "on-deadline", "best-so-far") {
        "best-so-far" => DeadlinePolicy::BestSoFar,
        "checkpoint" => DeadlinePolicy::Checkpoint,
        "error" => DeadlinePolicy::Error,
        other => {
            eprintln!("unknown --on-deadline '{other}' (best-so-far|checkpoint|error)");
            exit(exitcode::USAGE)
        }
    };
    if on_deadline == DeadlinePolicy::Checkpoint && checkpoint.is_none() {
        eprintln!("--on-deadline checkpoint requires --checkpoint DIR");
        exit(exitcode::USAGE)
    }
    // --mmap DIR switches `--method bp` to the out-of-core path: the
    // squares matrix is streamed to DIR/s.nacs, the nnz-sized message
    // streams live in unlinked scratch files under DIR, and the sweeps
    // run over mapped superblocks. --max-resident-mb bounds the
    // resident working set; an infeasible budget is refused up front
    // with exit code 6.
    let mmap_dir = flags.get("mmap").map(std::path::PathBuf::from);
    let max_resident_mb: Option<u64> = flags
        .get("max-resident-mb")
        .map(|s| parse_num(s, "max-resident-mb"));
    if max_resident_mb.is_some() && mmap_dir.is_none() {
        eprintln!("--max-resident-mb requires --mmap DIR");
        exit(exitcode::USAGE)
    }
    if mmap_dir.is_some() {
        if method != "bp" {
            eprintln!("--mmap only applies to --method bp");
            exit(exitcode::USAGE)
        }
        if checkpoint.is_some()
            || resume.is_some()
            || deadline_ms.is_some()
            || soft_iter_ms.is_some()
            || watchdog_ms.is_some()
        {
            eprintln!(
                "--mmap is incompatible with --checkpoint/--resume/--deadline-ms/\
                 --soft-iter-ms/--watchdog-ms (out-of-core runs are not checkpointable)"
            );
            exit(exitcode::USAGE)
        }
    }
    // --dist-workers N runs the BP engine across N worker *processes*
    // over localhost TCP (crash recovery included); the result is
    // bit-identical to the in-process engine. A transport failure that
    // recovery cannot mask (all workers past their respawn budgets, or
    // the coordinator socket failing) exits with code 7.
    let dist_workers: Option<usize> = flags
        .get("dist-workers")
        .map(|s| parse_num(s, "dist-workers"));
    let dist_base_port: u16 = parse_num(get_or(flags, "dist-base-port", "0"), "dist-base-port");
    if dist_workers.is_none() && flags.contains_key("dist-base-port") {
        eprintln!("--dist-base-port requires --dist-workers N");
        exit(exitcode::USAGE)
    }
    if let Some(w) = dist_workers {
        if w == 0 {
            eprintln!("--dist-workers must be at least 1");
            exit(exitcode::USAGE)
        }
        if method != "bp" {
            eprintln!("--dist-workers only applies to --method bp");
            exit(exitcode::USAGE)
        }
        if mmap_dir.is_some() {
            eprintln!("--dist-workers is incompatible with --mmap (pick one execution mode)");
            exit(exitcode::USAGE)
        }
        if checkpoint.is_some()
            || resume.is_some()
            || deadline_ms.is_some()
            || soft_iter_ms.is_some()
            || watchdog_ms.is_some()
        {
            eprintln!(
                "--dist-workers is incompatible with --checkpoint/--resume/--deadline-ms/\
                 --soft-iter-ms/--watchdog-ms (distributed runs checkpoint internally)"
            );
            exit(exitcode::USAGE)
        }
    }
    let needs_harness = checkpoint.is_some()
        || resume.is_some()
        || deadline_ms.is_some()
        || soft_iter_ms.is_some()
        || watchdog_ms.is_some();
    let harness = if needs_harness {
        if method != "bp" && method != "mr" {
            eprintln!(
                "--checkpoint/--resume/--deadline-ms/--watchdog-ms only apply to --method bp or mr"
            );
            exit(exitcode::USAGE)
        }
        let mut h = RunHarness::new().with_on_deadline(on_deadline);
        if let Some(dir) = &checkpoint {
            if resume.is_none() && dir.is_dir() {
                h = h.with_resume_from(dir);
            }
            h = h.with_checkpoint_dir(dir);
        }
        if let Some(src) = &resume {
            h = h.with_resume_from(src);
        }
        if deadline_ms.is_some() || soft_iter_ms.is_some() {
            h = h.with_time_budget(TimeBudget {
                deadline: deadline_ms.map(std::time::Duration::from_millis),
                soft_iteration: soft_iter_ms.map(std::time::Duration::from_millis),
            });
        }
        if let Some(ms) = watchdog_ms {
            h = h.with_watchdog(std::time::Duration::from_millis(ms));
        }
        Some(h)
    } else {
        None
    };
    let run_harnessed = |r: Result<AlignOutcome, HarnessError>| -> AlignOutcome {
        match r {
            Ok(o) => o,
            Err(HarnessError::DeadlineExceeded { iterations_run }) => {
                eprintln!(
                    "deadline expired after {iterations_run} iterations (--on-deadline error)"
                );
                exit(exitcode::DEADLINE)
            }
            Err(HarnessError::Checkpoint(e)) => {
                eprintln!("checkpoint/resume failed: {e}");
                exit(match e {
                    CheckpointError::Io { .. } => exitcode::IO,
                    _ => exitcode::INTERNAL,
                })
            }
            Err(HarnessError::Delta(e)) => {
                eprintln!("delta replay failed: {e}");
                exit(exitcode::INTERNAL)
            }
        }
    };
    let unpack = |o: AlignOutcome| {
        let AlignOutcome {
            result,
            completion,
            iterations_run,
            cancel_reason,
            ladder_rung,
            deadline_checkpoint,
        } = o;
        (
            result,
            Some((
                completion,
                iterations_run,
                ladder_rung,
                cancel_reason,
                deadline_checkpoint,
            )),
        )
    };
    let start = std::time::Instant::now();
    // Recovery counters from a distributed run, for the report and
    // `--json-out` (the chaos CI matrix gates on these).
    let mut dist: Option<(usize, u64, u64, u64, u64)> = None;
    let (r, meta) = if let Some(workers) = dist_workers {
        use netalignmc::core::dist::{align_distributed, DistConfig, DistReport};
        let p = load_problem(flags);
        let mut dc = DistConfig::from_env(workers);
        dc.base_port = dist_base_port;
        match align_distributed(&p, &cfg, &dc) {
            Ok(DistReport {
                result,
                workers,
                worker_restarts,
                retransmissions,
                repartitions,
                recoveries,
            }) => {
                dist = Some((
                    workers,
                    worker_restarts,
                    retransmissions,
                    repartitions,
                    recoveries,
                ));
                (result, None)
            }
            Err(e) => {
                eprintln!("distributed run failed: {e}");
                exit(exitcode::TRANSPORT)
            }
        }
    } else if let Some(dir) = &mmap_dir {
        let (a, b, l) = load_graphs(flags);
        let mut opts = OocOptions::new(dir);
        if let Some(mb) = max_resident_mb {
            opts = opts.with_budget_mb(mb);
        }
        match align_streaming(a, b, l, &cfg, &opts) {
            Ok(r) => (r, None),
            Err(OocError::BudgetTooSmall {
                budget_bytes,
                baseline_bytes,
            }) => {
                eprintln!(
                    "--max-resident-mb {} is below the out-of-core baseline \
                     ({} MiB needed for the m-sized working set plus a minimal window)",
                    budget_bytes >> 20,
                    baseline_bytes.div_ceil(1 << 20),
                );
                exit(exitcode::BUDGET)
            }
            Err(OocError::Io(e)) => {
                eprintln!(
                    "out-of-core scratch I/O failed under {}: {e}",
                    dir.display()
                );
                exit(exitcode::IO)
            }
            Err(OocError::Nacs(e)) => {
                eprintln!(
                    "streaming squares build failed under {}: {e}",
                    dir.display()
                );
                exit(exitcode::IO)
            }
            Err(e) => {
                eprintln!("out-of-core run failed: {e}");
                exit(exitcode::INTERNAL)
            }
        }
    } else {
        let p = load_problem(flags);
        match (method, &harness) {
            ("bp", None) => (belief_propagation(&p, &cfg), None),
            ("bp", Some(h)) => unpack(run_harnessed(h.run_bp(&p, &cfg))),
            ("mr", None) => (matching_relaxation(&p, &cfg), None),
            ("mr", Some(h)) => unpack(run_harnessed(h.run_mr(&p, &cfg))),
            ("isorank", _) => (isorank(&p, &IsoRankConfig::default(), &cfg), None),
            ("nsd", _) => (nsd(&p, &NsdConfig::default(), &cfg), None),
            ("naive", _) => (naive_rounding(&p, &cfg), None),
            (other, _) => {
                eprintln!("unknown method '{other}' (bp|mr|isorank|nsd|naive)");
                exit(exitcode::USAGE)
            }
        }
    };
    let secs = start.elapsed().as_secs_f64();
    println!("method    : {method}");
    println!("matcher   : {}", cfg.matcher.name());
    if let Some(kind) = cfg.rounding {
        println!(
            "rounding  : {:?} engine{}",
            kind,
            if cfg.warm_start {
                " (warm-started)"
            } else {
                ""
            }
        );
    }
    println!("objective : {:.4}", r.objective);
    println!("weight    : {:.4}", r.weight);
    println!("overlap   : {:.1}", r.overlap);
    println!("matched   : {}", r.matching.cardinality());
    if let Some(ub) = r.upper_bound {
        println!("upper     : {ub:.4}");
    }
    println!("time      : {secs:.3}s");
    if let Some((w, restarts, retrans, reparts, recov)) = &dist {
        println!(
            "dist      : {w} workers (restarts {restarts}, retransmissions {retrans}, \
             repartitions {reparts}, recoveries {recov})"
        );
    }
    if r.trace.peak_rss_kb > 0 {
        println!("peak rss  : {} kB", r.trace.peak_rss_kb);
    }
    if let Some((completion, iters, rung, reason, ckpt)) = &meta {
        println!("completion: {}", completion.label());
        if *completion != Completion::Completed {
            println!("stopped   : after {iters} iterations (ladder rung {rung})");
            if let Some(reason) = reason {
                println!("cause     : {}", reason.label());
            }
            if let Some(ckpt) = ckpt {
                println!("cut ckpt  : {}", ckpt.display());
            }
        }
    }

    if let Some(out) = flags.get("out") {
        let mut body = String::new();
        for (a, b) in r.matching.pairs() {
            body.push_str(&format!("{a} {b}\n"));
        }
        write_output_file(out, &body, "--out");
        println!("matching written to {out}");
    }
    if let Some(out) = flags.get("json-out") {
        let (completion_label, iters_run, rung, reason_json) = match &meta {
            Some((c, i, rung, reason, _)) => (
                c.label(),
                *i,
                *rung,
                reason
                    .map(|x| format!("\"{}\"", x.label()))
                    .unwrap_or_else(|| "null".to_string()),
            ),
            None => ("completed", cfg.iterations, 0, "null".to_string()),
        };
        let dist_json = match &dist {
            Some((w, restarts, retrans, reparts, recov)) => format!(
                "{{\"workers\": {w}, \"worker_restarts\": {restarts}, \
                 \"retransmissions\": {retrans}, \"repartitions\": {reparts}, \
                 \"recoveries\": {recov}}}"
            ),
            None => "null".to_string(),
        };
        let json = format!(
            "{{\n  \"method\": \"{}\",\n  \"matcher\": \"{}\",\n  \"objective\": {},\n  \"weight\": {},\n  \"overlap\": {},\n  \"matched\": {},\n  \"seconds\": {},\n  \"peak_rss_kb\": {},\n  \"completion\": \"{}\",\n  \"iterations_run\": {},\n  \"ladder_rung\": {},\n  \"cancel_reason\": {},\n  \"dist\": {}\n}}\n",
            method,
            cfg.matcher.name(),
            r.objective,
            r.weight,
            r.overlap,
            r.matching.cardinality(),
            secs,
            r.trace.peak_rss_kb,
            completion_label,
            iters_run,
            rung,
            reason_json,
            dist_json
        );
        write_output_file(out, &json, "--json-out");
        println!("summary written to {out}");
    }
}

/// Write a user-requested output file, creating missing parent
/// directories; report failures on stderr and exit(1) instead of
/// panicking with a backtrace.
fn write_output_file(path: &str, body: &str, flag: &str) {
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {flag} directory {}: {e}", dir.display());
                exit(exitcode::IO)
            }
        }
    }
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("cannot write {flag} file {}: {e}", path.display());
        exit(exitcode::IO)
    }
}

fn cmd_generate(flags: &HashMap<String, String>) {
    let name = get(flags, "dataset");
    let scale: f64 = parse_num(get_or(flags, "scale", "0.05"), "scale");
    let seed: u64 = parse_num(get_or(flags, "seed", "42"), "seed");
    let out_dir = std::path::PathBuf::from(get(flags, "out-dir"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create --out-dir {}: {e}", out_dir.display());
        exit(exitcode::IO)
    }

    let inst = match name {
        "dmela-scere" => StandIn::DmelaScere.generate(scale, seed),
        "homo-musm" => StandIn::HomoMusm.generate(scale, seed),
        "lcsh-wiki" => StandIn::LcshWiki.generate(scale, seed),
        "lcsh-rameau" => StandIn::LcshRameau.generate(scale, seed),
        "powerlaw" => netalignmc::data::synthetic::power_law_alignment(
            &netalignmc::data::synthetic::PowerLawParams {
                seed,
                ..Default::default()
            },
        ),
        other => {
            eprintln!("unknown dataset '{other}'");
            exit(exitcode::USAGE)
        }
    };
    fn fail(out_dir: &std::path::Path, what: &str, e: impl std::fmt::Display) -> ! {
        eprintln!("cannot write {what} under {}: {e}", out_dir.display());
        exit(exitcode::IO)
    }
    io::write_edge_list_file(&inst.problem.a, out_dir.join("a.el"))
        .unwrap_or_else(|e| fail(&out_dir, "a.el", e));
    io::write_edge_list_file(&inst.problem.b, out_dir.join("b.el"))
        .unwrap_or_else(|e| fail(&out_dir, "b.el", e));
    io::write_bipartite_smat_file(&inst.problem.l, out_dir.join("l.smat"))
        .unwrap_or_else(|e| fail(&out_dir, "l.smat", e));
    let mut planted = String::new();
    for (a, pb) in inst.planted.iter().enumerate() {
        if let Some(b) = pb {
            planted.push_str(&format!("{a} {b}\n"));
        }
    }
    std::fs::write(out_dir.join("planted.txt"), planted)
        .unwrap_or_else(|e| fail(&out_dir, "planted.txt", e));
    let (va, vb, el, nnz) = inst.problem.shape();
    println!(
        "wrote {name} (scale {scale}, seed {seed}) to {}",
        out_dir.display()
    );
    println!("|V_A|={va} |V_B|={vb} |E_L|={el} nnz(S)={nnz}");
}
