//! # netalignmc
//!
//! A Rust reproduction of *"A multithreaded algorithm for network
//! alignment via approximate matching"* (Khan, Gleich, Pothen,
//! Halappanavar — SC '12).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR matrices, undirected graphs, the weighted
//!   bipartite candidate graph `L`, random generators, and I/O;
//! * [`matching`] — exact and ½-approximate maximum-weight bipartite
//!   matching, including the paper's parallel locally-dominant
//!   algorithm;
//! * [`core`] — the BP and MR network-alignment heuristics with
//!   pluggable rounding;
//! * [`data`] — seeded synthetic instances (the §VI.A power-law
//!   benchmark and Table II stand-ins).
//!
//! ## Example
//!
//! ```
//! use netalignmc::prelude::*;
//!
//! let inst = netalignmc::data::synthetic::power_law_alignment(
//!     &netalignmc::data::synthetic::PowerLawParams {
//!         n: 60,
//!         expected_degree: 3.0,
//!         ..Default::default()
//!     },
//! );
//! let cfg = AlignConfig {
//!     iterations: 25,
//!     matcher: MatcherKind::ParallelLocalDominant,
//!     ..Default::default()
//! };
//! let result = belief_propagation(&inst.problem, &cfg);
//! assert!(result.matching.cardinality() > 0);
//! ```

pub use netalign_core as core;
pub use netalign_data as data;
pub use netalign_graph as graph;
pub use netalign_matching as matching;
pub use netalign_serve as serve;

pub mod prelude {
    //! One-stop imports for applications.
    pub use netalign_core::prelude::*;
    pub use netalign_core::rounding::round_heuristic;
    pub use netalign_graph::prelude::*;
    pub use netalign_matching::{max_weight_matching, MatcherKind, Matching};
}
