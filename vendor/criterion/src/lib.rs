//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Each benchmark runs `sample_size` timed samples after one warmup
//! iteration and reports min / median / max wall time. Besides the
//! console table, every group writes a machine-readable JSON report to
//! `$CRITERION_OUT_DIR` (default `target/criterion-json/<group>.json`),
//! which is what EXPERIMENTS.md's per-step figures regenerate from.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            results: Vec::new(),
            finished: false,
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per sample, filled by [`Bencher::iter`].
    sample_ns: Vec<u128>,
}

impl Bencher {
    /// Time `f`: one untimed warmup call, then `sample_size` timed
    /// calls.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.sample_ns.push(t0.elapsed().as_nanos());
        }
    }
}

struct BenchResult {
    id: String,
    min_ns: u128,
    median_ns: u128,
    max_ns: u128,
    samples: usize,
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<BenchResult>,
    finished: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into_benchmark_id(), f)
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into_benchmark_id(), |b| f(b, input))
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            sample_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut ns = bencher.sample_ns;
        if ns.is_empty() {
            ns.push(0); // closure never called b.iter
        }
        ns.sort_unstable();
        let result = BenchResult {
            id: id.id,
            min_ns: ns[0],
            median_ns: ns[ns.len() / 2],
            max_ns: ns[ns.len() - 1],
            samples: ns.len(),
        };
        eprintln!(
            "{}/{}: median {} (min {}, max {}, {} samples)",
            self.name,
            result.id,
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.max_ns),
            result.samples,
        );
        self.results.push(result);
        self
    }

    /// Emit the group's console summary and JSON report.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let path = out_path(&self.name);
        if let Err(e) = self.write_json(&path) {
            eprintln!("{}: could not write {}: {}", self.name, path.display(), e);
        } else {
            eprintln!("{}: wrote {}", self.name, path.display());
        }
    }

    fn write_json(&self, path: &PathBuf) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": {},\n", json_string(&self.name)));
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}{}\n",
                json_string(&r.id),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        let mut file = std::fs::File::create(path)?;
        file.write_all(out.as_bytes())
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

fn out_path(group: &str) -> PathBuf {
    let dir = std::env::var_os("CRITERION_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("criterion-json"));
    let slug: String = group
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    dir.join(format!("{slug}.json"))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: u128) -> String {
    let d = Duration::from_nanos(ns as u64);
    if d.as_secs() > 0 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Things accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Convert to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($function:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("exact").id, "exact");
    }

    #[test]
    fn group_measures_and_reports() {
        let dir = std::env::temp_dir().join("criterion-shim-test");
        std::env::set_var("CRITERION_OUT_DIR", &dir);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-smoke");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        let written = std::fs::read_to_string(dir.join("shim-smoke.json")).unwrap();
        assert!(written.contains("\"group\": \"shim-smoke\""));
        assert!(written.contains("\"id\": \"sum/10\""));
        std::env::remove_var("CRITERION_OUT_DIR");
    }
}
