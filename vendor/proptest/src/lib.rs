//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`strategy::Strategy`] trait over ranges, tuples and
//! [`collection::vec`], with `prop_map` / `prop_flat_map` combinators,
//! plus the [`proptest!`] macro with `#![proptest_config(...)]` and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, acceptable for this workspace:
//! inputs are generated from a fixed per-test seed (hashed from the
//! test's name), so runs are fully deterministic, and failing cases are
//! reported by case number but not shrunk.

/// Strategies: composable random value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A composable generator of test inputs.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let u = rng.next_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v < self.end { v } else { self.start }
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            assert!(self.start < self.end, "empty strategy range");
            let lo = self.start as u32;
            let hi = self.end as u32;
            loop {
                let v = lo + (rng.next_u64() % (hi - lo) as u64) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `Vec` of `element` values, with a uniformly chosen length.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution: configuration and the per-test RNG.
pub mod test_runner {
    /// Run configuration; only the case count is meaningful here.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator for test inputs (SplitMix64 stream
    /// seeded from the test's name).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG whose stream is a pure function of `name`.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Assert inside a proptest case; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// item runs its body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(@cfg ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __proptest_case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} of {} failed",
                        __proptest_case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// The common imports, by the usual name.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0u32..(n as u32), 1..10).prop_map(move |v| (n, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y = {}", y);
        }

        #[test]
        fn flat_map_respects_dependency((n, v) in pair()) {
            prop_assert!(!v.is_empty());
            for &e in &v {
                prop_assert!((e as usize) < n);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
