//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream
//! generator behind the vendored `rand` traits.
//!
//! This is the reference ChaCha construction (Bernstein) with 8 rounds:
//! a 512-bit state of 4 constant words, 8 key words (the seed), a
//! 64-bit block counter, and a zero nonce. The word stream is a
//! deterministic function of the seed — which is all the workspace
//! requires of it (seeded reproducibility, good statistical quality).
//! It is not bit-compatible with upstream `rand_chacha`'s stream.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, seeded by a 256-bit key.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4096 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
