//! Offline stand-in for the subset of `rayon` this workspace uses,
//! backed by a **persistent worker pool with dynamic chunk scheduling**.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal data-parallel runtime with the same API shape:
//! indexed parallel iterators over slices and ranges with `map`, `zip`,
//! `enumerate`, `with_min_len`, `for_each`, `for_each_init`, `collect`,
//! `sum`, `max`; plus `join`, `current_num_threads`, and
//! `ThreadPoolBuilder::install` for pool-size scoping.
//!
//! # Execution model
//!
//! Worker threads are spawned lazily, once, and then parked on a
//! condvar between parallel regions — no per-region thread spawning.
//! A parallel region is *published* as a job: a stack-allocated
//! descriptor holding pre-split chunks and an atomic **chunk cursor**.
//! The caller and any attached workers repeatedly `fetch_add` the
//! cursor to claim the next unclaimed chunk — the direct analog of
//! OpenMP `schedule(dynamic, CHUNK)` from the paper's §IV.A. The
//! caller always participates, so a region completes even if every
//! worker is busy elsewhere (this also makes nested regions
//! deadlock-free).
//!
//! # Determinism contract
//!
//! The chunk decomposition depends only on the iterator's length and
//! `with_min_len` — never on the pool size: a region is split into at
//! most [`MAX_CHUNKS`] contiguous chunks of at least
//! `max(min_len, len / MAX_CHUNKS)` items. Reductions (`collect`,
//! `sum`, `max`, `min`) combine per-chunk results **in chunk order**.
//! Together these make every reduction bit-identical across pool sizes
//! (a pool of 1 executes the same chunks, inline, in order), which the
//! aligners' determinism tests rely on.
//!
//! # Extensions beyond rayon's API
//!
//! [`par_uneven_chunks_mut`] parallelizes over *irregular* contiguous
//! partitions of a mutable slice (e.g. CSR row groups balanced by
//! entry count) without allocating per call — the building block for
//! the aligners' allocation-free row-parallel updates.
//!
//! A global [cancel hook](set_chunk_cancel_hook) probed at every chunk
//! claim gives the embedding application cooperative cancellation: an
//! armed hook stops a region within one chunk of work per participant
//! and unwinds it with the distinguished [`RegionCancelled`] payload,
//! reusing the panic machinery so the pool survives untouched. The
//! probe receives the claiming thread's [cancel *scope*](set_cancel_scope)
//! — an opaque `u64` the embedder assigns per logical run, captured at
//! region publish time and adopted by every helping worker — so
//! concurrent runs in one process each observe only their own
//! cancellation source.
//!
//! `NETALIGN_THREADS` (read once) overrides the default thread count
//! the way `RAYON_NUM_THREADS` / `OMP_NUM_THREADS` would.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on chunks per parallel region. Also the unit of
/// pre-sized storage in a published job, so it must stay modest.
pub const MAX_CHUNKS: usize = 64;

/// Most jobs that can be published (pending worker pickup) at once;
/// regions beyond this run inline on their caller.
const QUEUE_CAP: usize = 64;

/// Hard cap on lazily-spawned persistent workers.
const MAX_WORKERS: usize = 64;

// ---------------------------------------------------------------------
// Chunk fault hook (testing).
// ---------------------------------------------------------------------

/// Optional hook invoked on every chunk claim, *inside* the chunk's
/// `catch_unwind` scope — a panicking hook is therefore recorded and
/// propagated exactly like a panic in the work closure itself. The
/// embedding application installs its fault-injection probe here
/// (netalign wires `netalign_trace::faults::chunk_claim_tick` in) so
/// the resilience suite can kill a worker on a chosen chunk claim.
/// Stored as a raw pointer: a `fn()` is thin, and a null pointer is the
/// disarmed state checked with one relaxed load per chunk.
static CHUNK_FAULT_HOOK: AtomicPtr<()> = AtomicPtr::new(std::ptr::null_mut());

/// Install (or with `None` remove) the global chunk fault hook.
pub fn set_chunk_fault_hook(hook: Option<fn()>) {
    let raw = hook.map_or(std::ptr::null_mut(), |f| f as *mut ());
    CHUNK_FAULT_HOOK.store(raw, Ordering::Release);
}

#[inline]
fn chunk_fault_probe() {
    let raw = CHUNK_FAULT_HOOK.load(Ordering::Acquire);
    if !raw.is_null() {
        // SAFETY: the only non-null values ever stored are `fn()`
        // pointers from `set_chunk_fault_hook`.
        let f: fn() = unsafe { std::mem::transmute::<*mut (), fn()>(raw) };
        f();
    }
}

// ---------------------------------------------------------------------
// Cooperative cancellation.
// ---------------------------------------------------------------------

/// Distinguished unwind payload of a cooperatively cancelled region.
///
/// When the [cancel hook](set_chunk_cancel_hook) reports a pending
/// cancellation, the region stops claiming work within one chunk and
/// unwinds out of its entry point via `resume_unwind` with a boxed
/// `RegionCancelled` — no panic hook fires, no backtrace is printed.
/// Callers that `catch_unwind` a parallel region can
/// `downcast_ref::<RegionCancelled>()` the payload to tell a clean
/// cancellation from a genuine worker panic. The pool-side machinery is
/// identical to panic handling (remaining chunks are skipped, helpers
/// drain, the job is unpublished), so the persistent pool stays fully
/// reusable after a cancelled region.
#[derive(Debug)]
pub struct RegionCancelled;

impl fmt::Display for RegionCancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("parallel region cancelled cooperatively")
    }
}

/// Optional hook probed on every chunk claim, returning `true` when
/// the region must cancel. The embedding application installs its
/// cancellation probe here (netalign wires
/// `netalign_trace::cancel::chunk_probe` in, which also bumps the
/// watchdog heartbeat per claim). The probe receives the claiming
/// thread's [cancel scope](set_cancel_scope), so the embedder can key
/// a token registry on it. Same representation discipline as the
/// fault hook: a thin `fn` pointer, null = disarmed, one relaxed load
/// per chunk when off.
static CHUNK_CANCEL_HOOK: AtomicPtr<()> = AtomicPtr::new(std::ptr::null_mut());

/// Install (or with `None` remove) the global chunk cancellation hook.
pub fn set_chunk_cancel_hook(hook: Option<fn(u64) -> bool>) {
    let raw = hook.map_or(std::ptr::null_mut(), |f| f as *mut ());
    CHUNK_CANCEL_HOOK.store(raw, Ordering::Release);
}

#[inline]
fn chunk_cancel_probe() -> bool {
    let raw = CHUNK_CANCEL_HOOK.load(Ordering::Acquire);
    if raw.is_null() {
        return false;
    }
    // SAFETY: the only non-null values ever stored are `fn(u64) -> bool`
    // pointers from `set_chunk_cancel_hook`.
    let f: fn(u64) -> bool = unsafe { std::mem::transmute::<*mut (), fn(u64) -> bool>(raw) };
    f(current_cancel_scope())
}

// ---------------------------------------------------------------------
// Cancel-scope propagation.
// ---------------------------------------------------------------------

thread_local! {
    /// The cancel scope (an embedder-assigned run id; 0 = none) this
    /// thread's parallel regions belong to. Captured into the job at
    /// publish time and adopted by helping workers, so the cancel hook
    /// sees the *publishing run's* scope on every participant.
    static CANCEL_SCOPE: Cell<u64> = const { Cell::new(0) };
}

/// The cancel scope in effect on this thread (0 = none).
pub fn current_cancel_scope() -> u64 {
    CANCEL_SCOPE.with(|c| c.get())
}

/// Set this thread's cancel scope, returning the previous one so
/// callers can restore it (scopes nest like any ambient context).
pub fn set_cancel_scope(scope: u64) -> u64 {
    CANCEL_SCOPE.with(|c| c.replace(scope))
}

fn with_cancel_scope<R>(scope: u64, f: impl FnOnce() -> R) -> R {
    struct Guard(u64);
    impl Drop for Guard {
        fn drop(&mut self) {
            CANCEL_SCOPE.with(|c| c.set(self.0));
        }
    }
    let _restore = Guard(set_cancel_scope(scope));
    f()
}

// ---------------------------------------------------------------------
// Pool-size scoping.
// ---------------------------------------------------------------------

thread_local! {
    static POOL_SIZE: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("NETALIGN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of threads the current scope parallelizes over.
pub fn current_num_threads() -> usize {
    let v = POOL_SIZE.with(|c| c.get());
    if v == 0 {
        default_threads()
    } else {
        v
    }
}

fn with_pool_size<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Guard(usize);
    impl Drop for Guard {
        fn drop(&mut self) {
            POOL_SIZE.with(|c| c.set(self.0));
        }
    }
    let prev = POOL_SIZE.with(|c| {
        let p = c.get();
        c.set(n);
        p
    });
    let _restore = Guard(prev);
    f()
}

/// A scoped thread-count configuration. Worker threads are global and
/// persistent; the pool object only scopes how many of them a region
/// may recruit.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count in scope.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_pool_size(self.threads, f)
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`'s fluent API.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default (machine / `NETALIGN_THREADS`)
    /// thread count.
    pub fn new() -> Self {
        Self { threads: 0 }
    }

    /// Set the pool's thread count; 0 means the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Build the pool. Infallible here, `Result` for API parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        };
        Ok(ThreadPool { threads })
    }
}

// ---------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------

const CHUNK_DONE: u8 = 1;
const CHUNK_SKIPPED: u8 = 2;

/// Type-erased scheduling state of a published region, embedded (as
/// the first, `#[repr(C)]` field) in the concrete job struct so the
/// executor can be recovered from a `*const JobCore`.
struct JobCore {
    /// Next unclaimed chunk; claimed by `fetch_add(1)`.
    cursor: AtomicUsize,
    /// Total chunks in this region.
    n_chunks: usize,
    /// Workers currently attached (excluding the publishing caller).
    helpers: AtomicUsize,
    /// Most workers allowed to attach (`pool - 1`).
    max_helpers: usize,
    /// Pool size workers adopt (for `current_num_threads` and nesting).
    pool: usize,
    /// Cancel scope workers adopt (the publisher's at publish time).
    scope: u64,
    /// Executes one claimed chunk of the concrete job.
    exec: unsafe fn(*const JobCore, usize),
    /// Guards the caller's wait for `helpers == 0` after unpublish.
    done_lock: Mutex<()>,
    done_cond: Condvar,
}

impl JobCore {
    fn new(n_chunks: usize, pool: usize, exec: unsafe fn(*const JobCore, usize)) -> Self {
        JobCore {
            cursor: AtomicUsize::new(0),
            n_chunks,
            helpers: AtomicUsize::new(0),
            max_helpers: (pool.saturating_sub(1)).min(n_chunks),
            pool,
            scope: current_cancel_scope(),
            exec,
            done_lock: Mutex::new(()),
            done_cond: Condvar::new(),
        }
    }

    /// Caller-side: after unpublishing, block until every attached
    /// worker has detached. The worker detaches (and notifies) while
    /// holding `done_lock`, so the job cannot be torn down while a
    /// worker still touches it.
    fn wait_for_helpers(&self) {
        let mut g = self.done_lock.lock().unwrap();
        while self.helpers.load(Ordering::Acquire) > 0 {
            g = self.done_cond.wait(g).unwrap();
        }
    }
}

/// A published job pointer living in the registry queue. Only valid
/// while the owning caller keeps it published; the publish/unpublish
/// protocol guarantees workers never observe a dangling one.
#[derive(Clone, Copy)]
struct JobPtr(*const JobCore);
unsafe impl Send for JobPtr {}

struct RegistryState {
    queue: Vec<JobPtr>,
    spawned: usize,
    idle: usize,
}

struct Registry {
    state: Mutex<RegistryState>,
    work_cond: Condvar,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        state: Mutex::new(RegistryState {
            // Reserved once; publish refuses to exceed it, so the
            // queue never reallocates after startup.
            queue: Vec::with_capacity(QUEUE_CAP),
            spawned: 0,
            idle: 0,
        }),
        work_cond: Condvar::new(),
    })
}

impl Registry {
    /// Make `core` visible to workers, waking (and lazily spawning)
    /// enough of them to satisfy `max_helpers`. Returns false — run
    /// inline — when the queue is full.
    fn publish(&self, core: *const JobCore) -> bool {
        let max_helpers = unsafe { (*core).max_helpers };
        let to_spawn;
        {
            let mut st = self.state.lock().unwrap();
            if st.queue.len() >= QUEUE_CAP {
                return false;
            }
            st.queue.push(JobPtr(core));
            let deficit = max_helpers.saturating_sub(st.idle);
            to_spawn = deficit.min(MAX_WORKERS.saturating_sub(st.spawned));
            st.spawned += to_spawn;
        }
        for _ in 0..to_spawn {
            let spawned = std::thread::Builder::new()
                .name("netalign-rayon-worker".into())
                .spawn(|| worker_loop(registry()));
            if spawned.is_err() {
                self.state.lock().unwrap().spawned -= 1;
            }
        }
        self.work_cond.notify_all();
        true
    }

    /// Remove `core` from the queue so no further worker can attach.
    /// Attach (scan + helper increment) happens entirely under the
    /// registry lock, so after this returns the set of attached
    /// workers is fixed and [`JobCore::wait_for_helpers`] drains it.
    fn unpublish(&self, core: *const JobCore) {
        let mut st = self.state.lock().unwrap();
        if let Some(pos) = st.queue.iter().position(|jp| std::ptr::eq(jp.0, core)) {
            st.queue.swap_remove(pos);
        }
    }
}

/// Body of a persistent worker: park on the registry condvar, attach
/// to a published job with spare chunks and helper headroom, drain
/// chunks via the cursor, detach, repeat.
fn worker_loop(reg: &'static Registry) {
    let mut st = reg.state.lock().unwrap();
    loop {
        let mut found = None;
        for &jp in st.queue.iter() {
            let core = unsafe { &*jp.0 };
            if core.cursor.load(Ordering::Relaxed) < core.n_chunks
                && core.helpers.load(Ordering::Relaxed) < core.max_helpers
            {
                found = Some(jp);
                break;
            }
        }
        let Some(jp) = found else {
            st.idle += 1;
            st = reg.work_cond.wait(st).unwrap();
            st.idle -= 1;
            continue;
        };
        let core = unsafe { &*jp.0 };
        core.helpers.fetch_add(1, Ordering::Relaxed);
        drop(st);

        with_cancel_scope(core.scope, || {
            with_pool_size(core.pool, || loop {
                let idx = core.cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= core.n_chunks {
                    break;
                }
                unsafe { (core.exec)(jp.0, idx) };
            })
        });

        {
            // Detach while holding done_lock: the publisher can only
            // wake (and tear the job down) after we release it, so we
            // never touch freed job memory.
            let _g = core.done_lock.lock().unwrap();
            core.helpers.fetch_sub(1, Ordering::Release);
            core.done_cond.notify_all();
        }

        st = reg.state.lock().unwrap();
    }
}

// ---------------------------------------------------------------------
// The iterator trait.
// ---------------------------------------------------------------------

/// An exactly-sized, splittable parallel iterator.
///
/// The `pi_*` methods are the internal producer interface (length,
/// contiguous split, sequential fallback); everything user-facing is a
/// provided method on top of them.
pub trait ParallelIterator: Sized + Send {
    /// Item produced by the iterator.
    type Item: Send;
    /// Sequential iterator driving one contiguous chunk.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn pi_len(&self) -> usize;
    /// Minimum items per chunk when splitting.
    fn pi_min_len(&self) -> usize {
        1
    }
    /// Split into `[0, index)` and `[index, len)`.
    fn pi_split_at(self, index: usize) -> (Self, Self);
    /// Sequential traversal of this chunk.
    fn pi_seq(self) -> Self::Seq;

    // -- adaptors ------------------------------------------------------

    /// Never split below `min` items per chunk.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Iterate two equal-length iterators in lockstep.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Apply `f` to every item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    // -- terminals -----------------------------------------------------

    /// Consume every item with `f`.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(
            self,
            &|chunk: Self| {
                for item in chunk.pi_seq() {
                    f(item);
                }
            },
            |_results| (),
        );
    }

    /// Consume every item with `f`, sharing one `init()` value per
    /// chunk (rayon: per split; here chunks are the splits).
    fn for_each_init<T, I, F>(self, init: I, f: F)
    where
        I: Fn() -> T + Send + Sync,
        F: Fn(&mut T, Self::Item) + Send + Sync,
    {
        drive(
            self,
            &|chunk: Self| {
                let mut state = init();
                for item in chunk.pi_seq() {
                    f(&mut state, item);
                }
            },
            |_results| (),
        );
    }

    /// Collect items in order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_chunked(drive(
            self,
            &|chunk: Self| chunk.pi_seq().collect::<Vec<_>>(),
            |results| results.collect(),
        ))
    }

    /// Sum the items; chunk partials combine in chunk order.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        drive(self, &|chunk: Self| chunk.pi_seq().sum::<S>(), |results| {
            results.sum()
        })
    }

    /// Largest item, or `None` when empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|chunk: Self| chunk.pi_seq().max(), |results| {
            results.flatten().max()
        })
    }

    /// Smallest item, or `None` when empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|chunk: Self| chunk.pi_seq().min(), |results| {
            results.flatten().min()
        })
    }

    /// Number of items.
    fn count(self) -> usize {
        self.pi_len()
    }
}

/// Marker for API parity with rayon; all our iterators are indexed.
pub trait IndexedParallelIterator: ParallelIterator {}
impl<P: ParallelIterator> IndexedParallelIterator for P {}

/// Collection types buildable from ordered per-chunk vectors.
pub trait FromParallelIterator<T: Send> {
    /// Assemble from per-chunk item vectors, in chunk order.
    fn from_chunked(parts: Vec<Vec<T>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_chunked(parts: Vec<Vec<T>>) -> Self {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------------
// The region driver.
// ---------------------------------------------------------------------

/// Per-chunk results of a region, yielded in chunk order. Dropping it
/// releases any results the consumer didn't take (panic unwinding).
enum ChunkResults<'a, R> {
    Single(Option<R>),
    Many {
        slots: &'a [UnsafeCell<MaybeUninit<R>>],
        status: &'a [AtomicU8],
        next: usize,
    },
}

impl<R> Iterator for ChunkResults<'_, R> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        match self {
            ChunkResults::Single(r) => r.take(),
            ChunkResults::Many {
                slots,
                status,
                next,
            } => {
                while *next < slots.len() {
                    let i = *next;
                    *next += 1;
                    if status[i].load(Ordering::Acquire) == CHUNK_DONE {
                        // Completed chunks initialized their slot; the
                        // cursor ensures each is read exactly once.
                        return Some(unsafe { (*slots[i].get()).assume_init_read() });
                    }
                }
                None
            }
        }
    }
}

impl<R> Drop for ChunkResults<'_, R> {
    fn drop(&mut self) {
        for _ in &mut *self {}
    }
}

/// A published region: scheduling core plus pre-split chunk inputs,
/// per-chunk result slots, and panic state. Lives on the publishing
/// caller's stack; `#[repr(C)]` with `core` first so the type-erased
/// executor can recover it from a `*const JobCore`.
#[repr(C)]
struct Job<P, R, W> {
    core: JobCore,
    work: *const W,
    parts: [UnsafeCell<MaybeUninit<P>>; MAX_CHUNKS],
    results: [UnsafeCell<MaybeUninit<R>>; MAX_CHUNKS],
    status: [AtomicU8; MAX_CHUNKS],
    panicked: AtomicBool,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Run chunk `idx` of the job behind `core`. The cursor guarantees
/// each index is passed here exactly once, so taking the part out of
/// its slot and writing the result are unsynchronized single-owner
/// moves. Panics are caught and recorded; later chunks short-circuit.
unsafe fn exec_chunk<P, R, W>(core: *const JobCore, idx: usize)
where
    P: ParallelIterator,
    R: Send,
    W: Fn(P) -> R + Sync,
{
    let job = &*(core as *const Job<P, R, W>);
    let part = (*job.parts[idx].get()).assume_init_read();
    if job.panicked.load(Ordering::Relaxed) {
        drop(part);
        job.status[idx].store(CHUNK_SKIPPED, Ordering::Release);
        return;
    }
    if chunk_cancel_probe() {
        // Cooperative cancellation: record the distinguished payload
        // (first writer wins, same as a panic) and skip this chunk;
        // the panicked flag short-circuits every later claim, so the
        // region stops within one chunk of work per participant.
        job.panicked.store(true, Ordering::Relaxed);
        let mut slot = job.payload.lock().unwrap();
        if slot.is_none() {
            *slot = Some(Box::new(RegionCancelled));
        }
        drop(slot);
        drop(part);
        job.status[idx].store(CHUNK_SKIPPED, Ordering::Release);
        return;
    }
    let work = &*job.work;
    match catch_unwind(AssertUnwindSafe(|| {
        chunk_fault_probe();
        work(part)
    })) {
        Ok(r) => {
            (*job.results[idx].get()).write(r);
            job.status[idx].store(CHUNK_DONE, Ordering::Release);
        }
        Err(p) => {
            job.panicked.store(true, Ordering::Relaxed);
            let mut slot = job.payload.lock().unwrap();
            if slot.is_none() {
                *slot = Some(p);
            }
            drop(slot);
            job.status[idx].store(CHUNK_SKIPPED, Ordering::Release);
        }
    }
}

/// Split `p` into a pool-size-independent chunk decomposition, execute
/// the chunks on the caller plus any recruited workers, and hand the
/// per-chunk results (in chunk order) to `finish`.
fn drive<P, R, T, W, F>(p: P, work: &W, finish: F) -> T
where
    P: ParallelIterator,
    R: Send,
    W: Fn(P) -> R + Sync,
    F: FnOnce(&mut ChunkResults<'_, R>) -> T,
{
    let len = p.pi_len();
    let min = p.pi_min_len().max(1);
    // Deterministic decomposition: depends on (len, min) only.
    let target = min.max(len.div_ceil(MAX_CHUNKS));
    let n_chunks = len.div_ceil(target).max(1);
    if n_chunks == 1 {
        // Single-chunk regions bypass the job machinery; probe once so
        // an armed cancellation still stops them at region granularity.
        if chunk_cancel_probe() {
            resume_unwind(Box::new(RegionCancelled));
        }
        return finish(&mut ChunkResults::Single(Some(work(p))));
    }

    let pool = current_num_threads().max(1);
    let job: Job<P, R, W> = Job {
        core: JobCore::new(n_chunks, pool, exec_chunk::<P, R, W>),
        work,
        parts: std::array::from_fn(|_| UnsafeCell::new(MaybeUninit::uninit())),
        results: std::array::from_fn(|_| UnsafeCell::new(MaybeUninit::uninit())),
        status: std::array::from_fn(|_| AtomicU8::new(0)),
        panicked: AtomicBool::new(false),
        payload: Mutex::new(None),
    };

    // Balanced split with the same boundaries at every pool size.
    let mut rest = p;
    let mut remaining = len;
    for i in 0..n_chunks - 1 {
        let take = remaining.div_ceil(n_chunks - i);
        let (head, tail) = rest.pi_split_at(take);
        unsafe { (*job.parts[i].get()).write(head) };
        rest = tail;
        remaining -= take;
    }
    unsafe { (*job.parts[n_chunks - 1].get()).write(rest) };

    let core_ptr: *const JobCore = &job.core;
    let published = job.core.max_helpers > 0 && registry().publish(core_ptr);

    // The caller always participates until the cursor is exhausted —
    // progress never depends on a worker being free.
    loop {
        let idx = job.core.cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= n_chunks {
            break;
        }
        unsafe { exec_chunk::<P, R, W>(core_ptr, idx) };
    }

    if published {
        registry().unpublish(core_ptr);
        job.core.wait_for_helpers();
    }

    if job.panicked.load(Ordering::Relaxed) {
        // Free surviving chunk results, then propagate the first panic.
        drop(ChunkResults::Many {
            slots: &job.results[..n_chunks],
            status: &job.status[..n_chunks],
            next: 0,
        });
        let payload = job.payload.lock().unwrap().take();
        resume_unwind(payload.unwrap_or_else(|| Box::new("netalign rayon worker panicked")));
    }

    let mut results = ChunkResults::Many {
        slots: &job.results[..n_chunks],
        status: &job.status[..n_chunks],
        next: 0,
    };
    finish(&mut results)
}

// ---------------------------------------------------------------------
// join.
// ---------------------------------------------------------------------

/// A one-chunk job running `join`'s second closure, published so a
/// parked worker can steal it while the caller runs the first.
#[repr(C)]
struct JoinJob<B, RB> {
    core: JobCore,
    b: UnsafeCell<Option<B>>,
    rb: UnsafeCell<Option<RB>>,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

unsafe fn exec_join<B, RB>(core: *const JobCore, _idx: usize)
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let job = &*(core as *const JoinJob<B, RB>);
    let f = (*job.b.get()).take().expect("join chunk claimed twice");
    if chunk_cancel_probe() {
        let mut slot = job.payload.lock().unwrap();
        if slot.is_none() {
            *slot = Some(Box::new(RegionCancelled));
        }
        return;
    }
    match catch_unwind(AssertUnwindSafe(|| {
        chunk_fault_probe();
        f()
    })) {
        Ok(r) => *job.rb.get() = Some(r),
        Err(p) => *job.payload.lock().unwrap() = Some(p),
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_num_threads();
    if pool <= 1 {
        if chunk_cancel_probe() {
            resume_unwind(Box::new(RegionCancelled));
        }
        let ra = a();
        let rb = b();
        return (ra, rb);
    }

    let job: JoinJob<B, RB> = JoinJob {
        core: JobCore::new(1, pool, exec_join::<B, RB>),
        b: UnsafeCell::new(Some(b)),
        rb: UnsafeCell::new(None),
        payload: Mutex::new(None),
    };
    let core_ptr: *const JobCore = &job.core;
    let published = registry().publish(core_ptr);

    let ra = catch_unwind(AssertUnwindSafe(a));

    // Claim `b` ourselves if no worker got to it first.
    if job.core.cursor.fetch_add(1, Ordering::Relaxed) == 0 {
        unsafe { exec_join::<B, RB>(core_ptr, 0) };
    }
    if published {
        registry().unpublish(core_ptr);
        job.core.wait_for_helpers();
    }

    match ra {
        Err(p) => resume_unwind(p),
        Ok(ra) => {
            if let Some(p) = job.payload.lock().unwrap().take() {
                resume_unwind(p);
            }
            let rb = unsafe { (*job.rb.get()).take() }.expect("join closure lost its result");
            (ra, rb)
        }
    }
}

// ---------------------------------------------------------------------
// Entry points: slices, mutable slices, ranges.
// ---------------------------------------------------------------------

/// Types convertible into a [`ParallelIterator`] by value.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item produced.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` over `&[T]` / `&Vec<T>`.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item produced.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `.par_iter_mut()` over `&mut [T]` / `&mut Vec<T>`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item produced.
    type Item: Send + 'a;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceIter { slice: a }, SliceIter { slice: b })
    }
    fn pi_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: a }, SliceIterMut { slice: b })
    }
    fn pi_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = Range<$t>;

            fn pi_len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }
            fn pi_split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }
            fn pi_seq(self) -> Range<$t> {
                self.range
            }
        }
    )*};
}

range_impl!(u32, u64, usize, i32, i64);

// ---------------------------------------------------------------------
// Uneven chunk parallelism (extension).
// ---------------------------------------------------------------------

/// Parallel iterator over an **irregular** contiguous partition of a
/// mutable slice: item `i` is `&mut slice[bounds[i] - bounds[0] ..
/// bounds[i + 1] - bounds[0]]`. `bounds` must be non-decreasing and
/// span exactly `slice.len()`; build it once (e.g. CSR row groups
/// balanced by entry count) and reuse it every iteration — iterating
/// allocates nothing.
pub fn par_uneven_chunks_mut<'a, T: Send>(
    slice: &'a mut [T],
    bounds: &'a [usize],
) -> UnevenChunksMut<'a, T> {
    assert!(!bounds.is_empty(), "bounds needs at least one boundary");
    assert!(
        bounds.windows(2).all(|w| w[0] <= w[1]),
        "bounds must be non-decreasing"
    );
    assert_eq!(
        bounds[bounds.len() - 1] - bounds[0],
        slice.len(),
        "bounds must span the slice exactly"
    );
    UnevenChunksMut { slice, bounds }
}

/// See [`par_uneven_chunks_mut`].
pub struct UnevenChunksMut<'a, T> {
    slice: &'a mut [T],
    bounds: &'a [usize],
}

impl<'a, T: Send> ParallelIterator for UnevenChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = UnevenSeqMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.bounds.len() - 1
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = self.bounds[index] - self.bounds[0];
        let (left, right) = self.slice.split_at_mut(mid);
        (
            UnevenChunksMut {
                slice: left,
                bounds: &self.bounds[..=index],
            },
            UnevenChunksMut {
                slice: right,
                bounds: &self.bounds[index..],
            },
        )
    }
    fn pi_seq(self) -> Self::Seq {
        UnevenSeqMut {
            slice: self.slice,
            bounds: self.bounds,
        }
    }
}

/// Sequential side of [`UnevenChunksMut`].
pub struct UnevenSeqMut<'a, T> {
    slice: &'a mut [T],
    bounds: &'a [usize],
}

impl<'a, T> Iterator for UnevenSeqMut<'a, T> {
    type Item = &'a mut [T];

    fn next(&mut self) -> Option<&'a mut [T]> {
        if self.bounds.len() < 2 {
            return None;
        }
        let width = self.bounds[1] - self.bounds[0];
        let taken = std::mem::take(&mut self.slice);
        let (head, tail) = taken.split_at_mut(width);
        self.slice = tail;
        self.bounds = &self.bounds[1..];
        Some(head)
    }
}

// ---------------------------------------------------------------------
// Adaptors.
// ---------------------------------------------------------------------

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type Seq = P::Seq;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.min.max(self.base.pi_min_len())
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            MinLen {
                base: a,
                min: self.min,
            },
            MinLen {
                base: b,
                min: self.min,
            },
        )
    }
    fn pi_seq(self) -> Self::Seq {
        self.base.pi_seq()
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<Range<usize>, P::Seq>;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn pi_seq(self) -> Self::Seq {
        let len = self.base.pi_len();
        (self.offset..self.offset + len).zip(self.base.pi_seq())
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_min_len(&self) -> usize {
        self.a.pi_min_len().max(self.b.pi_min_len())
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.pi_split_at(index);
        let (b1, b2) = self.b.pi_split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn pi_seq(self) -> Self::Seq {
        self.a.pi_seq().zip(self.b.pi_seq())
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn pi_seq(self) -> Self::Seq {
        self.base.pi_seq().map(self.f)
    }
}

/// The traits, by the usual name.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// `rayon::iter` paths, for code that imports them directly.
pub mod iter {
    pub use crate::{
        Enumerate, FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, Map, MinLen, ParallelIterator, Zip,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate_for_each() {
        let a = vec![1u64; 100];
        let mut b = vec![0u64; 100];
        b.par_iter_mut()
            .zip(a.par_iter())
            .enumerate()
            .for_each(|(i, (bi, &ai))| {
                *bi = ai + i as u64;
            });
        assert_eq!(b[0], 1);
        assert_eq!(b[99], 100);
    }

    #[test]
    fn install_scopes_thread_count() {
        let seen = pool(3).install(|| {
            (0..100usize)
                .into_par_iter()
                .map(|_| crate::current_num_threads())
                .max()
        });
        assert_eq!(seen, Some(3));
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn sum_matches_serial() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let par: f64 = xs.par_iter().with_min_len(64).map(|&x| x).sum();
        let ser: f64 = xs.iter().sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn sum_bit_identical_across_pool_sizes() {
        // f64 addition is not associative; the decomposition (and so
        // the reduction tree) must not depend on the pool size.
        let xs: Vec<f64> = (0..100_000)
            .map(|i| ((i * 37) % 1001) as f64 * 1.0e-3 + 1.0e-9)
            .collect();
        let reference: f64 = pool(1).install(|| xs.par_iter().map(|&x| x * 1.25).sum());
        for t in [2, 4, 8] {
            let s: f64 = pool(t).install(|| xs.par_iter().map(|&x| x * 1.25).sum());
            assert_eq!(s.to_bits(), reference.to_bits(), "pool size {t}");
        }
    }

    #[test]
    fn nested_join_inside_parallel_region() {
        let out: Vec<u64> = pool(4).install(|| {
            (0u64..256)
                .into_par_iter()
                .map(|i| {
                    let (a, b) = crate::join(|| i * 2, || i * 3);
                    a + b
                })
                .collect()
        });
        assert_eq!(out, (0u64..256).map(|i| i * 5).collect::<Vec<_>>());
    }

    #[test]
    fn nested_region_inside_parallel_region() {
        let total: u64 = pool(4).install(|| {
            (0u64..64)
                .into_par_iter()
                .map(|i| (0u64..100).into_par_iter().map(|j| i + j).sum::<u64>())
                .sum()
        });
        let expect: u64 = (0u64..64)
            .map(|i| (0u64..100).map(|j| i + j).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn worker_pool_reports_install_size() {
        // current_num_threads must hold on worker threads too.
        for t in [2, 5] {
            let seen: Vec<usize> = pool(t).install(|| {
                (0..10_000usize)
                    .into_par_iter()
                    .map(|_| crate::current_num_threads())
                    .collect()
            });
            assert!(seen.iter().all(|&s| s == t), "pool size {t}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk 77 exploded")]
    fn worker_panic_propagates() {
        pool(4).install(|| {
            (0..100_000usize).into_par_iter().for_each(|i| {
                if i == 77_777 {
                    panic!("chunk 77 exploded");
                }
            });
        });
    }

    #[test]
    #[should_panic(expected = "b went bad")]
    fn join_panic_propagates() {
        pool(4).install(|| {
            crate::join(|| 1, || -> usize { panic!("b went bad") });
        });
    }

    #[test]
    fn pool_executes_next_region_normally_after_panic() {
        // A panicking region must leave the persistent pool reusable:
        // the job slot unpublished, the chunk cursor drained, workers
        // parked again. Alternate panic → clean region several times
        // and check the clean regions still reduce correctly.
        let expect: usize = (0..100_000usize).sum();
        for threads in [1, 2, 4, 8] {
            pool(threads).install(|| {
                for round in 0..3 {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        (0..100_000usize).into_par_iter().for_each(|i| {
                            if i == 50_000 {
                                panic!("round {round} exploded");
                            }
                        });
                    }));
                    assert!(r.is_err(), "round {round} must panic (pool {threads})");
                    let total: usize = (0..100_000usize).into_par_iter().sum();
                    assert_eq!(total, expect, "post-panic region (pool {threads})");
                }
            });
        }
    }

    #[test]
    fn join_usable_after_panic() {
        pool(4).install(|| {
            for _ in 0..3 {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    crate::join(|| 1, || -> usize { panic!("again") })
                }));
                assert!(r.is_err());
                let (a, b) = crate::join(|| 2 + 2, || 3 * 3);
                assert_eq!((a, b), (4, 9));
            }
        });
    }

    #[test]
    fn chunk_fault_hook_runs_inside_regions() {
        // The hook is called once per claimed chunk, inside the chunk's
        // catch_unwind scope. A counting hook observes the claims; the
        // panicking-hook path is exercised end-to-end by the aligners'
        // resilience suite (separate process), which serializes its
        // fault plans.
        static CLAIMS: AtomicUsize = AtomicUsize::new(0);
        fn count() {
            CLAIMS.fetch_add(1, Ordering::Relaxed);
        }
        crate::set_chunk_fault_hook(Some(count));
        let before = CLAIMS.load(Ordering::Relaxed);
        let total: usize = pool(4).install(|| (0..100_000usize).into_par_iter().sum());
        crate::set_chunk_fault_hook(None);
        assert_eq!(total, (0..100_000usize).sum::<usize>());
        assert!(
            CLAIMS.load(Ordering::Relaxed) > before,
            "hook saw no chunk claims"
        );
        let after = CLAIMS.load(Ordering::Relaxed);
        pool(4).install(|| (0..100_000usize).into_par_iter().sum::<usize>());
        assert_eq!(
            CLAIMS.load(Ordering::Relaxed),
            after,
            "hook still firing after uninstall"
        );
    }

    #[test]
    fn cancel_hook_probed_once_per_claim_and_harmless_when_false() {
        // A hook that never cancels must not perturb results; it is
        // probed on every chunk claim. (The cancelling path — unwind
        // with RegionCancelled, pool reuse, bit-identical reruns — is
        // exercised end-to-end by the aligners' deadline suite, which
        // serializes access to the process-global hook; cancelling here
        // would race the other tests in this binary.)
        static PROBES: AtomicUsize = AtomicUsize::new(0);
        fn never(_scope: u64) -> bool {
            PROBES.fetch_add(1, Ordering::Relaxed);
            false
        }
        crate::set_chunk_cancel_hook(Some(never));
        let before = PROBES.load(Ordering::Relaxed);
        let total: usize = pool(4).install(|| (0..100_000usize).into_par_iter().sum());
        crate::set_chunk_cancel_hook(None);
        assert_eq!(total, (0..100_000usize).sum::<usize>());
        assert!(
            PROBES.load(Ordering::Relaxed) > before,
            "cancel hook saw no chunk claims"
        );
        let after = PROBES.load(Ordering::Relaxed);
        pool(4).install(|| (0..100_000usize).into_par_iter().sum::<usize>());
        assert_eq!(
            PROBES.load(Ordering::Relaxed),
            after,
            "cancel hook still firing after uninstall"
        );
    }

    #[test]
    fn workers_adopt_the_publishers_cancel_scope() {
        // Every chunk of a region published under scope S must observe
        // scope S, whether it runs inline on the caller or on a helper
        // worker; the worker's ambient scope must be restored after.
        let prev = crate::set_cancel_scope(4242);
        let (lo, hi) = pool(4).install(|| {
            let lo = (0..100_000usize)
                .into_par_iter()
                .map(|_| crate::current_cancel_scope())
                .min();
            let hi = (0..100_000usize)
                .into_par_iter()
                .map(|_| crate::current_cancel_scope())
                .max();
            (lo, hi)
        });
        crate::set_cancel_scope(prev);
        assert_eq!(lo, Some(4242), "a participant ran below the scope");
        assert_eq!(hi, Some(4242), "a participant ran outside the scope");
        assert_eq!(crate::current_cancel_scope(), prev);
    }

    #[test]
    fn uneven_chunks_visit_each_group_once() {
        let mut data = vec![0u64; 1000];
        // Irregular group widths: 1, 3, 5, ... (cut off to span 1000).
        let mut bounds = vec![0usize];
        let mut w = 1;
        while *bounds.last().unwrap() < 1000 {
            let next = (bounds.last().unwrap() + w).min(1000);
            bounds.push(next);
            w += 2;
        }
        pool(4).install(|| {
            crate::par_uneven_chunks_mut(&mut data, &bounds)
                .enumerate()
                .for_each(|(g, chunk)| {
                    for x in chunk.iter_mut() {
                        *x += 1 + g as u64 * 1000;
                    }
                });
        });
        // Every element written exactly once, with its group's tag.
        for (g, w) in bounds.windows(2).enumerate() {
            for (i, x) in data.iter().enumerate().take(w[1]).skip(w[0]) {
                assert_eq!(*x, 1 + g as u64 * 1000, "element {i} group {g}");
            }
        }
    }

    #[test]
    fn uneven_chunks_allow_empty_groups() {
        let mut data = vec![1u64; 10];
        let bounds = [0, 0, 4, 4, 10, 10];
        let sums: Vec<u64> = pool(2).install(|| {
            crate::par_uneven_chunks_mut(&mut data, &bounds)
                .map(|chunk| chunk.iter().sum::<u64>())
                .collect()
        });
        assert_eq!(sums, vec![0, 4, 0, 6, 0]);
    }

    #[test]
    fn results_identical_with_queue_pressure() {
        // Many concurrent regions from nested parallelism must not
        // corrupt results even when the publish queue fills up.
        let expect: u64 = (0u64..5000).sum();
        let outer: Vec<u64> = pool(8).install(|| {
            (0u64..32)
                .into_par_iter()
                .map(|_| (0u64..5000).into_par_iter().sum::<u64>())
                .collect()
        });
        assert!(outer.iter().all(|&s| s == expect));
    }
}
