//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal data-parallel runtime with the same API shape:
//! indexed parallel iterators over slices and ranges with `map`, `zip`,
//! `enumerate`, `with_min_len`, `for_each`, `for_each_init`, `collect`,
//! `sum`, `max`; plus `join`, `current_num_threads`, and
//! `ThreadPoolBuilder::install` for pool-size scoping.
//!
//! Semantics intentionally preserved from rayon for this workspace's
//! purposes:
//!
//! - splitting is contiguous, so chunk-local state (`for_each_init`)
//!   sees runs of adjacent indices;
//! - `with_min_len` bounds how finely work is split;
//! - reductions (`collect`, `sum`, `max`) combine chunk results in
//!   chunk order, keeping them deterministic for a fixed thread count;
//! - `current_num_threads()` inside `ThreadPool::install` reports the
//!   pool's size, including from worker threads.
//!
//! Work is executed on `std::thread::scope` threads, at most
//! `current_num_threads()` chunks per call. With one chunk (or one
//! thread) everything runs inline on the caller's thread.

use std::cell::Cell;
use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------
// Pool-size scoping.
// ---------------------------------------------------------------------

thread_local! {
    static POOL_SIZE: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads the current scope parallelizes over.
pub fn current_num_threads() -> usize {
    let v = POOL_SIZE.with(|c| c.get());
    if v == 0 {
        default_threads()
    } else {
        v
    }
}

fn with_pool_size<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Guard(usize);
    impl Drop for Guard {
        fn drop(&mut self) {
            POOL_SIZE.with(|c| c.set(self.0));
        }
    }
    let prev = POOL_SIZE.with(|c| {
        let p = c.get();
        c.set(n);
        p
    });
    let _restore = Guard(prev);
    f()
}

/// A scoped thread-count configuration (rayon's pool, minus the
/// persistent workers: threads are spawned per parallel call).
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count in scope.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_pool_size(self.threads, f)
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`'s fluent API.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default (machine) thread count.
    pub fn new() -> Self {
        Self { threads: 0 }
    }

    /// Set the pool's thread count; 0 means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Build the pool. Infallible here, `Result` for API parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_num_threads();
    if pool <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(move || with_pool_size(pool, b));
            let ra = a();
            (ra, hb.join().expect("rayon::join closure panicked"))
        })
    }
}

// ---------------------------------------------------------------------
// The iterator trait.
// ---------------------------------------------------------------------

/// An exactly-sized, splittable parallel iterator.
///
/// The `pi_*` methods are the internal producer interface (length,
/// contiguous split, sequential fallback); everything user-facing is a
/// provided method on top of them.
pub trait ParallelIterator: Sized + Send {
    /// Item produced by the iterator.
    type Item: Send;
    /// Sequential iterator driving one contiguous chunk.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn pi_len(&self) -> usize;
    /// Minimum items per chunk when splitting.
    fn pi_min_len(&self) -> usize {
        1
    }
    /// Split into `[0, index)` and `[index, len)`.
    fn pi_split_at(self, index: usize) -> (Self, Self);
    /// Sequential traversal of this chunk.
    fn pi_seq(self) -> Self::Seq;

    // -- adaptors ------------------------------------------------------

    /// Never split below `min` items per chunk.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Iterate two equal-length iterators in lockstep.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Apply `f` to every item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    // -- terminals -----------------------------------------------------

    /// Consume every item with `f`.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(self, &|chunk: Self| {
            for item in chunk.pi_seq() {
                f(item);
            }
        });
    }

    /// Consume every item with `f`, sharing one `init()` value per
    /// chunk (rayon: per split; here chunks are the splits).
    fn for_each_init<T, I, F>(self, init: I, f: F)
    where
        I: Fn() -> T + Send + Sync,
        F: Fn(&mut T, Self::Item) + Send + Sync,
    {
        drive(self, &|chunk: Self| {
            let mut state = init();
            for item in chunk.pi_seq() {
                f(&mut state, item);
            }
        });
    }

    /// Collect items in order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_chunked(drive(self, &|chunk: Self| {
            chunk.pi_seq().collect::<Vec<_>>()
        }))
    }

    /// Sum the items; chunk partials combine in chunk order.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        drive(self, &|chunk: Self| chunk.pi_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Largest item, or `None` when empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|chunk: Self| chunk.pi_seq().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Smallest item, or `None` when empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|chunk: Self| chunk.pi_seq().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.pi_len()
    }
}

/// Marker for API parity with rayon; all our iterators are indexed.
pub trait IndexedParallelIterator: ParallelIterator {}
impl<P: ParallelIterator> IndexedParallelIterator for P {}

/// Collection types buildable from ordered per-chunk vectors.
pub trait FromParallelIterator<T: Send> {
    /// Assemble from per-chunk item vectors, in chunk order.
    fn from_chunked(parts: Vec<Vec<T>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_chunked(parts: Vec<Vec<T>>) -> Self {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// Split `p` into at most `current_num_threads()` contiguous chunks
/// (respecting `pi_min_len`) and run `work` on each, returning the
/// per-chunk results in chunk order. One chunk runs inline.
fn drive<P, R, W>(p: P, work: &W) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    W: Fn(P) -> R + Sync,
{
    let len = p.pi_len();
    let min = p.pi_min_len().max(1);
    let threads = current_num_threads().max(1);
    let chunks = len.div_ceil(min).clamp(1, threads);
    if chunks == 1 {
        return vec![work(p)];
    }
    let mut parts = Vec::with_capacity(chunks);
    let mut rest = p;
    let mut remaining = len;
    for i in 0..chunks - 1 {
        let take = remaining.div_ceil(chunks - i);
        let (head, tail) = rest.pi_split_at(take);
        parts.push(head);
        rest = tail;
        remaining -= take;
    }
    parts.push(rest);
    let pool = threads;
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| s.spawn(move || with_pool_size(pool, || work(part))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------
// Entry points: slices, mutable slices, ranges.
// ---------------------------------------------------------------------

/// Types convertible into a [`ParallelIterator`] by value.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item produced.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` over `&[T]` / `&Vec<T>`.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item produced.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `.par_iter_mut()` over `&mut [T]` / `&mut Vec<T>`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item produced.
    type Item: Send + 'a;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceIter { slice: a }, SliceIter { slice: b })
    }
    fn pi_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: a }, SliceIterMut { slice: b })
    }
    fn pi_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = Range<$t>;

            fn pi_len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }
            fn pi_split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }
            fn pi_seq(self) -> Range<$t> {
                self.range
            }
        }
    )*};
}

range_impl!(u32, u64, usize, i32, i64);

// ---------------------------------------------------------------------
// Adaptors.
// ---------------------------------------------------------------------

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type Seq = P::Seq;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.min.max(self.base.pi_min_len())
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            MinLen {
                base: a,
                min: self.min,
            },
            MinLen {
                base: b,
                min: self.min,
            },
        )
    }
    fn pi_seq(self) -> Self::Seq {
        self.base.pi_seq()
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<Range<usize>, P::Seq>;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn pi_seq(self) -> Self::Seq {
        let len = self.base.pi_len();
        (self.offset..self.offset + len).zip(self.base.pi_seq())
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_min_len(&self) -> usize {
        self.a.pi_min_len().max(self.b.pi_min_len())
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.pi_split_at(index);
        let (b1, b2) = self.b.pi_split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn pi_seq(self) -> Self::Seq {
        self.a.pi_seq().zip(self.b.pi_seq())
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn pi_seq(self) -> Self::Seq {
        self.base.pi_seq().map(self.f)
    }
}

/// The traits, by the usual name.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// `rayon::iter` paths, for code that imports them directly.
pub mod iter {
    pub use crate::{
        Enumerate, FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, Map, MinLen, ParallelIterator, Zip,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate_for_each() {
        let a = vec![1u64; 100];
        let mut b = vec![0u64; 100];
        b.par_iter_mut()
            .zip(a.par_iter())
            .enumerate()
            .for_each(|(i, (bi, &ai))| {
                *bi = ai + i as u64;
            });
        assert_eq!(b[0], 1);
        assert_eq!(b[99], 100);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let seen = pool.install(|| {
            (0..100usize)
                .into_par_iter()
                .map(|_| crate::current_num_threads())
                .max()
        });
        assert_eq!(seen, Some(3));
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn sum_matches_serial() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let par: f64 = xs.par_iter().with_min_len(64).map(|&x| x).sum();
        let ser: f64 = xs.iter().sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
