//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, uniform
//! `gen_range` over integer and float ranges, `gen_bool`, `gen::<f64>`,
//! and `seq::SliceRandom::shuffle`.
//!
//! Every generator in the workspace is an explicitly seeded
//! `rand_chacha::ChaCha8Rng`, so no entropy source is provided — there
//! is deliberately no `thread_rng`. Value streams are deterministic
//! functions of the seed, as the workspace's determinism tests require
//! (they are not bit-compatible with upstream rand's distributions,
//! which the tests do not rely on).

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 — every
    /// distinct input yields an unrelated full seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types `gen()` can produce uniformly.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for every span this workspace
                // uses; accept it for simplicity.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        <f64 as Standard>::draw(self) < p
    }

    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The common imports, by the usual name.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Lcg(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
